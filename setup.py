"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package (where
PEP 660 editable installs are unavailable), e.g.::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
