"""Slot-by-slot inspection of One-fail Adaptive on a tiny network.

The narrative of Section 3 is easiest to follow on a concrete execution: this
example runs Algorithm 1 with k = 8 stations through the exact node-level
simulator, records a full execution trace, and prints

* the per-slot outcomes (silence / success / collision),
* the evolution of the density estimator κ̃ and of the received counter σ as
  seen by one surviving station, and
* the per-node summary (delivery slot, number of transmissions, collisions).

It also shows the value that collision detection would add, by running the
binary-splitting tree baseline on the same instance size with a
collision-detection channel.

Run with::

    python examples/inspect_protocol_trace.py [k]
"""

from __future__ import annotations

import sys

from repro import ChannelModel, ExecutionTrace, FeedbackModel, OneFailAdaptive, RadioNetwork
from repro.protocols.splitting import BinarySplitting


def trace_one_fail_adaptive(k: int) -> None:
    protocol = OneFailAdaptive()
    network = RadioNetwork.for_static_k_selection(protocol, k=k, seed=7)
    trace = ExecutionTrace()
    result = network.run(trace=trace, collect_node_summaries=True)

    print(f"One-fail Adaptive, k = {k}: solved in {result.makespan} slots")
    print()
    print(trace.format(limit=40))
    print()
    print("Trace summary:", trace.summary())
    print()
    print("Per-node summary (node_id, delivery slot, transmissions, collisions):")
    for summary in result.node_summaries:
        print(
            f"  node {summary['node_id']}: delivered at slot {summary['delivery_slot']}, "
            f"{summary['transmissions']} transmissions, {summary['collisions']} collisions"
        )
    print()

    # Replay the estimator evolution as one station would compute it.
    protocol = OneFailAdaptive()
    protocol.reset()
    print("Density estimator as seen by a station that never delivers:")
    print("  slot  rule  p(transmit)  kappa~   sigma")
    from repro.channel.model import Observation  # local import to keep the header light

    for record in trace.records[:20]:
        rule = "BT" if OneFailAdaptive.is_bt_step(record.slot) else "AT"
        probability = protocol.transmission_probability(record.slot)
        print(
            f"  {record.slot:>4}  {rule}   {probability:>10.3f}  "
            f"{protocol.density_estimate:>6.2f}  {protocol.messages_received:>5}"
        )
        protocol.notify(
            Observation(
                slot=record.slot,
                transmitted=False,
                received=record.outcome.value == "success",
                delivered=False,
            )
        )


def trace_binary_splitting(k: int) -> None:
    channel = ChannelModel(feedback=FeedbackModel.COLLISION_DETECTION)
    network = RadioNetwork.for_static_k_selection(
        BinarySplitting(), k=k, seed=7, channel=channel
    )
    result = network.run()
    print(
        f"Binary splitting with collision detection, k = {k}: solved in "
        f"{result.makespan} slots ({result.makespan / k:.2f} steps/node)"
    )


def main() -> int:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    trace_one_fail_adaptive(k)
    print()
    trace_binary_splitting(k)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
