"""Ablation example: how sensitive are the protocols to their δ parameter?

The paper fixes δ = 2.72 for One-fail Adaptive and δ = 0.366 for Exp
Back-on/Back-off without reporting a sensitivity study.  This example sweeps δ
over each theorem's admissible range and prints the measured steps/node ratio
next to the constant the analysis predicts, showing

* that Exp Back-on/Back-off's *measured* ratio is far below its analysis
  constant ``4(1 + 1/δ)`` and is fairly flat in δ (the bound is loose), and
* that One-fail Adaptive's measured ratio closely follows ``2(δ + 1)``, i.e.
  its analysis is tight (Section 5 makes this observation for δ = 2.72).

It is also a showcase of the declarative front door: the δ-grid is just a
list of :class:`repro.Scenario` values — one spec string per δ — executed as
one :meth:`repro.Session.run_all` fan-out.  Pass a store directory as the
third argument to make the grid resumable (a second invocation reports every
cell as cached).

Run with::

    python examples/parameter_sweep.py [k] [runs] [store_dir]
"""

from __future__ import annotations

import sys

from repro import Scenario, Session, paper_analysis
from repro.core.constants import EBB_DELTA_MAX, OFA_DELTA_MAX, OFA_DELTA_MIN


def sweep(
    session: Session,
    protocol: str,
    deltas: list[float],
    k: int,
    runs: int,
    seed: int,
    analysis_constant,
) -> float:
    """Run one protocol's δ grid through the Session and print a table."""
    scenarios = [
        Scenario(
            protocol=f"{protocol}(delta={delta},enforce_theorem_range=false)",
            k=k,
            replications=runs,
            seed=seed + index,
        )
        for index, delta in enumerate(deltas)
    ]
    result_sets = session.run_all(scenarios)
    print(f"{'delta':>8}  {'mean steps/k':>12}  {'analysis':>9}  {'new/cached':>10}")
    best_delta, best_ratio = deltas[0], float("inf")
    for delta, result_set in zip(deltas, result_sets):
        ratio = result_set.mean_ratio
        if ratio < best_ratio:
            best_delta, best_ratio = delta, ratio
        print(
            f"{delta:>8.3f}  {ratio:>12.2f}  {analysis_constant(delta):>9.2f}"
            f"  {result_set.new_runs:>4}/{result_set.cached_runs:<5}"
        )
    return best_delta


def main() -> int:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    store_dir = sys.argv[3] if len(sys.argv) > 3 else None
    session = Session(store_dir=store_dir)

    print(f"delta ablation at k = {k}, {runs} runs per point")
    if store_dir:
        print(f"(result store: {store_dir} — re-run to see cache hits)")
    print()

    ofa_deltas = [OFA_DELTA_MIN + 0.002, 2.72, 2.8, 2.9, OFA_DELTA_MAX]
    print("One-fail Adaptive (admissible range e < delta <= 2.9906):")
    best = sweep(
        session, "one-fail-adaptive", ofa_deltas, k, runs, seed=7,
        analysis_constant=paper_analysis.ofa_leading_constant,
    )
    print(f"best delta at k={k}: {best:.3f}")
    print()

    ebb_deltas = [0.05, 0.15, 0.25, 0.366, EBB_DELTA_MAX - 0.002]
    print("Exp Back-on/Back-off (admissible range 0 < delta < 1/e):")
    best = sweep(
        session, "exp-backon-backoff", ebb_deltas, k, runs, seed=101,
        analysis_constant=paper_analysis.ebb_leading_constant,
    )
    print(f"best delta at k={k}: {best:.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
