"""Ablation example: how sensitive are the protocols to their δ parameter?

The paper fixes δ = 2.72 for One-fail Adaptive and δ = 0.366 for Exp
Back-on/Back-off without reporting a sensitivity study.  This example sweeps δ
over each theorem's admissible range and prints the measured steps/node ratio
next to the constant the analysis predicts, showing

* that Exp Back-on/Back-off's *measured* ratio is far below its analysis
  constant ``4(1 + 1/δ)`` and is fairly flat in δ (the bound is loose), and
* that One-fail Adaptive's measured ratio closely follows ``2(δ + 1)``, i.e.
  its analysis is tight (Section 5 makes this observation for δ = 2.72).

Run with::

    python examples/parameter_sweep.py [k] [runs]
"""

from __future__ import annotations

import sys

from repro.experiments.ablations import run_ebb_delta_ablation, run_ofa_delta_ablation


def main() -> int:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    print(f"delta ablation at k = {k}, {runs} runs per point")
    print()
    ofa = run_ofa_delta_ablation(k_values=(k,), runs=runs)
    print("One-fail Adaptive (admissible range e < delta <= 2.9906):")
    print(ofa.render())
    print(f"best delta at k={k}: {ofa.best_delta(k):.3f}")
    print()
    ebb = run_ebb_delta_ablation(k_values=(k,), runs=runs)
    print("Exp Back-on/Back-off (admissible range 0 < delta < 1/e):")
    print(ebb.render())
    print(f"best delta at k={k}: {ebb.best_delta(k):.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
