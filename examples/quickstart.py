"""Quickstart: solve static k-selection with the paper's two protocols.

This example shows the minimal use of the library's declarative front door:

1. describe the run as a :class:`repro.Scenario` — one flat spec string
   naming the protocol, the network size and the seed (no knowledge of k is
   given to the protocol itself — that is the point of the paper's title);
2. execute it with :class:`repro.Session` (``Session(store_dir=...)`` would
   additionally persist the replications and serve them on re-run);
3. read the makespan and compare it with what the paper's analysis predicts.

Run with::

    python examples/quickstart.py [k]
"""

from __future__ import annotations

import sys

from repro import Scenario, Session, paper_analysis


def main() -> int:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    seed = 2011
    # batch=False: a single replication gains nothing from the vectorised
    # batch engine, and the per-run engines match the paper's traces exactly.
    session = Session(batch=False)

    print(f"Static k-selection on a single-hop radio network, k = {k} contenders")
    print("(channel without collision detection; batched arrivals; no knowledge of k)")
    print()

    # --- One-fail Adaptive (Algorithm 1) ------------------------------------
    scenario = Scenario.parse(f"one-fail-adaptive k={k} seed={seed} seed_policy=sequential")
    result = session.run(scenario).results[0]
    delta = scenario.build_protocol().delta  # 2.72, the paper's choice
    bound = paper_analysis.ofa_makespan_bound(k, delta=delta)
    print("One-fail Adaptive")
    print(f"  scenario          : {scenario}")
    print(f"  makespan          : {result.makespan} slots")
    print(f"  steps per node    : {result.steps_per_node:.2f}")
    print(f"  Theorem 1 bound   : 2(delta+1)k + O(log^2 k) ~= {bound:.0f} slots (w.h.p.)")
    print(f"  analysis constant : {paper_analysis.ofa_leading_constant(delta):.2f} steps/node")
    print()

    # --- Exp Back-on/Back-off (Algorithm 2) ---------------------------------
    scenario = Scenario.parse(f"exp-backon-backoff k={k} seed={seed} seed_policy=sequential")
    result = session.run(scenario).results[0]
    delta = scenario.build_protocol().delta  # 0.366, the paper's choice
    bound = paper_analysis.ebb_makespan_bound(k, delta=delta)
    print("Exp Back-on/Back-off")
    print(f"  scenario          : {scenario}")
    print(f"  makespan          : {result.makespan} slots")
    print(f"  steps per node    : {result.steps_per_node:.2f}")
    print(f"  Theorem 2 bound   : 4(1 + 1/delta)k = {bound:.0f} slots (w.h.p.)")
    print(f"  analysis constant : {paper_analysis.ebb_leading_constant(delta):.2f} steps/node")
    print()

    print(
        "For reference, no protocol in which all stations use the same probability\n"
        f"per slot can beat {paper_analysis.fair_protocol_optimal_ratio():.3f} steps/node "
        "(Section 5 of the paper)."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
