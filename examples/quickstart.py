"""Quickstart: solve static k-selection with the paper's two protocols.

This example shows the minimal use of the library's public API:

1. build a protocol (no knowledge of k is given to it — that is the point of
   the paper's title);
2. call :func:`repro.simulate` for a network of k stations;
3. read the makespan and compare it with what the paper's analysis predicts.

Run with::

    python examples/quickstart.py [k]
"""

from __future__ import annotations

import sys

from repro import ExpBackonBackoff, OneFailAdaptive, simulate
from repro import paper_analysis


def main() -> int:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    seed = 2011

    print(f"Static k-selection on a single-hop radio network, k = {k} contenders")
    print("(channel without collision detection; batched arrivals; no knowledge of k)")
    print()

    # --- One-fail Adaptive (Algorithm 1) ------------------------------------
    ofa = OneFailAdaptive()  # delta = 2.72, the paper's choice
    result = simulate(ofa, k=k, seed=seed)
    bound = paper_analysis.ofa_makespan_bound(k, delta=ofa.delta)
    print("One-fail Adaptive")
    print(f"  makespan          : {result.makespan} slots")
    print(f"  steps per node    : {result.steps_per_node:.2f}")
    print(f"  Theorem 1 bound   : 2(delta+1)k + O(log^2 k) ~= {bound:.0f} slots (w.h.p.)")
    print(f"  analysis constant : {paper_analysis.ofa_leading_constant(ofa.delta):.2f} steps/node")
    print()

    # --- Exp Back-on/Back-off (Algorithm 2) ---------------------------------
    ebb = ExpBackonBackoff()  # delta = 0.366, the paper's choice
    result = simulate(ebb, k=k, seed=seed)
    bound = paper_analysis.ebb_makespan_bound(k, delta=ebb.delta)
    print("Exp Back-on/Back-off")
    print(f"  makespan          : {result.makespan} slots")
    print(f"  steps per node    : {result.steps_per_node:.2f}")
    print(f"  Theorem 2 bound   : 4(1 + 1/delta)k = {bound:.0f} slots (w.h.p.)")
    print(f"  analysis constant : {paper_analysis.ebb_leading_constant(ebb.delta):.2f} steps/node")
    print()

    print(
        "For reference, no protocol in which all stations use the same probability\n"
        f"per slot can beat {paper_analysis.fair_protocol_optimal_ratio():.3f} steps/node "
        "(Section 5 of the paper)."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
