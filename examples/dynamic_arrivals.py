"""Dynamic k-selection: the paper's open problem, exercised on its protocols.

The paper analyses batched (static) arrivals and leaves the dynamic version —
messages arriving over time, statistically or adversarially — as future work
(Section 6).  Dynamic runs go through the same ``simulate()`` front door as
everything else: passing ``arrivals=`` routes the run to the exact node-level
engine (the shared-state and balls-in-bins reductions assume every station
starts at slot 0), and the per-message delivery latencies come back in
``result.metadata["latencies"]``.

The experiment harness fans the (protocol × arrival process × repetition)
grid out over worker processes; per-run seeds are fixed up front, so the
worker count never changes the numbers.

Run with::

    python examples/dynamic_arrivals.py [k] [runs]
"""

from __future__ import annotations

import sys

from repro import OneFailAdaptive, PoissonArrival, simulate
from repro.experiments.dynamic import run_dynamic_experiment


def main() -> int:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    # One dynamic run through the ordinary front door.
    result = simulate(OneFailAdaptive(), k=k, seed=7, arrivals=PoissonArrival(k=k, rate=0.1))
    latencies = result.metadata["latencies"]
    print(
        f"simulate(OneFailAdaptive(), k={k}, arrivals=PoissonArrival(rate=0.1)): "
        f"makespan={result.makespan}, mean latency={sum(latencies) / len(latencies):.1f} slots"
    )
    print()

    print(f"Dynamic k-selection with k = {k} messages, {runs} runs per cell")
    print("(node-level simulation; latency = delivery slot - arrival slot)")
    print()
    table = run_dynamic_experiment(k=k, runs=runs)
    print(table.render())
    print()
    print(
        "Batched (bursty) arrivals stress the protocols exactly like the static\n"
        "problem; smooth Poisson arrivals keep the instantaneous contention low, so\n"
        "per-message latency stays far below the static makespan/k ratio."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
