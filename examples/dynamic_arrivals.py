"""Dynamic k-selection: the paper's open problem, exercised on its protocols.

The paper analyses batched (static) arrivals and leaves the dynamic version —
messages arriving over time, statistically or adversarially — as future work
(Section 6).  This example runs One-fail Adaptive and Exp Back-on/Back-off
under Poisson and bursty arrival processes using the exact node-level
simulator, and reports both the makespan and the per-message delivery latency.

Because arrival times differ across nodes, the shared-state (fair) and
balls-in-bins (window) reductions no longer apply, so this example uses the
node-level engine and keeps k small.

Run with::

    python examples/dynamic_arrivals.py [k] [runs]
"""

from __future__ import annotations

import sys

from repro.experiments.dynamic import run_dynamic_experiment


def main() -> int:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    print(f"Dynamic k-selection with k = {k} messages, {runs} runs per cell")
    print("(node-level simulation; latency = delivery slot - arrival slot)")
    print()
    result = run_dynamic_experiment(k=k, runs=runs)
    print(result.render())
    print()
    print(
        "Batched (bursty) arrivals stress the protocols exactly like the static\n"
        "problem; smooth Poisson arrivals keep the instantaneous contention low, so\n"
        "per-message latency stays far below the static makespan/k ratio."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
