"""Compare all protocols of the paper's evaluation on a small sweep.

This is a scaled-down, interactive version of the Figure 1 / Table 1
experiments: it sweeps the five curves of Section 5 (plus the slotted-ALOHA
genie as a yardstick) over a handful of network sizes, prints the mean
steps/node ratios, and renders an ASCII log-log plot of the mean makespans.

Run with::

    python examples/compare_protocols.py            # k up to 10^4, 5 runs each
    python examples/compare_protocols.py 100000 10  # k up to 10^5, 10 runs each

For the full-scale reproduction (CSV/gnuplot artefacts, paper comparison) use
``python -m repro.experiments.figure1`` and ``python -m repro.experiments.table1``.
"""

from __future__ import annotations

import sys

from repro import SlottedAloha, paper_analysis
from repro.experiments import ExperimentConfig, reproduce_figure1
from repro.experiments.config import ProtocolSpec, paper_k_values, paper_protocol_suite
from repro.util.tables import format_text_table


def main() -> int:
    max_k = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    specs = paper_protocol_suite()
    specs.append(
        ProtocolSpec(
            key="aloha",
            label="Slotted ALOHA (known k)",
            factory=lambda k: SlottedAloha(k=k),
            analysis_ratio=lambda k: paper_analysis.fair_protocol_optimal_ratio(),
        )
    )
    config = ExperimentConfig(k_values=paper_k_values(max_k=max_k), runs=runs)

    print(f"Sweeping k in {list(config.k_values)} with {runs} runs per point ...")
    figure = reproduce_figure1(config=config, specs=specs, progress=True)

    headers = ["Protocol"] + [f"k={k}" for k in config.k_values] + ["Analysis"]
    rows = []
    for spec in specs:
        ks, means = figure.sweep.ratio_series(spec.key)
        row: list[object] = [spec.label]
        row.extend(f"{mean:.2f}" for mean in means)
        row.append(spec.analysis_text())
        rows.append(row)

    print()
    print("Mean steps/node ratio (the metric of Table 1):")
    print(format_text_table(headers, rows))
    print()
    print("Mean makespans on log-log axes (the shape of Figure 1):")
    print(figure.render_plot(width=70, height=20))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
