#!/usr/bin/env sh
# Fast benchmark smoke target: exercises each benchmark harness path that is
# cheap enough for CI (the parallel-execution fidelity checks and the
# batch-engine + batch-window-engine distributional/eligibility checks of
# bench_batch.py — both batch engines' sweeps must stay distributionally
# interchangeable with their per-run paths, and the registry must route fair
# and windowed cells to their own batch engines — plus the mega-batch checks
# of bench_megabatch.py: fused cross-cell sweeps are the default, stay
# deterministic, route to the mega engines with a per-cell fallback on
# fuse=False, and match the per-cell makespan distributions for every paper
# protocol) without running the full
# sweeps, then a Session-store smoke run proving that a repeated scenario
# execution is served entirely from the result store, a store-migration smoke
# (JSONL -> SQLite federation, re-served with 0 new simulations), and a
# simulation-service smoke (cached resubmission over HTTP).  The smoke-marked
# benchmark set includes bench_faults.py (crash-recovery time + zero-duplicate
# chaos assertions -> benchmark_results/BENCH_faults.json), and the chaos-
# marked test subset re-runs the deterministic fault-injection suite.
# The full batch-speedup trajectories (write benchmark_results/BENCH_batch.json
# and benchmark_results/BENCH_batch_window.json) run with:
#   PYTHONPATH=src python -m pytest benchmarks/bench_batch.py -q
# and the whole-Figure-1 mega-batch comparison (per-run vs per-cell batch vs
# fused; writes benchmark_results/BENCH_megabatch.json and asserts the fused
# sweep >=3x over the per-cell batch sweep) with:
#   PYTHONPATH=src python -m pytest benchmarks/bench_megabatch.py -q
# Usage:  sh scripts/bench_smoke.sh
set -eu
cd "$(dirname "$0")/.."

# --- Invariant lint ----------------------------------------------------------
# The tree must satisfy the machine-checked invariants (seeded randomness,
# monotonic-clock discipline, lock discipline, exception hygiene, registry
# contracts) before any benchmark numbers are worth reporting.
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli lint
echo "invariant lint ok: src/ is clean"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest benchmarks -q -m smoke --override-ini addopts= -p no:cacheprovider "$@"

# --- Chaos smoke -------------------------------------------------------------
# The deterministic fault-injection subset: journal replay after crashes,
# retry/resume under injected store faults, bounded-queue 503 backoff.
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest tests -q -m chaos --override-ini addopts= -p no:cacheprovider

# --- Session-store smoke -----------------------------------------------------
# First invocation populates the store; the second must report 0 new
# simulations (every replication served from the JSONL store).
STORE_DIR="$(mktemp -d)"
SERVICE_STORE_DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$STORE_DIR" "$SERVICE_STORE_DIR"
}
trap cleanup EXIT
SCENARIO="one-fail-adaptive(delta=2.72) k=256 reps=5 seed=2011"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro run "$SCENARIO" \
    --store "$STORE_DIR" --json > /dev/null
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro run "$SCENARIO" \
    --store "$STORE_DIR" --json \
  | python -c '
import json, sys
payload = json.load(sys.stdin)
assert payload["new_runs"] == 0, f"expected 0 new runs on re-run, got {payload}"
assert payload["cached_runs"] == 5, f"expected 5 cached runs, got {payload}"
print("session-store smoke ok: re-run served %d cached runs, %d new simulations"
      % (payload["cached_runs"], payload["new_runs"]))
'

# --- Store-migration smoke ---------------------------------------------------
# Federate the JSONL store populated above into a fresh SQLite store, then
# re-run against the SQLite spec: every replication must come from the
# migrated cell, with 0 new simulations.
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro store migrate \
    "$STORE_DIR" "sqlite:$STORE_DIR/store.db" > /dev/null
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro run "$SCENARIO" \
    --store "sqlite:$STORE_DIR/store.db" --json \
  | python -c '
import json, sys
payload = json.load(sys.stdin)
assert payload["new_runs"] == 0, f"expected 0 new runs after migration, got {payload}"
assert payload["cached_runs"] == 5, f"expected 5 migrated runs, got {payload}"
print("store-migrate smoke ok: sqlite store served %d migrated runs, %d new simulations"
      % (payload["cached_runs"], payload["new_runs"]))
'

# --- Simulation-service smoke ------------------------------------------------
# Boot `repro serve` on a free port, submit a fresh scenario end-to-end, then
# resubmit it: the second submission must report cached=true with 0 new
# simulations (served straight from the server's result store).
PORT="$(python -c 'import socket
s = socket.socket()
s.bind(("127.0.0.1", 0))
print(s.getsockname()[1])
s.close()')"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro serve \
    --port "$PORT" --store "$SERVICE_STORE_DIR" --quiet &
SERVER_PID=$!
URL="http://127.0.0.1:$PORT"
python -c "
import time, urllib.request
for _ in range(100):
    try:
        urllib.request.urlopen('$URL/healthz', timeout=1).read()
        break
    except OSError:
        time.sleep(0.1)
else:
    raise SystemExit('repro serve did not come up on $URL')
"
SERVICE_SCENARIO="one-fail-adaptive(delta=2.72) k=128 reps=4 seed=2011"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro submit "$SERVICE_SCENARIO" \
    --url "$URL" --json > /dev/null

# --- Metrics smoke -----------------------------------------------------------
# While the server is mid-round-trip, GET /metrics must serve Prometheus text
# covering each instrumented layer (http, jobs, session, store, engine).
python -c "
import urllib.request
with urllib.request.urlopen('$URL/metrics', timeout=5) as response:
    content_type = response.headers.get('Content-Type', '')
    text = response.read().decode('utf-8')
assert response.status == 200, f'GET /metrics returned {response.status}'
assert 'version=0.0.4' in content_type, f'unexpected Content-Type {content_type!r}'
for family in ('repro_http_requests_total', 'repro_jobs_submitted_total',
               'repro_session_cache_lookups_total', 'repro_store_append_seconds',
               'repro_engine_runs_total'):
    assert '# TYPE ' + family in text, 'missing metric family ' + family
print('metrics smoke ok: /metrics serves Prometheus text'
      ' (%d lines, all layers covered)' % len(text.splitlines()))
"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro submit "$SERVICE_SCENARIO" \
    --url "$URL" --json \
  | python -c '
import json, sys
payload = json.load(sys.stdin)
assert payload["cached"] is True, f"expected cached resubmission, got {payload}"
assert payload["new_runs"] == 0, f"expected 0 new runs on resubmit, got {payload}"
assert payload["cached_runs"] == 4, f"expected 4 cached runs, got {payload}"
print("service smoke ok: cached resubmission served %d runs, %d new simulations"
      % (payload["cached_runs"], payload["new_runs"]))
'
