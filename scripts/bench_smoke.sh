#!/usr/bin/env sh
# Fast benchmark smoke target: exercises each benchmark harness path that is
# cheap enough for CI (currently the parallel-execution fidelity checks)
# without running the full sweeps.  Usage:  sh scripts/bench_smoke.sh
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m pytest benchmarks -q -m smoke --override-ini addopts= -p no:cacheprovider "$@"
