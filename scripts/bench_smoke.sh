#!/usr/bin/env sh
# Fast benchmark smoke target: exercises each benchmark harness path that is
# cheap enough for CI (the parallel-execution fidelity checks and the
# batch-engine distributional/eligibility checks of bench_batch.py) without
# running the full sweeps.  The full batch-speedup trajectory (writes
# benchmark_results/BENCH_batch.json) runs with:
#   PYTHONPATH=src python -m pytest benchmarks/bench_batch.py -q
# Usage:  sh scripts/bench_smoke.sh
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m pytest benchmarks -q -m smoke --override-ini addopts= -p no:cacheprovider "$@"
