#!/usr/bin/env sh
# Fast benchmark smoke target: exercises each benchmark harness path that is
# cheap enough for CI (the parallel-execution fidelity checks and the
# batch-engine distributional/eligibility checks of bench_batch.py) without
# running the full sweeps, then a Session-store smoke run proving that a
# repeated scenario execution is served entirely from the result store.
# The full batch-speedup trajectory (writes benchmark_results/BENCH_batch.json)
# runs with:
#   PYTHONPATH=src python -m pytest benchmarks/bench_batch.py -q
# Usage:  sh scripts/bench_smoke.sh
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest benchmarks -q -m smoke --override-ini addopts= -p no:cacheprovider "$@"

# --- Session-store smoke -----------------------------------------------------
# First invocation populates the store; the second must report 0 new
# simulations (every replication served from the JSONL store).
STORE_DIR="$(mktemp -d)"
trap 'rm -rf "$STORE_DIR"' EXIT
SCENARIO="one-fail-adaptive(delta=2.72) k=256 reps=5 seed=2011"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro run "$SCENARIO" \
    --store "$STORE_DIR" --json > /dev/null
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro run "$SCENARIO" \
    --store "$STORE_DIR" --json \
  | python -c '
import json, sys
payload = json.load(sys.stdin)
assert payload["new_runs"] == 0, f"expected 0 new runs on re-run, got {payload}"
assert payload["cached_runs"] == 5, f"expected 5 cached runs, got {payload}"
print("session-store smoke ok: re-run served %d cached runs, %d new simulations"
      % (payload["cached_runs"], payload["new_runs"]))
'
