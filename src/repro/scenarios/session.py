"""The :class:`Session` service API: ``Session(store_dir).run(scenario)``.

A session is the one spec-driven front door to every execution path in this
repository.  Given a :class:`~repro.scenarios.scenario.Scenario`, it

1. content-hashes the scenario and, when backed by a result store (any
   :class:`~repro.scenarios.store.StoreBackend` — a JSONL directory, an
   indexed SQLite file, or a spec string selecting one), loads the
   replications already on record (re-running a completed scenario costs
   **zero** new simulations);
2. plans exactly the missing replications as
   :class:`~repro.experiments.parallel.SimulationUnit` work units — *fusable*
   cells (the registry's :func:`~repro.engine.registry.fused_engine_for`
   names the mega engine) are grouped by fuse key and stacked into **one
   fused kernel unit per group**, so a whole grid of same-class cells costs
   a single lockstep kernel pass; batch-eligible cells that cannot fuse get
   one vectorised batch unit each
   (:func:`~repro.engine.registry.batch_engine_for`:
   :class:`~repro.engine.batch_engine.BatchFairEngine` for fair cells,
   :class:`~repro.engine.batch_window_engine.BatchWindowEngine` for windowed
   ones), and everything else runs as per-replication units;
3. fans the units out over a
   :class:`~repro.experiments.parallel.ParallelExecutor` (cells across
   processes, replications vectorised within); and
4. appends each fresh outcome to the store, so an interrupted sweep resumes
   with only the missing cells executed.

The sweep experiments (:func:`repro.experiments.runner.run_sweep`, Figure 1,
Table 1, the dynamic extension) and the ``repro run`` CLI are all thin
scenario-preset builders over this class, and the simulation service
(:mod:`repro.service`) shares **one** session across its worker threads.

Thread-safety
-------------
A session may be shared by concurrent callers (the service's job-queue
workers each call :meth:`Session.run` on the same instance): store reads and
writes are serialised by an internal lock on top of the store's own advisory
file locking, and all remaining per-call state is local to ``run_all``.
Progress callbacks fire on whichever thread executes the session call — a
worker callback context, not necessarily the main thread — so
:data:`SessionProgress` implementations must themselves be thread-safe when
one callback object observes several sessions or jobs.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.statistics import RunStatistics, summarize_makespans
from repro.engine.result import SimulationResult
from repro.obs import REGISTRY, span
from repro.experiments.parallel import (
    FusedCell,
    ParallelExecutor,
    SimulationUnit,
    UnitOutcome,
)
from repro.scenarios.scenario import Scenario
from repro.scenarios.store import StoreBackend, StoredRun, open_store

__all__ = ["ResultSet", "Session", "SessionProgress"]

#: Progress callback: (scenario index, scenario, replications done, total).
#: Cached replications are reported immediately when planning starts, so
#: ``done`` always reaches ``total`` whether the work was fresh or stored.
#: Invocations happen in *worker callback context*: the thread that called
#: :meth:`Session.run`/:meth:`Session.run_all` (which, under the simulation
#: service, is a job-queue worker thread) — never concurrently for one call,
#: but not necessarily the main thread.
#:
#: Cancellation contract: a callback may *raise* to abort the session call
#: cooperatively (the service's deadline/cancel machinery raises
#: :class:`~repro.service.reliability.JobCancelled` here).  The exception
#: propagates out of :meth:`Session.run`/:meth:`Session.run_all`, and every
#: replication already reported as done has been appended to the store
#: *before* its progress callback fired — so an aborted cell resumes from
#: the completed prefix on the next run instead of re-simulating it.
SessionProgress = Callable[[int, Scenario, int, int], None]

_M_CACHE = REGISTRY.counter(
    "repro_session_cache_lookups_total",
    "run_cached fast-path probes, by outcome.",
    ("result",),
)
_M_REPLICATIONS = REGISTRY.counter(
    "repro_session_replications_total",
    "Replications delivered by session calls, by source (cached vs fresh).",
    ("source",),
)
_M_CELLS = REGISTRY.counter(
    "repro_session_cells_total",
    "Scenario cells planned, by execution mode (one vectorised batch unit "
    "vs per-replication units).",
    ("mode",),
)
# Children resolved once — the cache probe is the service's hottest path.
_M_CACHE_HIT = _M_CACHE.labels(result="hit")
_M_CACHE_MISS = _M_CACHE.labels(result="miss")
_M_REPL_CACHED = _M_REPLICATIONS.labels(source="cached")
_M_REPL_FRESH = _M_REPLICATIONS.labels(source="fresh")


@dataclass(frozen=True)
class _CellPlan:
    """Resolved execution plan of one scenario under one session's settings."""

    protocol: object
    arrivals: object
    channel: object
    use_batch: bool
    use_fused: bool
    expected_engine: str  # name the produced SimulationResult.engine will carry
    fuse_key: object = None  # set when use_fused: cells sharing it fuse together


@dataclass(frozen=True)
class ResultSet:
    """All replications of one scenario, with provenance.

    ``results`` is ordered by replication index; ``cached_runs`` of them were
    served from the store, ``new_runs`` were simulated by this call.
    ``elapsed_seconds`` is the aggregate simulation time of *all* replications
    (stored runs contribute their recorded duration), so it is comparable
    across worker counts and across resumed sessions.
    """

    scenario: Scenario
    scenario_hash: str
    results: tuple[SimulationResult, ...]
    seeds: tuple[int, ...]
    new_runs: int
    cached_runs: int
    elapsed_seconds: float

    @property
    def engine_used(self) -> str:
        """Engine name that produced the runs (they all share one)."""
        return self.results[0].engine

    @property
    def solved_results(self) -> tuple[SimulationResult, ...]:
        return tuple(result for result in self.results if result.solved)

    @property
    def all_solved(self) -> bool:
        return len(self.solved_results) == len(self.results)

    @property
    def makespans(self) -> list[int]:
        return [result.makespan for result in self.solved_results if result.makespan is not None]

    def makespan_statistics(self) -> RunStatistics:
        return summarize_makespans(self.makespans)

    @property
    def mean_makespan(self) -> float:
        return self.makespan_statistics().mean

    @property
    def mean_ratio(self) -> float:
        return summarize_makespans(
            [makespan / self.scenario.k for makespan in self.makespans]
        ).mean

    def to_dict(self) -> dict[str, object]:
        """Machine-readable summary (the ``repro run --json`` payload)."""
        return {
            "scenario": self.scenario.to_dict(),
            "scenario_string": self.scenario.format(),
            "hash": self.scenario_hash,
            "engine": self.engine_used,
            "new_runs": self.new_runs,
            "cached_runs": self.cached_runs,
            "elapsed_seconds": self.elapsed_seconds,
            "seeds": list(self.seeds),
            "solved_runs": len(self.solved_results),
            "mean_makespan": self.mean_makespan if self.makespans else None,
            "mean_steps_per_node": self.mean_ratio if self.makespans else None,
            "results": [result.to_dict() for result in self.results],
        }


class Session:
    """Spec-driven execution service with an optional persistent result store.

    Parameters
    ----------
    store_dir:
        Where results persist: an already-built
        :class:`~repro.scenarios.store.StoreBackend`, a ``Path`` (JSONL
        directory), or a store spec string (``jsonl:dir``,
        ``sqlite:file.db``; a bare path is a JSONL directory) — see
        :func:`~repro.scenarios.store.open_store`.  ``None`` (default) runs
        everything in memory — no persistence, no cache hits.
    workers:
        Worker processes for fan-out (``1`` = serial in-process, ``0``/
        ``None`` = one per CPU).  Seeds travel with the scenarios, so the
        worker count never changes the results.
    batch:
        Whether batch-eligible cells run as one vectorised engine call
        (default True).  ``False`` replays the historical per-run streams
        (and disables cross-cell fusion, which is a batched path).
    fuse:
        Whether fusable cells of one :meth:`run_all` grid are stacked into
        cross-cell mega-batch kernels (default True; requires ``batch``).
        ``False`` falls back to one batch unit per cell.  An explicit
        ``engine="mega"``/``"mega-window"`` scenario fuses regardless.
    """

    def __init__(
        self,
        store_dir: str | Path | StoreBackend | None = None,
        workers: int | None = 1,
        batch: bool = True,
        fuse: bool = True,
    ) -> None:
        self.store = open_store(store_dir) if store_dir is not None else None
        self.workers = workers
        self.batch = batch
        self.fuse = fuse
        # Serialises this session's store access so one Session instance can
        # be shared by concurrent callers (e.g. service worker threads).
        self._store_lock = threading.Lock()

    # ----------------------------------------------------------------- public
    def run(self, scenario: Scenario, progress: SessionProgress | None = None) -> ResultSet:
        """Run one scenario (serving completed replications from the store)."""
        return self.run_all([scenario], progress=progress)[0]

    def cached_count(self, scenario: Scenario) -> int:
        """How many of the scenario's replications this session would serve
        from its store without simulating (0 for store-less sessions).

        A scenario is fully cached — ``cached_count(s) == s.replications`` —
        exactly when :meth:`run` would report ``new_runs == 0``; the
        simulation service uses this to answer repeat submissions
        synchronously instead of queueing them.
        """
        if self.store is None:
            return 0
        plan = self._plan(scenario)
        with self._store_lock:
            index = self.store.run_index(scenario)
        expected_seeds = scenario.seeds()
        usable = {
            replication
            for replication, meta in index.items()
            if replication < scenario.replications
            and meta.seed == expected_seeds[replication]
            and meta.engine == plan.expected_engine
        }
        if plan.use_batch or plan.use_fused:
            # Same all-or-nothing rule as _usable_cached: a batch or fused
            # cell is reusable only when it was produced as a batch of
            # exactly this replication count.
            usable = {
                replication
                for replication in usable
                if index[replication].batch_reps == scenario.replications
            }
            if len(usable) != scenario.replications:
                usable = set()
        return len(usable)

    def is_cached(self, scenario: Scenario) -> bool:
        """Whether :meth:`run` would perform zero new simulations."""
        return self.cached_count(scenario) == scenario.replications

    def run_cached(self, scenario: Scenario) -> ResultSet | None:
        """Serve a scenario entirely from the store, or ``None`` on any miss.

        One store read total — unlike ``is_cached(s) and run(s)``, which
        loads the file twice.  This is the service's cached fast path: a
        definite miss is answered by the store's own ``cached_count`` probe
        (an O(1) counter fetch on indexed backends, a stat-validated cache
        hit on JSONL) and a repeat submission costs zero simulations.
        """
        if self.store is None:
            return None
        with self._store_lock:
            # Upper bound on usable replications: short-circuits misses
            # without deserialising any results.
            if self.store.cached_count(scenario) < scenario.replications:
                _M_CACHE_MISS.inc()
                return None
        usable = self._usable_cached(scenario, self._plan(scenario))
        if len(usable) != scenario.replications:
            _M_CACHE_MISS.inc()
            return None
        _M_CACHE_HIT.inc()
        _M_REPL_CACHED.inc(len(usable))
        ordered = [usable[replication] for replication in range(scenario.replications)]
        return ResultSet(
            scenario=scenario,
            scenario_hash=scenario.content_hash(),
            results=tuple(run.result for run in ordered),
            seeds=tuple(scenario.seeds()),
            new_runs=0,
            cached_runs=len(ordered),
            elapsed_seconds=sum(run.elapsed_seconds for run in ordered),
        )

    def ingest(self, scenario: Scenario, runs: Sequence[StoredRun]) -> int:
        """Merge externally produced replications into this session's store.

        The federation receive path (``POST /results/<hash>`` and
        ``repro store migrate``): replications whose index is already on
        record are ignored — existing results are never overwritten — and
        runs whose seed disagrees with the scenario's derivation are dropped,
        so a misbehaving peer cannot poison the store.  Returns how many
        replications were actually added; idempotent.
        """
        if self.store is None:
            raise ValueError("session has no store to ingest into")
        expected_seeds = scenario.seeds()
        valid = [
            run
            for run in runs
            if run.replication >= len(expected_seeds)
            or run.seed == expected_seeds[run.replication]
        ]
        with self._store_lock:
            existing = set(self.store.load(scenario))
            missing = [
                run
                for run in sorted(valid, key=lambda run: run.replication)
                if run.replication not in existing
            ]
            if missing:
                self.store.append(scenario, missing)
        return len(missing)

    def run_all(
        self,
        scenarios: Sequence[Scenario],
        progress: SessionProgress | None = None,
    ) -> list[ResultSet]:
        """Run many scenarios as one fan-out; returns result sets in order.

        This is the sweep primitive: all missing replications across all
        scenarios are planned up front and executed through a single
        :class:`ParallelExecutor`, so cells fill every worker regardless of
        which scenario they belong to.
        """
        if not scenarios:
            return []
        with span("session.plan", scenarios=len(scenarios)) as plan_span:
            hashes = [scenario.content_hash() for scenario in scenarios]
            all_seeds = [scenario.seeds() for scenario in scenarios]
            plans = [self._plan(scenario) for scenario in scenarios]
            # One batched cache probe for the whole grid (a single backend
            # query on indexed stores), then full result loads only for the
            # cells the counts say can actually serve: a cell with zero runs
            # on record — the entire grid on a cold store — never touches
            # the store again, and batch/fused cells (all-or-nothing reuse)
            # skip the load unless every replication is on record.
            if self.store is not None:
                with self._store_lock:
                    counts = self.store.cached_counts(scenarios)
            else:
                counts = [0] * len(scenarios)
            cached = [
                self._usable_cached(scenario, plan)
                if count > 0
                and (
                    not (plan.use_batch or plan.use_fused)
                    or count >= scenario.replications
                )
                else {}
                for scenario, plan, count in zip(scenarios, plans, counts)
            ]

            units: list[SimulationUnit] = []
            fused_groups: dict[tuple, list[FusedCell]] = {}
            done_count = [0] * len(scenarios)
            for index, scenario in enumerate(scenarios):
                missing = [
                    replication
                    for replication in range(scenario.replications)
                    if replication not in cached[index]
                ]
                done_count[index] = scenario.replications - len(missing)
                if progress is not None:
                    for step in range(done_count[index]):
                        progress(index, scenario, step + 1, scenario.replications)
                if not missing:
                    continue
                plan = plans[index]
                if plan.use_fused:
                    # Stack this cell onto its fusion group; the groups
                    # become single kernel units after the scan.
                    _M_CELLS.labels(mode="fused").inc()
                    seeds = all_seeds[index]
                    cell = FusedCell(
                        protocol=plan.protocol,
                        k=scenario.k,
                        seeds=tuple(seeds[replication] for replication in missing),
                        max_slots=scenario.max_slots(),
                        tag=(index, tuple(missing)),
                    )
                    group = (plan.expected_engine, plan.fuse_key)
                    fused_groups.setdefault(group, []).append(cell)
                    continue
                units.extend(
                    self._plan_units(index, scenario, plan, all_seeds[index], missing)
                )
            for (engine_name, _), cells in fused_groups.items():
                units.append(
                    SimulationUnit(
                        protocol=cells[0].protocol,
                        k=cells[0].k,
                        engine=engine_name,
                        cells=tuple(cells),
                    )
                )
            plan_span["units"] = len(units)
            plan_span["fused_groups"] = len(fused_groups)
            plan_span["cached_replications"] = sum(done_count)
        _M_REPL_CACHED.inc(sum(done_count))

        # Outcomes are persisted as they complete (not after the whole
        # fan-out), so a sweep killed mid-run keeps every finished unit on
        # record and the next invocation resumes from there.
        fresh: list[dict[int, StoredRun]] = [{} for _ in scenarios]

        def record_cell(
            tag: object, results: Sequence[SimulationResult], elapsed_seconds: float
        ) -> None:
            index, replications = tag
            per_run_elapsed = elapsed_seconds / max(len(results), 1)
            runs = [
                StoredRun(
                    replication=replication,
                    seed=result.seed,
                    elapsed_seconds=per_run_elapsed,
                    result=result,
                )
                for replication, result in zip(replications, results)
            ]
            for run in runs:
                fresh[index][run.replication] = run
            _M_REPL_FRESH.inc(len(runs))
            if self.store is not None:
                with span("store.append", runs=len(runs)), self._store_lock:
                    self.store.append(scenarios[index], runs)
            if progress is not None:
                for _ in runs:
                    done_count[index] += 1
                    progress(
                        index,
                        scenarios[index],
                        done_count[index],
                        scenarios[index].replications,
                    )

        def unit_progress(outcome: UnitOutcome) -> None:
            if outcome.cells is not None:
                # A fused group: scatter the kernel's results back to the
                # member cells, each persisted under its own scenario hash
                # with its apportioned share of the kernel's wall clock.
                for cell_outcome in outcome.cells:
                    record_cell(
                        cell_outcome.tag,
                        cell_outcome.results,
                        cell_outcome.elapsed_seconds,
                    )
                return
            record_cell(outcome.tag, outcome.results, outcome.elapsed_seconds)

        ParallelExecutor(workers=self.workers).run(units, progress=unit_progress)

        result_sets = []
        for index, scenario in enumerate(scenarios):
            runs = {**cached[index], **fresh[index]}
            ordered = [runs[replication] for replication in range(scenario.replications)]
            result_sets.append(
                ResultSet(
                    scenario=scenario,
                    scenario_hash=hashes[index],
                    results=tuple(run.result for run in ordered),
                    seeds=tuple(all_seeds[index]),
                    new_runs=len(fresh[index]),
                    cached_runs=len(cached[index]),
                    elapsed_seconds=sum(run.elapsed_seconds for run in ordered),
                )
            )
        return result_sets

    # --------------------------------------------------------------- planning
    def _usable_cached(self, scenario: Scenario, plan: "_CellPlan") -> dict[int, StoredRun]:
        """The stored replications this session may serve for ``scenario``.

        Serves only the replications this call asks for, and only runs
        produced by the engine this session would pick: the scenario hash
        deliberately ignores the batch/per-run sampling mode (both are valid
        samples of the cell), so a store written under the other mode is
        recomputed rather than mixed into one result set.
        """
        if self.store is None:
            return {}
        with self._store_lock:
            stored = self.store.load(scenario)
        usable = {
            replication: run
            for replication, run in stored.items()
            if replication < scenario.replications
            and run.result.engine == plan.expected_engine
        }
        if plan.use_batch or plan.use_fused:
            # A batch cell's results depend on the whole batch composition
            # (one interleaved stream per batch-engine call, fair and
            # windowed alike), so stored runs are reusable only when they
            # come from the same engine and a batch of exactly this
            # replication count — anything else is recomputed in full so a
            # resumed run is bit-identical to a fresh one.  Fused cells
            # follow the same rule: their per-cell streams make the results
            # independent of the *group* composition, but not of the
            # replication count within the cell.
            usable = {
                replication: run
                for replication, run in usable.items()
                if run.result.metadata.get("batch_reps") == scenario.replications
            }
            if len(usable) != scenario.replications:
                usable = {}
        return usable

    def _plan(self, scenario: Scenario) -> "_CellPlan":
        """Resolve a scenario's components and the engine this session will use.

        Fusion, batch eligibility and engine selection are all registry
        queries (:func:`~repro.engine.registry.fused_engine_for` /
        :func:`~repro.engine.registry.batch_engine_for` /
        :func:`~repro.engine.registry.pick_engine_name`) — the same
        predicates the sweep runner and the engine front doors use, so the
        layers cannot disagree about a cell's engine.
        """
        from repro.engine.registry import (
            batch_engine_for,
            engine_class,
            fused_engine_for,
            pick_engine_name,
        )

        protocol = scenario.build_protocol()
        arrivals = scenario.build_arrivals()
        channel = scenario.build_channel()
        # Fusion supersedes per-cell batching: a fusable cell always routes
        # to the mega engine when this session fuses (even when it ends up
        # alone in its group), so a cell's expected engine is a deterministic
        # function of the scenario and the session settings — resumed sweeps
        # look for cached runs under the same engine they would write.
        fused_engine = fused_engine_for(
            protocol, engine=scenario.engine, channel=channel, arrivals=arrivals
        )
        use_fused = fused_engine is not None and (
            (self.batch and self.fuse) or scenario.engine == fused_engine
        )
        batch_engine = batch_engine_for(
            protocol, engine=scenario.engine, channel=channel, arrivals=arrivals
        )
        # An explicitly selected batch engine always batches; "auto" batches
        # only when this session says so.
        use_batch = (
            not use_fused
            and batch_engine is not None
            and (self.batch or scenario.engine == batch_engine)
        )
        fuse_key = None
        if use_fused:
            expected_engine = fused_engine
            fuse_key = engine_class(fused_engine).fuse_key(protocol)
        elif use_batch:
            expected_engine = batch_engine
        else:
            expected_engine = pick_engine_name(
                protocol, engine=scenario.engine, channel=channel, arrivals=arrivals
            )
        return _CellPlan(
            protocol=protocol,
            arrivals=arrivals,
            channel=channel,
            use_batch=use_batch,
            use_fused=use_fused,
            expected_engine=expected_engine,
            fuse_key=fuse_key,
        )

    def _plan_units(
        self,
        index: int,
        scenario: Scenario,
        plan: "_CellPlan",
        seeds: Sequence[int],
        missing: Sequence[int],
    ) -> list[SimulationUnit]:
        """Turn a scenario's missing replications into executor work units.

        The unit ``tag`` is ``(scenario index, replication indices)`` so the
        outcomes can be routed back and persisted per replication.
        """
        if plan.use_batch:
            _M_CELLS.labels(mode="batch").inc()
            return [
                SimulationUnit(
                    protocol=plan.protocol,
                    k=scenario.k,
                    engine=scenario.engine,
                    max_slots=scenario.max_slots(),
                    tag=(index, tuple(missing)),
                    seeds=tuple(seeds[replication] for replication in missing),
                )
            ]
        _M_CELLS.labels(mode="per-run").inc()
        return [
            SimulationUnit(
                protocol=plan.protocol,
                k=scenario.k,
                seed=seeds[replication],
                engine=scenario.engine,
                max_slots=scenario.max_slots(),
                arrivals=plan.arrivals,
                channel=plan.channel,
                tag=(index, (replication,)),
            )
            for replication in missing
        ]
