"""Deterministic fault-injecting store wrapper (``chaos:<inner-spec>?…``).

:class:`ChaosStore` wraps any registered :class:`~repro.scenarios.store.
StoreBackend` and injects seeded, reproducible faults on the two paths a
session exercises under load — ``append`` and ``load`` — plus optional slow
I/O.  It exists so every recovery path in the service layer (job retry with
backoff, journal replay, partial-cell resume, federation retry) is exercised
by *deterministic* tests and the ``bench_faults`` chaos smoke instead of by
hope.  With no fault parameters it is a transparent proxy and passes the
full backend-conformance suite.

Spec grammar (the trailing query belongs to chaos; everything before the
last ``?`` whose keys are all chaos options is the inner spec, so an inner
``sqlite:store.db?ttl=60`` keeps its own options)::

    chaos:results/store?seed=7&append_fail=0.3
    chaos:jsonl:results/store?seed=7&append_fail=1&append_fail_max=2
    chaos:sqlite:store.db?ttl=60?seed=1&load_fail=0.5&slow_ms=5

Options — each of ``append``/``load`` takes ``<kind>_fail`` (probability,
``1`` = always), ``<kind>_fail_skip`` (first N calls never fail) and
``<kind>_fail_max`` (at most N injected failures, guaranteeing eventual
success under retry); ``slow_ms`` adds fixed latency to both paths;
``seed`` fixes every decision stream (see
:class:`~repro.service.reliability.FaultInjector`).

Injected failures raise :class:`~repro.service.reliability.InjectedFault`,
a :class:`~repro.service.reliability.TransientError` — retryable under the
default :class:`~repro.service.reliability.RetryPolicy`.  Listing, probe and
janitorial methods (``cached_count``, ``run_index``, ``scenario_for_hash``,
``compact``, …) delegate untouched: the chaos surface is the result-I/O hot
path, not the bookkeeping around it.
"""

from __future__ import annotations

from collections.abc import Sequence
from urllib.parse import parse_qsl

from repro.scenarios.scenario import Scenario
from repro.scenarios.store import (
    CompactionReport,
    RunMeta,
    StoreBackend,
    StoredRun,
    StoreRecord,
    open_store,
    register_store_backend,
)
from repro.service.reliability import FaultInjector

__all__ = ["ChaosStore"]

#: Query keys the chaos layer owns; a trailing query with any other key is
#: part of the inner spec (e.g. sqlite's ``ttl``/``max_rows``).
_FAULT_KINDS = ("append", "load")
_CHAOS_KEYS = frozenset(
    {"seed", "slow_ms"}
    | {f"{kind}_fail" for kind in _FAULT_KINDS}
    | {f"{kind}_fail_skip" for kind in _FAULT_KINDS}
    | {f"{kind}_fail_max" for kind in _FAULT_KINDS}
)


def _split_chaos_spec(location: str) -> tuple[str, list[tuple[str, str]]]:
    """Split ``<inner-spec>[?chaos-params]`` on the *last* ``?`` — and only
    when every key in that query is a chaos option."""
    inner, sep, query = location.rpartition("?")
    if not sep:
        return location, []
    params = parse_qsl(query, keep_blank_values=True)
    if params and all(key in _CHAOS_KEYS for key, _ in params):
        return inner, params
    return location, []


@register_store_backend
class ChaosStore(StoreBackend):
    """A :class:`FaultInjector`-wrapped view of any other store backend."""

    name = "chaos"

    def __init__(
        self, inner: "StoreBackend | str", injector: FaultInjector | None = None
    ) -> None:
        self.inner = inner if isinstance(inner, StoreBackend) else open_store(inner)
        if isinstance(self.inner, ChaosStore):
            raise ValueError("chaos stores do not nest")
        self.injector = injector if injector is not None else FaultInjector()
        # Chaos changes reliability, not capability: mirror the inner store.
        self.capabilities = self.inner.capabilities

    @classmethod
    def from_spec(cls, location: str) -> "ChaosStore":
        inner_spec, params = _split_chaos_spec(location)
        if not inner_spec:
            raise ValueError(f"chaos spec {location!r} names no inner store")
        seed = 0
        rates: dict[str, float] = {}
        skips: dict[str, int] = {}
        caps: dict[str, int] = {}
        delays: dict[str, float] = {}
        for key, value in params:
            try:
                if key == "seed":
                    seed = int(value)
                elif key == "slow_ms":
                    delays["slow"] = float(value) / 1000.0
                elif key.endswith("_fail_skip"):
                    skips[key.removesuffix("_fail_skip")] = int(value)
                elif key.endswith("_fail_max"):
                    caps[key.removesuffix("_fail_max")] = int(value)
                elif key.endswith("_fail"):
                    rates[key.removesuffix("_fail")] = float(value)
            except ValueError as error:
                raise ValueError(f"bad chaos option {key}={value!r}: {error}") from None
        injector = FaultInjector(
            seed=seed, rates=rates, skips=skips, caps=caps, delays=delays
        )
        return cls(open_store(inner_spec), injector)

    def describe(self) -> str:
        return f"{self.name}:{self.inner.describe()}?{self.injector.spec_params()}"

    # ------------------------------------------------------- injected paths
    def append(self, scenario: Scenario, runs: Sequence[StoredRun]) -> None:
        self.injector.maybe_delay("slow")
        self.injector.maybe_fail("append", "injected store-append failure")
        self.inner.append(scenario, runs)

    def load(self, scenario: Scenario) -> dict[int, StoredRun]:
        self.injector.maybe_delay("slow")
        self.injector.maybe_fail("load", "injected store-load failure")
        return self.inner.load(scenario)

    # ------------------------------------------------------ clean delegates
    def run_index(self, scenario: Scenario) -> dict[int, RunMeta]:
        return self.inner.run_index(scenario)

    def cached_count(self, scenario: Scenario) -> int:
        return self.inner.cached_count(scenario)

    def scenarios_on_record(self) -> list[Scenario]:
        return self.inner.scenarios_on_record()

    def scenario_for_hash(self, content_hash: str) -> Scenario | None:
        return self.inner.scenario_for_hash(content_hash)

    def compact(self) -> CompactionReport:
        return self.inner.compact()

    def summaries(self) -> list[StoreRecord]:
        return self.inner.summaries()

    def close(self) -> None:
        self.inner.close()
