"""Indexed SQLite result-store backend (``sqlite:path.db``).

One database file holds every scenario cell: a ``scenarios`` table carrying
the self-describing header plus maintained run counters, and a ``runs`` table
with one row per replication keyed ``(hash, replication)``.  Compared to the
JSONL backend this buys:

* **O(1) ``cached_count``** — the append transaction maintains ``run_count``
  and ``max_replication`` per scenario, so the service's repeat-submission
  probe is a single primary-key row fetch instead of a result-tail read.
* **WAL-mode concurrent appends** — writers from any number of threads *and
  processes* serialise on SQLite's own locking (``BEGIN IMMEDIATE`` with a
  generous busy timeout); readers never block behind them.
* **Compaction and eviction** — :meth:`SqliteStore.compact` checkpoints the
  WAL and vacuums; optional ``ttl`` / ``max_rows`` spec options
  (``sqlite:store.db?ttl=86400&max_rows=100000``) evict stale cells inside
  every append transaction, bounding an always-on server's store.

Durability/consistency notes: every append is one transaction, so a killed
process loses at most its uncommitted batch — never a torn record.  The
recorded ``scenario_json`` of a cell is first-writer-wins (matching the JSONL
header), while run rows are last-writer-wins (``INSERT OR REPLACE``),
matching JSONL's last-line-wins reads.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from collections.abc import Sequence
from pathlib import Path

from repro.engine.result import SimulationResult
from repro.obs import REGISTRY
from repro.scenarios.scenario import Scenario
from repro.scenarios.store import (
    _HASH_RE,
    CompactionReport,
    RunMeta,
    StoreBackend,
    StoreCapabilities,
    StoredRun,
    register_store_backend,
)

__all__ = ["SqliteStore"]

# Shared store-layer families (same names as the JSONL backend's; the
# registry get-or-creates, so whichever module imports first wins).
_M_APPEND = REGISTRY.histogram(
    "repro_store_append_seconds", "Store append latency, by backend.", ("backend",)
)
_M_PROBE = REGISTRY.histogram(
    "repro_store_probe_seconds",
    "cached_count probe latency, by backend.",
    ("backend",),
)
_M_EVICTIONS = REGISTRY.counter(
    "repro_store_evictions_total",
    "Run rows evicted by retention policies, by backend.",
    ("backend",),
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS scenarios (
    hash            TEXT PRIMARY KEY,
    scenario_json   TEXT NOT NULL,
    run_count       INTEGER NOT NULL DEFAULT 0,
    max_replication INTEGER NOT NULL DEFAULT -1,
    updated_at      REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    hash            TEXT NOT NULL,
    replication     INTEGER NOT NULL,
    seed            INTEGER NOT NULL,
    engine          TEXT NOT NULL,
    batch_reps      INTEGER,
    solved          INTEGER NOT NULL,
    elapsed_seconds REAL NOT NULL,
    result_json     TEXT NOT NULL,
    created_at      REAL NOT NULL,
    PRIMARY KEY (hash, replication)
);
CREATE INDEX IF NOT EXISTS runs_created_at ON runs (created_at);
"""

#: How long a writer waits on a competing transaction before failing loudly.
_BUSY_TIMEOUT_MS = 30_000


@register_store_backend
class SqliteStore(StoreBackend):
    """WAL-mode SQLite store with maintained per-scenario run counters.

    Parameters
    ----------
    path:
        Database file; parent directories are created.  One file per store.
    ttl:
        Optional: evict runs older than this many seconds (other scenarios'
        runs — the cell being appended is never aged out from under its own
        writer).  Applied during appends and :meth:`compact`.
    max_rows:
        Optional: after TTL eviction, whole least-recently-updated scenario
        cells are dropped (never the one being appended) until at most this
        many run rows remain.
    """

    name = "sqlite"
    capabilities = StoreCapabilities(indexed_counts=True, eviction=True, multiprocess=True)

    def __init__(
        self,
        path: str | Path,
        *,
        ttl: float | None = None,
        max_rows: int | None = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.ttl = ttl
        self.max_rows = max_rows
        self._local = threading.local()
        self._connections: list[sqlite3.Connection] = []
        self._connections_lock = threading.Lock()
        self._connection()  # create the schema eagerly, fail early on a bad path

    @classmethod
    def from_spec(cls, location: str) -> "SqliteStore":
        """Parse ``path.db`` or ``path.db?ttl=<seconds>&max_rows=<n>``."""
        path, _, query = location.partition("?")
        options: dict[str, str] = {}
        if query:
            for pair in query.split("&"):
                key, _, value = pair.partition("=")
                options[key] = value
        unknown = set(options) - {"ttl", "max_rows"}
        if unknown:
            raise ValueError(f"unknown sqlite store option(s): {', '.join(sorted(unknown))}")
        try:
            ttl = float(options["ttl"]) if "ttl" in options else None
            max_rows = int(options["max_rows"]) if "max_rows" in options else None
        except ValueError as error:
            raise ValueError(f"bad sqlite store option value: {error}") from error
        return cls(path, ttl=ttl, max_rows=max_rows)

    def describe(self) -> str:
        options = []
        if self.ttl is not None:
            options.append(f"ttl={self.ttl:g}")
        if self.max_rows is not None:
            options.append(f"max_rows={self.max_rows}")
        suffix = f"?{'&'.join(options)}" if options else ""
        return f"{self.name}:{self.path}{suffix}"

    # ---------------------------------------------------------- connections
    def _connection(self) -> sqlite3.Connection:
        """This thread's connection (WAL journalling, autocommit mode).

        ``isolation_level=None`` leaves transaction control to explicit
        ``BEGIN IMMEDIATE``/``COMMIT`` statements; sharing one connection per
        thread keeps SQLite's locking semantics simple and predictable.
        """
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            return connection
        connection = sqlite3.connect(
            self.path, timeout=_BUSY_TIMEOUT_MS / 1000, isolation_level=None,
            check_same_thread=False,
        )
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        connection.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        connection.executescript(_SCHEMA)
        self._local.connection = connection
        with self._connections_lock:
            self._connections.append(connection)
        return connection

    def close(self) -> None:
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            try:
                connection.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass
        self._local = threading.local()

    # -------------------------------------------------------------- reading
    def load(self, scenario: Scenario) -> dict[int, StoredRun]:
        expected_seeds = scenario.seeds()
        rows = self._connection().execute(
            "SELECT replication, seed, elapsed_seconds, result_json"
            " FROM runs WHERE hash = ?",
            (scenario.content_hash(),),
        ).fetchall()
        runs: dict[int, StoredRun] = {}
        for replication, seed, elapsed_seconds, result_json in rows:
            if replication < len(expected_seeds) and seed != expected_seeds[replication]:
                continue  # hand-edited / foreign seed: treat as missing
            try:
                result = SimulationResult.from_dict(json.loads(result_json))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue  # corrupt row: skip, never raise
            runs[replication] = StoredRun(
                replication=replication,
                seed=seed,
                elapsed_seconds=elapsed_seconds,
                result=result,
            )
        return runs

    def run_index(self, scenario: Scenario) -> dict[int, RunMeta]:
        rows = self._connection().execute(
            "SELECT replication, seed, engine, batch_reps FROM runs WHERE hash = ?",
            (scenario.content_hash(),),
        ).fetchall()
        return {
            replication: RunMeta(
                replication=replication, seed=seed, engine=engine, batch_reps=batch_reps
            )
            for replication, seed, engine, batch_reps in rows
        }

    def cached_count(self, scenario: Scenario) -> int:
        """O(1) probe from the maintained counters (no result rows read).

        When everything on record sits below the requested replication count
        the answer is the stored ``run_count`` — one primary-key fetch
        regardless of how many replications the cell holds.  Only a cell
        *larger* than the request falls back to a primary-key range count
        bounded by the request size.  Unlike the generic implementation this
        probe does not re-derive seeds, so a hand-corrupted row may be
        over-counted; ``load`` remains the authority on servable runs.
        """
        started = time.monotonic()
        try:
            row = self._connection().execute(
                "SELECT run_count, max_replication FROM scenarios WHERE hash = ?",
                (scenario.content_hash(),),
            ).fetchone()
            if row is None:
                return 0
            run_count, max_replication = row
            if max_replication < scenario.replications:
                return run_count
            return self._connection().execute(
                "SELECT COUNT(*) FROM runs WHERE hash = ? AND replication < ?",
                (scenario.content_hash(), scenario.replications),
            ).fetchone()[0]
        finally:
            _M_PROBE.labels(backend=self.name).observe(time.monotonic() - started)

    def cached_counts(self, scenarios: Sequence[Scenario]) -> list[int]:
        """One ``WHERE hash IN (...)`` query for a whole grid of cells.

        Same over-counting caveat as :meth:`cached_count`; only cells whose
        record holds *more* replications than requested fall back to the
        per-cell range count (rare: it means the store was written by a
        larger sweep than the one probing).
        """
        if not scenarios:
            return []
        started = time.monotonic()
        try:
            hashes = [scenario.content_hash() for scenario in scenarios]
            placeholders = ",".join("?" * len(set(hashes)))
            rows = self._connection().execute(
                f"SELECT hash, run_count, max_replication FROM scenarios "
                f"WHERE hash IN ({placeholders})",
                sorted(set(hashes)),
            ).fetchall()
            on_record = {row[0]: (row[1], row[2]) for row in rows}
            counts = []
            for scenario, content_hash in zip(scenarios, hashes):
                row = on_record.get(content_hash)
                if row is None:
                    counts.append(0)
                    continue
                run_count, max_replication = row
                if max_replication < scenario.replications:
                    counts.append(run_count)
                    continue
                counts.append(
                    self._connection().execute(
                        "SELECT COUNT(*) FROM runs WHERE hash = ? AND replication < ?",
                        (content_hash, scenario.replications),
                    ).fetchone()[0]
                )
            return counts
        finally:
            _M_PROBE.labels(backend=self.name).observe(time.monotonic() - started)

    def scenarios_on_record(self) -> list[Scenario]:
        rows = self._connection().execute(
            "SELECT scenario_json FROM scenarios ORDER BY hash"
        ).fetchall()
        scenarios = []
        for (scenario_json,) in rows:
            scenario = _parse_scenario(scenario_json)
            if scenario is not None:
                scenarios.append(scenario)
        return scenarios

    def scenario_for_hash(self, content_hash: str) -> Scenario | None:
        if not _HASH_RE.fullmatch(content_hash):
            return None
        row = self._connection().execute(
            "SELECT scenario_json FROM scenarios WHERE hash = ?", (content_hash,)
        ).fetchone()
        if row is None:
            return None
        return _parse_scenario(row[0])

    # -------------------------------------------------------------- writing
    def append(self, scenario: Scenario, runs: Sequence[StoredRun]) -> None:
        """One ``BEGIN IMMEDIATE`` transaction: rows, counters, eviction."""
        if not runs:
            return
        started = time.monotonic()
        content_hash = scenario.content_hash()
        now = time.time()  # repro: noqa[CLK001] - persisted updated_at metadata
        connection = self._connection()
        connection.execute("BEGIN IMMEDIATE")
        try:
            connection.execute(
                "INSERT INTO scenarios (hash, scenario_json, updated_at) VALUES (?, ?, ?)"
                " ON CONFLICT (hash) DO UPDATE SET updated_at = excluded.updated_at",
                (content_hash, json.dumps(scenario.to_dict(), sort_keys=True), now),
            )
            connection.executemany(
                "INSERT OR REPLACE INTO runs"
                " (hash, replication, seed, engine, batch_reps, solved,"
                "  elapsed_seconds, result_json, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        content_hash,
                        run.replication,
                        run.seed,
                        run.result.engine,
                        _batch_reps(run.result),
                        1 if run.result.solved else 0,
                        run.elapsed_seconds,
                        json.dumps(run.result.to_dict(), sort_keys=True),
                        now,
                    )
                    for run in runs
                ],
            )
            self._refresh_counters(connection, content_hash, now)
            self._evict_locked(connection, protect_hash=content_hash, now=now)
            connection.execute("COMMIT")
        except BaseException:
            connection.execute("ROLLBACK")
            raise
        _M_APPEND.labels(backend=self.name).observe(time.monotonic() - started)

    @staticmethod
    def _refresh_counters(
        connection: sqlite3.Connection, content_hash: str, now: float
    ) -> None:
        connection.execute(
            "UPDATE scenarios SET"
            " run_count = (SELECT COUNT(*) FROM runs WHERE hash = ?),"
            " max_replication ="
            "   (SELECT COALESCE(MAX(replication), -1) FROM runs WHERE hash = ?),"
            " updated_at = ?"
            " WHERE hash = ?",
            (content_hash, content_hash, now, content_hash),
        )

    def _evict_locked(
        self, connection: sqlite3.Connection, *, protect_hash: str | None, now: float
    ) -> int:
        """TTL then max-rows eviction inside the caller's open transaction."""
        evicted = 0
        if self.ttl is not None:
            touched = [
                row[0]
                for row in connection.execute(
                    "SELECT DISTINCT hash FROM runs"
                    " WHERE created_at < ? AND hash IS NOT ?",
                    (now - self.ttl, protect_hash),
                )
            ]
            if touched:
                cursor = connection.execute(
                    "DELETE FROM runs WHERE created_at < ? AND hash IS NOT ?",
                    (now - self.ttl, protect_hash),
                )
                evicted += cursor.rowcount
                for content_hash in touched:
                    self._refresh_counters(connection, content_hash, now)
        if self.max_rows is not None:
            while True:
                total = connection.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
                if total <= self.max_rows:
                    break
                victim = connection.execute(
                    "SELECT hash FROM scenarios WHERE hash IS NOT ? AND run_count > 0"
                    " ORDER BY updated_at ASC LIMIT 1",
                    (protect_hash,),
                ).fetchone()
                if victim is None:
                    break  # only the protected cell remains: never self-evict
                cursor = connection.execute("DELETE FROM runs WHERE hash = ?", (victim[0],))
                evicted += cursor.rowcount
                self._refresh_counters(connection, victim[0], now)
        connection.execute("DELETE FROM scenarios WHERE run_count = 0")
        if evicted:
            _M_EVICTIONS.labels(backend=self.name).inc(evicted)
        return evicted

    # ----------------------------------------------------------- janitorial
    def compact(self) -> CompactionReport:
        """Evict per policy, checkpoint the WAL, and vacuum the database."""
        connection = self._connection()
        now = time.time()  # repro: noqa[CLK001] - TTL eviction compares persisted wall-clock stamps
        connection.execute("BEGIN IMMEDIATE")
        try:
            scenarios = connection.execute("SELECT COUNT(*) FROM scenarios").fetchone()[0]
            evicted = self._evict_locked(connection, protect_hash=None, now=now)
            connection.execute("COMMIT")
        except BaseException:
            connection.execute("ROLLBACK")
            raise
        connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        connection.execute("VACUUM")
        return CompactionReport(scenarios=scenarios, runs_evicted=evicted)


def _batch_reps(result: SimulationResult) -> int | None:
    batch_reps = result.metadata.get("batch_reps")
    return int(batch_reps) if isinstance(batch_reps, int) else None


def _parse_scenario(scenario_json: str) -> Scenario | None:
    try:
        return Scenario.from_dict(json.loads(scenario_json))
    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
        return None
