"""Parameterised spec strings: ``"name(key=value, ...)"`` ⇄ ``(name, params)``.

Every registry of this package — protocols, arrival processes, channel
models — names its entries with short strings.  A *spec string* extends such
a name with constructor parameters, so that one flat string describes a fully
parameterised component::

    one-fail-adaptive                      -> ("one-fail-adaptive", {})
    log-fails-adaptive(xi_t=0.1)           -> ("log-fails-adaptive", {"xi_t": 0.1})
    bursty(bursts=4, gap=100)              -> ("bursty", {"bursts": 4, "gap": 100})

Values are parsed as Python scalars: integers, floats, the booleans
``true``/``false`` and strings (bare, or quoted when they contain one of the
delimiter characters).  :func:`format_spec` is the exact inverse of
:func:`parse_spec` and emits a *canonical* form — parameters sorted by name,
no spaces — which is what scenario content-hashing relies on.
"""

from __future__ import annotations

import re

__all__ = ["SpecError", "parse_spec", "format_spec", "split_top_level"]

#: Registry names: lower-case words joined by hyphens/underscores/dots.
_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9._-]*$")
_KEY_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
#: Characters that force a string value to be quoted on output.
_NEEDS_QUOTE = re.compile(r"[\s,()=\"']")


class SpecError(ValueError):
    """Raised when a spec string cannot be parsed."""


def parse_spec(text: str) -> tuple[str, dict[str, object]]:
    """Parse ``"name"`` or ``"name(key=value, ...)"`` into name and parameters."""
    text = text.strip()
    if not text:
        raise SpecError("empty spec string")
    if "(" not in text:
        name, arg_text = text, None
    else:
        if not text.endswith(")"):
            raise SpecError(f"unbalanced parentheses in spec {text!r}")
        name, arg_text = text[:-1].split("(", 1)
        name = name.strip()
    if not _NAME_RE.match(name):
        raise SpecError(f"invalid spec name {name!r} in {text!r}")
    params: dict[str, object] = {}
    if arg_text is None or not arg_text.strip():
        return name, params
    for item in _split_args(arg_text, text):
        if "=" not in item:
            raise SpecError(f"expected key=value in spec {text!r}, got {item!r}")
        key, raw_value = item.split("=", 1)
        key = key.strip()
        if not _KEY_RE.match(key):
            raise SpecError(f"invalid parameter name {key!r} in spec {text!r}")
        if key in params:
            raise SpecError(f"duplicate parameter {key!r} in spec {text!r}")
        params[key] = parse_value(raw_value.strip())
    return name, params


def _split_args(arg_text: str, context: str) -> list[str]:
    """Split the inside of ``name(...)`` on commas outside quoted values."""
    items: list[str] = []
    current: list[str] = []
    quote: str | None = None
    for char in arg_text:
        if quote is not None:
            current.append(char)
            if char == quote:
                quote = None
            continue
        if char in "\"'":
            quote = char
            current.append(char)
            continue
        if char == ",":
            items.append("".join(current).strip())
            current = []
            continue
        current.append(char)
    if quote is not None:
        raise SpecError(f"unterminated quote in spec {context!r}")
    items.append("".join(current).strip())
    if any(not piece for piece in items):
        raise SpecError(f"empty parameter in spec {context!r}")
    return items


def parse_value(raw: str) -> object:
    """Parse one scalar parameter value (int, float, bool or string)."""
    if len(raw) >= 2 and raw[0] in "\"'" and raw[-1] == raw[0]:
        return raw[1:-1]
    lowered = raw.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def format_value(value: object) -> str:
    """Format one scalar parameter value; inverse of :func:`parse_value`."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    if not text or _NEEDS_QUOTE.search(text) or text.lower() in ("true", "false"):
        if '"' in text and "'" in text:
            raise SpecError(f"string value {text!r} mixes both quote characters")
        quote = "'" if '"' in text else '"'
        return quote + text + quote
    return text


def format_spec(name: str, params: dict[str, object] | None = None) -> str:
    """Render ``(name, params)`` as a canonical spec string.

    Parameter-free specs render as the bare name; parameters are sorted by
    name so two equal ``(name, params)`` pairs always render identically
    (scenario hashing depends on this).
    """
    if not _NAME_RE.match(name):
        raise SpecError(f"invalid spec name {name!r}")
    if not params:
        return name
    body = ",".join(f"{key}={format_value(params[key])}" for key in sorted(params))
    return f"{name}({body})"


def canonical_spec(text: str) -> str:
    """Round-trip a spec string through parse/format to its canonical form."""
    return format_spec(*parse_spec(text))


def split_top_level(text: str) -> list[str]:
    """Split a scenario string into whitespace-separated top-level tokens.

    Whitespace *inside* parentheses does not split, so
    ``"ofa k=10 arrivals=bursty(bursts=2, gap=9)"`` yields three tokens.
    """
    tokens: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise SpecError(f"unbalanced parentheses in {text!r}")
        if char.isspace() and depth == 0:
            if current:
                tokens.append("".join(current))
                current = []
            continue
        current.append(char)
    if depth != 0:
        raise SpecError(f"unbalanced parentheses in {text!r}")
    if current:
        tokens.append("".join(current))
    return tokens
