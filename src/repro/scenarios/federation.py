"""Cross-store federation: exchange completed replications by content hash.

Stores — any :class:`~repro.scenarios.store.StoreBackend`, local or behind a
running simulation service — hold the same logical objects: per-scenario
cells of completed replications keyed by :meth:`Scenario.content_hash`.
Because seeds are prefix-stable, merging two cells of the *same* hash can
never conflict: replication ``i`` has exactly one valid seed, so a per-hash
merge is a plain seed-set union and :func:`sync` only has to copy the
replication indices the destination is missing.

Three shapes of endpoint, freely mixable as source or destination::

    sync("results/a", "sqlite:results/b.db")          # disk -> disk
    sync("sqlite:lab.db", "http://10.0.0.5:8765")     # disk -> running server
    sync("http://10.0.0.5:8765", "results/mirror")    # running server -> disk

Local endpoints go through :func:`repro.scenarios.store.open_store` (the
``jsonl:``/``sqlite:`` grammar); ``http://``/``https://`` endpoints become a
:class:`RemoteStore` speaking the service wire protocol — reads via
``GET /store`` + ``GET /results/<hash>``, writes via the ``POST
/results/<hash>`` ingest endpoint.  A scenario simulated on any machine
thereby becomes cached everywhere: after a sync, the receiving side serves
it with **zero** new simulations.

``repro store migrate <src> <dst>`` is a thin CLI veneer over :func:`sync`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.engine.result import SimulationResult
from repro.scenarios.scenario import Scenario
from repro.scenarios.store import (
    CompactionReport,
    StoreBackend,
    StoreCapabilities,
    StoredRun,
    open_store,
)

__all__ = ["RemoteStore", "SyncReport", "resolve_store", "sync"]


@dataclass(frozen=True)
class SyncReport:
    """What one :func:`sync` call moved from source to destination."""

    source: str
    destination: str
    scenarios_examined: int = 0
    scenarios_copied: int = 0
    replications_copied: int = 0

    def to_dict(self) -> dict[str, object]:
        return {
            "source": self.source,
            "destination": self.destination,
            "scenarios_examined": self.scenarios_examined,
            "scenarios_copied": self.scenarios_copied,
            "replications_copied": self.replications_copied,
        }


class RemoteStore(StoreBackend):
    """A running simulation service viewed through the store contract.

    Reads ride the existing service endpoints (``GET /store`` for the
    listing, ``GET /results/<hash>`` for a cell's completed replications —
    an *incomplete* cell reads as empty, since the service only serves fully
    cached scenarios), and :meth:`append`/:meth:`push` ride ``POST
    /results/<hash>``, where the server diffs against its own store so a
    push is idempotent and never overwrites existing replications.

    Locking is the server's problem (its session serialises store access);
    this class is a stateless wire adapter and is itself thread-safe.
    """

    name = "remote"
    capabilities = StoreCapabilities(indexed_counts=False, eviction=False, multiprocess=True)

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        from repro.service.client import ServiceClient  # lazy: avoid an import cycle

        self.base_url = base_url.rstrip("/")
        self.client = ServiceClient(self.base_url, timeout=timeout)

    def describe(self) -> str:
        return self.base_url

    # -------------------------------------------------------------- reading
    def scenarios_on_record(self) -> list[Scenario]:
        scenarios = []
        for record in self.client.store_records():
            try:
                scenarios.append(Scenario.parse(str(record["scenario"])))
            except (KeyError, ValueError):  # SpecError is a ValueError
                continue
        return scenarios

    def scenario_for_hash(self, content_hash: str) -> Scenario | None:
        for scenario in self.scenarios_on_record():
            if scenario.content_hash() == content_hash:
                return scenario
        return None

    def load(self, scenario: Scenario) -> dict[int, StoredRun]:
        from repro.service.client import ServiceError  # lazy: avoid an import cycle

        try:
            payload = self.client.result(scenario.content_hash())
        except ServiceError:
            return {}  # unknown or incomplete on the server: nothing to copy
        results = payload.get("results", [])
        elapsed_total = float(payload.get("elapsed_seconds", 0.0) or 0.0)
        per_run_elapsed = elapsed_total / max(len(results), 1)
        expected_seeds = scenario.seeds()
        runs: dict[int, StoredRun] = {}
        for replication, result_dict in enumerate(results):
            try:
                result = SimulationResult.from_dict(result_dict)
            except (KeyError, TypeError, ValueError):
                continue
            if replication < len(expected_seeds) and result.seed != expected_seeds[replication]:
                continue
            runs[replication] = StoredRun(
                replication=replication,
                seed=result.seed,
                elapsed_seconds=per_run_elapsed,
                result=result,
            )
        return runs

    def run_index(self, scenario: Scenario):  # noqa: ANN201 - see StoreBackend
        from repro.scenarios.store import RunMeta

        return {
            replication: RunMeta(
                replication=replication,
                seed=run.seed,
                engine=run.result.engine,
                batch_reps=run.result.metadata.get("batch_reps")
                if isinstance(run.result.metadata.get("batch_reps"), int)
                else None,
            )
            for replication, run in self.load(scenario).items()
        }

    # -------------------------------------------------------------- writing
    def append(self, scenario: Scenario, runs: Sequence[StoredRun]) -> None:
        self.push(scenario, runs)

    def push(self, scenario: Scenario, runs: Sequence[StoredRun]) -> int:
        """Offer replications to the server; returns how many it was missing."""
        if not runs:
            return 0
        payload = self.client.push_runs(scenario, runs)
        return int(payload.get("added", 0))  # type: ignore[arg-type]

    def compact(self) -> CompactionReport:
        """Remote stores compact on their own machine; a no-op here."""
        return CompactionReport()


def resolve_store(
    target: str | Path | StoreBackend, timeout: float = 30.0
) -> StoreBackend:
    """A federation endpoint: URL → :class:`RemoteStore`, else the store grammar."""
    if isinstance(target, str) and target.startswith(("http://", "https://")):
        return RemoteStore(target, timeout=timeout)
    return open_store(target)


def sync(
    source: str | Path | StoreBackend,
    destination: str | Path | StoreBackend,
    *,
    timeout: float = 30.0,
) -> SyncReport:
    """Copy every replication ``destination`` is missing from ``source``.

    Diffs by content hash, then per hash by replication index (seed-set
    union — prefix-stable seeds make this conflict-free).  Existing
    destination replications are never overwritten, so the call is
    idempotent: a second sync copies nothing.  Source cells that read as
    empty (e.g. an incomplete cell on a remote server) are skipped.
    """
    src = resolve_store(source, timeout=timeout)
    dst = resolve_store(destination, timeout=timeout)
    examined = copied_scenarios = copied_replications = 0
    for scenario in src.scenarios_on_record():
        examined += 1
        src_runs = src.load(scenario)
        if not src_runs:
            continue
        if isinstance(dst, RemoteStore):
            # The server diffs against its own store and reports what it
            # actually added — no read-modify-write race over the wire.
            added = dst.push(
                scenario, [run for _, run in sorted(src_runs.items())]
            )
        else:
            existing = set(dst.load(scenario))
            missing = [
                run for replication, run in sorted(src_runs.items())
                if replication not in existing
            ]
            if missing:
                dst.append(scenario, missing)
            added = len(missing)
        if added:
            copied_scenarios += 1
            copied_replications += added
    return SyncReport(
        source=src.describe(),
        destination=dst.describe(),
        scenarios_examined=examined,
        scenarios_copied=copied_scenarios,
        replications_copied=copied_replications,
    )
