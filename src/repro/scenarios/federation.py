"""Cross-store federation: exchange completed replications by content hash.

Stores — any :class:`~repro.scenarios.store.StoreBackend`, local or behind a
running simulation service — hold the same logical objects: per-scenario
cells of completed replications keyed by :meth:`Scenario.content_hash`.
Because seeds are prefix-stable, merging two cells of the *same* hash can
never conflict: replication ``i`` has exactly one valid seed, so a per-hash
merge is a plain seed-set union and :func:`sync` only has to copy the
replication indices the destination is missing.

Three shapes of endpoint, freely mixable as source or destination::

    sync("results/a", "sqlite:results/b.db")          # disk -> disk
    sync("sqlite:lab.db", "http://10.0.0.5:8765")     # disk -> running server
    sync("http://10.0.0.5:8765", "results/mirror")    # running server -> disk

Local endpoints go through :func:`repro.scenarios.store.open_store` (the
``jsonl:``/``sqlite:`` grammar); ``http://``/``https://`` endpoints become a
:class:`RemoteStore` speaking the service wire protocol — reads via
``GET /store`` + ``GET /results/<hash>``, writes via the ``POST
/results/<hash>`` ingest endpoint.  A scenario simulated on any machine
thereby becomes cached everywhere: after a sync, the receiving side serves
it with **zero** new simulations.

``repro store migrate <src> <dst>`` is a thin CLI veneer over :func:`sync`.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.engine.result import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.reliability import RetryPolicy
from repro.scenarios.scenario import Scenario
from repro.scenarios.store import (
    CompactionReport,
    RunMeta,
    StoreBackend,
    StoreCapabilities,
    StoredRun,
    open_store,
)

__all__ = ["RemoteStore", "SyncReport", "resolve_store", "sync"]


@dataclass(frozen=True)
class SyncReport:
    """What one :func:`sync` call moved from source to destination.

    ``scenarios_failed``/``failures`` record per-scenario copy failures that
    survived the retry policy — the rest of the sync still completed, and
    because :func:`sync` is idempotent, re-running it resumes with exactly
    the failed cells (everything already copied diffs to nothing).
    """

    source: str
    destination: str
    scenarios_examined: int = 0
    scenarios_copied: int = 0
    replications_copied: int = 0
    scenarios_failed: int = 0
    failures: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {
            "source": self.source,
            "destination": self.destination,
            "scenarios_examined": self.scenarios_examined,
            "scenarios_copied": self.scenarios_copied,
            "replications_copied": self.replications_copied,
            "scenarios_failed": self.scenarios_failed,
            "failures": list(self.failures),
        }


class RemoteStore(StoreBackend):
    """A running simulation service viewed through the store contract.

    Reads ride the existing service endpoints (``GET /store`` for the
    listing, ``GET /results/<hash>`` for a cell's completed replications —
    an *incomplete* cell reads as empty, since the service only serves fully
    cached scenarios), and :meth:`append`/:meth:`push` ride ``POST
    /results/<hash>``, where the server diffs against its own store so a
    push is idempotent and never overwrites existing replications.

    Locking is the server's problem (its session serialises store access);
    this class is a stateless wire adapter and is itself thread-safe.
    """

    name = "remote"
    capabilities = StoreCapabilities(indexed_counts=False, eviction=False, multiprocess=True)

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        from repro.service.client import ServiceClient  # lazy: avoid an import cycle

        self.base_url = base_url.rstrip("/")
        self.client = ServiceClient(self.base_url, timeout=timeout)

    def describe(self) -> str:
        return self.base_url

    # -------------------------------------------------------------- reading
    def scenarios_on_record(self) -> list[Scenario]:
        scenarios = []
        for record in self.client.store_records():
            try:
                scenarios.append(Scenario.parse(str(record["scenario"])))
            except (KeyError, ValueError):  # SpecError is a ValueError
                continue
        return scenarios

    def scenario_for_hash(self, content_hash: str) -> Scenario | None:
        for scenario in self.scenarios_on_record():
            if scenario.content_hash() == content_hash:
                return scenario
        return None

    def load(self, scenario: Scenario) -> dict[int, StoredRun]:
        from repro.service.client import ServiceError  # lazy: avoid an import cycle

        try:
            payload = self.client.result(scenario.content_hash())
        except ServiceError:
            return {}  # unknown or incomplete on the server: nothing to copy
        results = payload.get("results", [])
        elapsed_total = float(payload.get("elapsed_seconds", 0.0) or 0.0)
        per_run_elapsed = elapsed_total / max(len(results), 1)
        expected_seeds = scenario.seeds()
        runs: dict[int, StoredRun] = {}
        for replication, result_dict in enumerate(results):
            try:
                result = SimulationResult.from_dict(result_dict)
            except (KeyError, TypeError, ValueError):
                continue
            if replication < len(expected_seeds) and result.seed != expected_seeds[replication]:
                continue
            runs[replication] = StoredRun(
                replication=replication,
                seed=result.seed,
                elapsed_seconds=per_run_elapsed,
                result=result,
            )
        return runs

    def run_index(self, scenario: Scenario) -> dict[int, RunMeta]:
        return {
            replication: RunMeta(
                replication=replication,
                seed=run.seed,
                engine=run.result.engine,
                batch_reps=run.result.metadata.get("batch_reps")
                if isinstance(run.result.metadata.get("batch_reps"), int)
                else None,
            )
            for replication, run in self.load(scenario).items()
        }

    # -------------------------------------------------------------- writing
    def append(self, scenario: Scenario, runs: Sequence[StoredRun]) -> None:
        self.push(scenario, runs)

    def push(self, scenario: Scenario, runs: Sequence[StoredRun]) -> int:
        """Offer replications to the server; returns how many it was missing."""
        if not runs:
            return 0
        payload = self.client.push_runs(scenario, runs)
        return int(payload.get("added", 0))  # type: ignore[arg-type]

    def compact(self) -> CompactionReport:
        """Remote stores compact on their own machine; a no-op here."""
        return CompactionReport()


def resolve_store(
    target: str | Path | StoreBackend, timeout: float = 30.0
) -> StoreBackend:
    """A federation endpoint: URL → :class:`RemoteStore`, else the store grammar."""
    if isinstance(target, str) and target.startswith(("http://", "https://")):
        return RemoteStore(target, timeout=timeout)
    return open_store(target)


def _copy_scenario(
    scenario: Scenario, src: StoreBackend, dst: StoreBackend
) -> int:
    """Copy one cell's missing replications; returns how many moved."""
    src_runs = src.load(scenario)
    if not src_runs:
        return 0
    if isinstance(dst, RemoteStore):
        # The server diffs against its own store and reports what it
        # actually added — no read-modify-write race over the wire.
        return dst.push(scenario, [run for _, run in sorted(src_runs.items())])
    existing = set(dst.load(scenario))
    missing = [
        run for replication, run in sorted(src_runs.items())
        if replication not in existing
    ]
    if missing:
        dst.append(scenario, missing)
    return len(missing)


def sync(
    source: str | Path | StoreBackend,
    destination: str | Path | StoreBackend,
    *,
    timeout: float = 30.0,
    retry: "RetryPolicy | None" = None,
    sleep: "Callable[[float], None]" = time.sleep,
) -> SyncReport:
    """Copy every replication ``destination`` is missing from ``source``.

    Diffs by content hash, then per hash by replication index (seed-set
    union — prefix-stable seeds make this conflict-free).  Existing
    destination replications are never overwritten, so the call is
    idempotent: a second sync copies nothing.  Source cells that read as
    empty (e.g. an incomplete cell on a remote server) are skipped.

    Fault tolerance: each cell copies independently under ``retry`` (a
    :class:`~repro.service.reliability.RetryPolicy`, or ``None`` for single
    attempts).  A cell that still fails is *recorded* in the report
    (``scenarios_failed``/``failures``) rather than aborting the sync —
    idempotence makes the recovery story "run it again": already-copied
    cells diff to nothing, so the retry resumes with exactly the failures.
    """
    src = resolve_store(source, timeout=timeout)
    dst = resolve_store(destination, timeout=timeout)
    examined = copied_scenarios = copied_replications = 0
    failures: list[str] = []
    for scenario in src.scenarios_on_record():
        examined += 1
        copy = lambda: _copy_scenario(scenario, src, dst)  # noqa: E731
        try:
            if retry is not None:
                added = retry.call(copy, sleep=sleep)
            else:
                added = copy()
        except Exception:  # noqa: BLE001 - record and continue with the rest
            failures.append(scenario.content_hash())
            continue
        if added:
            copied_scenarios += 1
            copied_replications += added
    return SyncReport(
        source=src.describe(),
        destination=dst.describe(),
        scenarios_examined=examined,
        scenarios_copied=copied_scenarios,
        replications_copied=copied_replications,
        scenarios_failed=len(failures),
        failures=tuple(failures),
    )
