"""The declarative :class:`Scenario`: one serializable description per run cell.

The paper's evaluation — and every workload this repository serves — is a grid
of *cells*: (protocol, network size, arrival process, channel, engine,
replications, seeds).  A :class:`Scenario` captures one cell as a frozen,
hashable value object built from flat spec strings, so that

* every run is describable as a single string, dict, JSON or TOML document
  (``parse``/``format``/``to_dict``/``from_file`` round-trip exactly);
* equal scenarios hash equally (:meth:`Scenario.content_hash`), which is what
  lets :class:`~repro.scenarios.session.Session` cache, resume and deduplicate
  work across processes and process restarts; and
* the serial, parallel and batch execution paths are selected *from the
  scenario*, not by the caller picking an entry point.

The compact string form puts the protocol spec first and everything else as
``key=value`` tokens::

    one-fail-adaptive(delta=2.72) k=1000 reps=10 seed=7 arrivals=poisson(rate=0.1)

Identity and hashing
--------------------
:meth:`content_hash` covers every field *except* ``replications``: the
replication seeds are a prefix-stable stream (replication ``i`` gets the same
seed no matter how many replications the scenario asks for), so raising the
replication count extends a cell rather than renaming it.  For per-run
execution a result store therefore reuses the first ``R`` outcomes when asked
for ``R' > R``; cells executed by the vectorised batch engine are reused
all-or-nothing instead (their results depend on the batch composition), which
keeps every served result set bit-identical to a fresh run of the same
scenario.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.channel.arrivals import ArrivalProcess, build_arrivals, get_arrival_class
from repro.channel.model import ChannelModel, build_channel
from repro.engine.registry import available_engines, engine_capabilities, engines_for
from repro.protocols.base import Protocol, build_protocol, get_protocol_class
from repro.scenarios.spec import SpecError, canonical_spec, parse_spec, parse_value, split_top_level
from repro.util.rng import derive_seeds

__all__ = ["Scenario", "SEED_POLICIES"]

#: How per-replication seeds derive from the root seed: ``"derive"`` spawns
#: independent child seeds via ``numpy.random.SeedSequence`` (the sweep
#: runner's historical derivation); ``"sequential"`` uses ``seed, seed+1, …``
#: so that replication 0 runs with exactly the root seed (``repro simulate``).
SEED_POLICIES = ("derive", "sequential")

#: Compact-string keys, in canonical output order.  ``reps`` is accepted as a
#: shorthand for ``replications`` on input.
_STRING_KEYS = (
    "k",
    "reps",
    "seed",
    "arrivals",
    "channel",
    "engine",
    "seed_policy",
    "max_slots_factor",
)
_KEY_ALIASES = {"reps": "replications", "replications": "replications"}


@dataclass(frozen=True)
class Scenario:
    """One fully-described simulation cell (see module docstring).

    Attributes
    ----------
    protocol:
        Protocol spec string, e.g. ``"log-fails-adaptive(xi_t=0.1)"``.
        Protocols requiring knowledge of the network derive it from ``k``
        at build time (:func:`repro.protocols.base.build_protocol`).
    k:
        Number of messages (network size).
    arrivals:
        Arrival spec string; ``"batch"`` is the paper's static k-selection.
    channel:
        Channel spec string; ``"default"`` is the paper's no-CD channel.
    engine:
        Engine selector (one of :func:`repro.engine.dispatch.available_engines`).
    replications:
        Number of independently seeded runs of the cell.
    seed:
        Root seed; per-replication seeds follow from it and ``seed_policy``.
    seed_policy:
        One of :data:`SEED_POLICIES`.
    max_slots_factor:
        Per-run safety cap, expressed as a multiple of ``k``.
    """

    protocol: str
    k: int
    arrivals: str = "batch"
    channel: str = "default"
    engine: str = "auto"
    replications: int = 1
    seed: int = 0
    seed_policy: str = "derive"
    max_slots_factor: int = 10_000

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.replications < 1:
            raise ValueError(f"replications must be positive, got {self.replications}")
        if self.max_slots_factor < 2:
            raise ValueError(f"max_slots_factor must be at least 2, got {self.max_slots_factor}")
        if self.seed_policy not in SEED_POLICIES:
            raise ValueError(
                f"unknown seed_policy {self.seed_policy!r}; choose from {SEED_POLICIES}"
            )
        if self.engine not in available_engines():
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {available_engines()}"
            )
        # Resolve the three component specs now so a typo fails at
        # construction, with a registry error, not mid-sweep.
        protocol_name, _ = parse_spec(self.protocol)
        get_protocol_class(protocol_name)
        arrivals_name, _ = parse_spec(self.arrivals)
        get_arrival_class(arrivals_name)
        build_channel(self.channel)
        if (
            self.arrivals_name != "batch"
            and self.engine != "auto"
            and not engine_capabilities(self.engine).arrivals
        ):
            raise ValueError(
                f"engine {self.engine!r} does not support arrival processes; "
                f"engines that do: {engines_for(arrivals=True)} (or 'auto')"
            )

    # ------------------------------------------------------------ components
    @property
    def protocol_name(self) -> str:
        """Registry name of the protocol (spec string minus parameters)."""
        return parse_spec(self.protocol)[0]

    @property
    def arrivals_name(self) -> str:
        """Registry name of the arrival process."""
        return parse_spec(self.arrivals)[0]

    def build_protocol(self) -> Protocol:
        """Instantiate the scenario's protocol for its network size."""
        return build_protocol(self.protocol, self.k)

    def build_arrivals(self) -> ArrivalProcess | None:
        """Instantiate the arrival process (``None`` for static batch arrivals)."""
        return build_arrivals(self.arrivals, self.k)

    def build_channel(self) -> ChannelModel | None:
        """Instantiate the channel (``None`` for the paper's default channel)."""
        channel = build_channel(self.channel)
        return None if channel == ChannelModel() else channel

    def max_slots(self) -> int:
        """The per-run slot cap: ``max_slots_factor * k``."""
        return self.max_slots_factor * self.k

    def seeds(self) -> list[int]:
        """Per-replication seeds (prefix-stable in the replication count)."""
        if self.seed_policy == "sequential":
            return [self.seed + index for index in range(self.replications)]
        return derive_seeds(self.seed, self.replications)

    def replace(self, **changes: object) -> "Scenario":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    # -------------------------------------------------------------- identity
    def identity(self) -> dict[str, object]:
        """The content-hashed identity: every field except ``replications``.

        Component specs are canonicalised (parameters sorted, no whitespace)
        so cosmetic spelling differences do not split the cache.
        """
        return {
            "protocol": canonical_spec(self.protocol),
            "k": self.k,
            "arrivals": canonical_spec(self.arrivals),
            "channel": canonical_spec(self.channel),
            "engine": self.engine,
            "seed": self.seed,
            "seed_policy": self.seed_policy,
            "max_slots_factor": self.max_slots_factor,
        }

    def content_hash(self) -> str:
        """Stable 16-hex-digit digest of :meth:`identity` (store key)."""
        canonical = json.dumps(self.identity(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> dict[str, object]:
        """Plain-dict form; inverse of :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Scenario":
        """Build from a dict (e.g. a parsed JSON/TOML document).

        ``reps`` is accepted as an alias for ``replications``; unknown keys
        are rejected so typos fail loudly instead of silently running the
        default.
        """
        known = {field.name for field in dataclasses.fields(cls)}
        kwargs: dict[str, object] = {}
        for key, value in data.items():
            resolved = _KEY_ALIASES.get(key, key)
            if resolved not in known:
                raise ValueError(f"unknown scenario field {key!r}; known: {sorted(known)}")
            if resolved in kwargs:
                raise ValueError(f"duplicate scenario field {key!r}")
            kwargs[resolved] = value
        return cls(**kwargs)  # type: ignore[arg-type]

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"scenario JSON must be an object, got {type(data).__name__}")
        return cls.from_dict(data)

    def to_toml(self) -> str:
        """Render as a flat TOML document (readable back by :meth:`from_file`)."""
        lines = []
        for key, value in self.to_dict().items():
            if isinstance(value, bool):
                rendered = "true" if value else "false"
            elif isinstance(value, (int, float)):
                rendered = repr(value)
            else:
                rendered = json.dumps(str(value))
            lines.append(f"{key} = {rendered}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_toml(cls, text: str) -> "Scenario":
        try:
            import tomllib
        except ModuleNotFoundError:  # stdlib tomllib is 3.11+; 3.10 uses tomli
            import tomli as tomllib  # type: ignore[no-redef]

        return cls.from_dict(tomllib.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "Scenario":
        """Load a scenario from a ``.toml`` or ``.json`` file."""
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        if path.suffix.lower() == ".toml":
            return cls.from_toml(text)
        if path.suffix.lower() == ".json":
            return cls.from_json(text)
        raise ValueError(f"unsupported scenario file type {path.suffix!r} (use .toml or .json)")

    # -------------------------------------------------------- compact string
    @classmethod
    def parse(cls, text: str) -> "Scenario":
        """Parse the compact string form (see module docstring)."""
        tokens = split_top_level(text)
        if not tokens:
            raise SpecError("empty scenario string")
        first = tokens[0]
        if "=" in first.split("(", 1)[0]:
            raise SpecError(
                f"scenario string must start with a protocol spec, got {first!r}"
            )
        data: dict[str, object] = {"protocol": first}
        for token in tokens[1:]:
            if "=" not in token.split("(", 1)[0]:
                raise SpecError(f"expected key=value token in scenario string, got {token!r}")
            key, raw_value = token.split("=", 1)
            if key in ("arrivals", "channel", "engine", "seed_policy"):
                value: object = raw_value
            else:
                value = parse_value(raw_value)
            if key not in _STRING_KEYS and _KEY_ALIASES.get(key) is None:
                raise SpecError(
                    f"unknown scenario key {key!r}; known: {sorted(set(_STRING_KEYS))}"
                )
            data[key] = value
        if "k" not in data:
            raise SpecError(f"scenario string {text!r} must set k=<network size>")
        return cls.from_dict(data)

    def format(self) -> str:
        """Compact string form; omits fields left at their defaults."""
        defaults = Scenario(protocol=self.protocol, k=self.k)
        parts = [canonical_spec(self.protocol), f"k={self.k}"]
        if self.replications != defaults.replications:
            parts.append(f"reps={self.replications}")
        if self.seed != defaults.seed:
            parts.append(f"seed={self.seed}")
        if self.arrivals != defaults.arrivals:
            parts.append(f"arrivals={canonical_spec(self.arrivals)}")
        if self.channel != defaults.channel:
            parts.append(f"channel={canonical_spec(self.channel)}")
        if self.engine != defaults.engine:
            parts.append(f"engine={self.engine}")
        if self.seed_policy != defaults.seed_policy:
            parts.append(f"seed_policy={self.seed_policy}")
        if self.max_slots_factor != defaults.max_slots_factor:
            parts.append(f"max_slots_factor={self.max_slots_factor}")
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.format()
