"""Persistent per-scenario result store: one JSONL file per scenario hash.

The store is the durability layer behind
:class:`~repro.scenarios.session.Session`.  Layout, under one root directory::

    <root>/<content-hash>.jsonl

Line 1 is a self-describing header carrying the scenario that produced the
file; every further line records one completed replication (its index, seed,
simulation time and full :class:`~repro.engine.result.SimulationResult`).
Appending line-by-line makes interruption safe by construction: a run killed
mid-sweep leaves complete lines for the replications that finished, and the
next session re-executes only the missing ones.  A torn final line (the
process died mid-write) is detected by the JSON parser and ignored.

The file is keyed by :meth:`Scenario.content_hash`, which excludes the
replication count — so raising ``replications`` later extends the same file
instead of starting a new cell from scratch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.engine.result import SimulationResult
from repro.scenarios.scenario import Scenario

__all__ = ["StoredRun", "ResultStore"]


@dataclass(frozen=True)
class StoredRun:
    """One persisted replication of a scenario."""

    replication: int
    seed: int
    elapsed_seconds: float
    result: SimulationResult


class ResultStore:
    """Append-only JSONL store of per-replication outcomes, keyed by scenario hash."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, scenario: Scenario) -> Path:
        return self.root / f"{scenario.content_hash()}.jsonl"

    def load(self, scenario: Scenario) -> dict[int, StoredRun]:
        """Return the completed replications on record for ``scenario``.

        Replications whose recorded seed disagrees with the scenario's seed
        derivation are ignored (treated as missing) — that cannot happen
        through this store's own writes, but it keeps a hand-edited or
        corrupted file from silently poisoning a resumed sweep.
        """
        path = self.path_for(scenario)
        if not path.exists():
            return {}
        expected_seeds = scenario.seeds()
        runs: dict[int, StoredRun] = {}
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail of an interrupted write
                if record.get("kind") != "run":
                    continue
                replication = int(record["replication"])
                seed = int(record["seed"])
                if replication < len(expected_seeds) and seed != expected_seeds[replication]:
                    continue
                runs[replication] = StoredRun(
                    replication=replication,
                    seed=seed,
                    elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
                    result=SimulationResult.from_dict(record["result"]),
                )
        return runs

    def append(self, scenario: Scenario, runs: list[StoredRun]) -> None:
        """Persist newly completed replications (writing the header if new)."""
        if not runs:
            return
        path = self.path_for(scenario)
        lines = []
        # Heal a torn tail: a process killed mid-write leaves the file without
        # a trailing newline; appending straight onto it would glue the first
        # new record to the partial line and corrupt both, forever.
        needs_leading_newline = False
        if path.exists() and path.stat().st_size > 0:
            with path.open("rb") as handle:
                handle.seek(-1, 2)
                needs_leading_newline = handle.read(1) != b"\n"
        if not path.exists():
            lines.append(
                json.dumps(
                    {
                        "kind": "scenario",
                        "hash": scenario.content_hash(),
                        "scenario": scenario.to_dict(),
                    },
                    sort_keys=True,
                )
            )
        for run in sorted(runs, key=lambda run: run.replication):
            lines.append(
                json.dumps(
                    {
                        "kind": "run",
                        "replication": run.replication,
                        "seed": run.seed,
                        "elapsed_seconds": run.elapsed_seconds,
                        "result": run.result.to_dict(),
                    },
                    sort_keys=True,
                )
            )
        with path.open("a", encoding="utf-8") as handle:
            if needs_leading_newline:
                handle.write("\n")
            handle.write("\n".join(lines) + "\n")

    def scenarios_on_record(self) -> list[Scenario]:
        """Return the scenarios whose stores exist under this root."""
        scenarios = []
        for path in sorted(self.root.glob("*.jsonl")):
            with path.open("r", encoding="utf-8") as handle:
                first = handle.readline().strip()
            if not first:
                continue
            try:
                record = json.loads(first)
            except json.JSONDecodeError:
                continue
            if record.get("kind") == "scenario":
                scenarios.append(Scenario.from_dict(record["scenario"]))
        return scenarios
