"""Pluggable result-store backends: the persistence layer behind Sessions.

Every execution layer in this repository — :class:`~repro.scenarios.session.
Session` resume, the simulation service's dedup and cached fast path, the
sweep runners — persists completed replications through ONE storage contract,
:class:`StoreBackend`, keyed by :meth:`Scenario.content_hash`.  Two backends
ship with the library:

* :class:`JsonlStore` (``jsonl:``, the default) — one self-describing JSONL
  file per scenario hash under a root directory.  Human-greppable,
  append-only, interruption-safe by construction.
* :class:`~repro.scenarios.store_sqlite.SqliteStore` (``sqlite:``) — one
  indexed SQLite database in WAL mode.  O(1) ``cached_count`` without
  reading a result tail, compaction, and optional TTL / max-row eviction
  for always-on servers.

Backends are selected by a compact spec grammar mirroring the engine /
protocol / arrival registries, consumed by ``Session(store_dir=…)``,
``repro run/figure1/table1 --store``, ``repro serve --store`` and
``repro store``::

    results/store                  # bare path: JSONL directory (default)
    jsonl:results/store            # explicit JSONL directory
    sqlite:results/store.db        # SQLite database file
    sqlite:store.db?ttl=86400&max_rows=100000   # with eviction options

:func:`open_store` resolves a spec (or a ``Path``, or an already-built
backend) to a :class:`StoreBackend`; third-party backends join the grammar
via :func:`register_store_backend`.  Cross-store exchange of results by
content hash — disk↔disk and over HTTP against a running service — lives in
:mod:`repro.scenarios.federation`.

Storage contract
----------------
The unit of storage is one *scenario cell* (a content hash) holding a set of
:class:`StoredRun` replications.  The hash excludes the replication count —
seeds are prefix-stable — so raising ``replications`` later extends the same
cell instead of starting a new one.  ``load`` must tolerate corrupt or
foreign records (skip them, never raise): a torn JSONL tail, a hand-edited
seed, or a bogus row must degrade to "that replication is missing", not
poison a resumed sweep.

Locking contract
----------------
:meth:`StoreBackend.append` MUST be safe under concurrent writers — several
threads of one process and several processes sharing the store — such that
readers never observe torn records and the per-cell header/metadata is
written exactly once.  How that is achieved is the backend's business:

* :class:`JsonlStore` takes an ``fcntl``-based advisory lock on a per-hash
  sidecar file (``<content-hash>.jsonl.lock``) around the whole
  read-tail/heal/header/write critical section; ``flock`` attaches to the
  open file description, so two server worker threads serialise exactly like
  two processes.  On platforms without ``fcntl`` (Windows) it degrades to an
  in-process :class:`threading.Lock`, which still serialises all writers
  within one interpreter (the simulation service's deployment shape).  Lock
  sidecars are janitorial litter, not data: they are excluded from every
  listing and removed by :meth:`JsonlStore.compact` (and by
  ``repro store migrate``).
* ``SqliteStore`` relies on SQLite's own WAL-mode locking with a generous
  busy timeout; every append is one ``BEGIN IMMEDIATE`` transaction.

``load``/``cached_count``/``run_index`` MAY be served from caches, but must
never return results a concurrent committed append has superseded forever:
:class:`JsonlStore` invalidates its per-hash parse cache on any
mtime/size change, so an external append is observed on the next read.
"""

from __future__ import annotations

import json
import re
import threading
import time
from abc import ABC, abstractmethod
from collections import OrderedDict
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

try:  # pragma: no cover - exercised implicitly on POSIX
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback
    fcntl = None  # type: ignore[assignment]

from repro.engine.result import SimulationResult
from repro.obs import REGISTRY
from repro.scenarios.scenario import Scenario

__all__ = [
    "StoredRun",
    "StoreRecord",
    "RunMeta",
    "StoreCapabilities",
    "CompactionReport",
    "StoreBackend",
    "JsonlStore",
    "ResultStore",
    "open_store",
    "parse_store_spec",
    "register_store_backend",
    "available_store_backends",
    "store_backend_class",
]

#: Shape of :meth:`Scenario.content_hash` digests (16 lowercase hex digits).
_HASH_RE = re.compile(r"[0-9a-f]{16}")

#: Parsed JSONL cells kept per :class:`JsonlStore` instance (LRU, by hash).
_JSONL_CACHE_ENTRIES = 128

# Store-layer metric families, labelled by backend name so JSONL and SQLite
# latencies land side by side in one ``/metrics`` scrape.
_M_APPEND = REGISTRY.histogram(
    "repro_store_append_seconds", "Store append latency, by backend.", ("backend",)
)
_M_PROBE = REGISTRY.histogram(
    "repro_store_probe_seconds",
    "cached_count probe latency, by backend.",
    ("backend",),
)


@dataclass(frozen=True)
class StoredRun:
    """One persisted replication of a scenario."""

    replication: int
    seed: int
    elapsed_seconds: float
    result: SimulationResult


@dataclass(frozen=True)
class RunMeta:
    """Index entry for one stored replication: everything a cache probe needs.

    Carries the fields :class:`~repro.scenarios.session.Session` filters on
    (seed, producing engine, batch composition) *without* the full
    :class:`SimulationResult`, so indexed backends can answer
    ``cached_count`` probes without deserialising result payloads.
    """

    replication: int
    seed: int
    engine: str
    batch_reps: int | None


@dataclass(frozen=True)
class StoreRecord:
    """Summary of one scenario cell on record (the ``repro store`` listing)."""

    scenario: Scenario
    hash: str
    replications_on_record: int
    solved_runs: int

    @property
    def solved_fraction(self) -> float:
        if self.replications_on_record == 0:
            return 0.0
        return self.solved_runs / self.replications_on_record

    def to_dict(self) -> dict[str, object]:
        return {
            "scenario": self.scenario.format(),
            "hash": self.hash,
            "replications_on_record": self.replications_on_record,
            "requested_replications": self.scenario.replications,
            "solved_runs": self.solved_runs,
            "solved_fraction": self.solved_fraction,
        }


@dataclass(frozen=True)
class StoreCapabilities:
    """What a backend can do, for dispatch decisions and the README table."""

    indexed_counts: bool  #: ``cached_count`` without reading result payloads
    eviction: bool  #: supports TTL / max-row eviction for always-on servers
    multiprocess: bool  #: concurrent writers across OS processes are safe


@dataclass(frozen=True)
class CompactionReport:
    """What :meth:`StoreBackend.compact` reclaimed."""

    scenarios: int = 0
    records_dropped: int = 0
    lock_files_removed: int = 0
    runs_evicted: int = 0

    def to_dict(self) -> dict[str, object]:
        return {
            "scenarios": self.scenarios,
            "records_dropped": self.records_dropped,
            "lock_files_removed": self.lock_files_removed,
            "runs_evicted": self.runs_evicted,
        }


class StoreBackend(ABC):
    """Abstract result store: per-scenario-hash sets of completed replications.

    See the module docstring for the storage and locking contracts.  All
    methods must be callable from any thread; ``append`` must additionally be
    safe under concurrent writers (threads *and* processes for backends that
    declare ``capabilities.multiprocess``).
    """

    #: Registry name; doubles as the spec-grammar scheme (``name:location``).
    name: str = ""
    capabilities: StoreCapabilities = StoreCapabilities(
        indexed_counts=False, eviction=False, multiprocess=False
    )

    # ------------------------------------------------------------- required
    @abstractmethod
    def load(self, scenario: Scenario) -> dict[int, StoredRun]:
        """Completed replications on record for ``scenario``, by index.

        Replications whose recorded seed disagrees with the scenario's seed
        derivation are ignored (treated as missing) — that cannot happen
        through this store's own writes, but it keeps a hand-edited or
        corrupted cell from silently poisoning a resumed sweep.  Corrupt
        records are skipped, never raised.
        """

    @abstractmethod
    def append(self, scenario: Scenario, runs: Sequence[StoredRun]) -> None:
        """Persist newly completed replications (see the locking contract).

        A replication appended twice resolves last-write-wins on ``load``.
        """

    @abstractmethod
    def run_index(self, scenario: Scenario) -> dict[int, RunMeta]:
        """Lightweight per-replication index (no result payloads).

        Entries are *not* seed-validated — callers filter against
        ``scenario.seeds()`` themselves — so one cached index can serve
        scenarios differing only in replication count.
        """

    @abstractmethod
    def scenarios_on_record(self) -> list[Scenario]:
        """The scenarios whose cells exist in this store (sorted by hash)."""

    @abstractmethod
    def scenario_for_hash(self, content_hash: str) -> Scenario | None:
        """Resolve a content hash back to the scenario recorded for it.

        The hash may reach this method straight from a URL path segment
        (``GET /results/<hash>``), so anything that is not a well-formed
        :meth:`Scenario.content_hash` digest must be rejected *before* any
        filesystem or query use — a traversal payload must never escape the
        store.
        """

    @abstractmethod
    def compact(self) -> CompactionReport:
        """Reclaim space: drop corrupt/duplicate records, locks, evictees."""

    @abstractmethod
    def describe(self) -> str:
        """The store spec string that reopens this backend (``name:location``)."""

    # -------------------------------------------------------------- derived
    def cached_count(self, scenario: Scenario) -> int:
        """How many of ``scenario``'s replications are on record.

        Counts seed-valid replication indices below
        ``scenario.replications``.  Indexed backends override this with an
        O(1) metadata probe that MAY over-count hand-corrupted rows —
        ``load`` stays the authority on what is actually servable.
        """
        expected = scenario.seeds()
        return sum(
            1
            for replication, meta in self.run_index(scenario).items()
            if replication < scenario.replications and meta.seed == expected[replication]
        )

    def cached_counts(self, scenarios: Sequence[Scenario]) -> list[int]:
        """:meth:`cached_count` for a whole grid, in input order.

        The session's sweep planner probes every cell of a grid before
        loading anything; indexed backends override this with **one** query
        for all hashes instead of one round trip per cell.
        """
        return [self.cached_count(scenario) for scenario in scenarios]

    def summaries(self) -> list[StoreRecord]:
        """One :class:`StoreRecord` per scenario on record (sorted by hash)."""
        records = []
        for scenario in self.scenarios_on_record():
            runs = self.load(scenario)
            records.append(
                StoreRecord(
                    scenario=scenario,
                    hash=scenario.content_hash(),
                    replications_on_record=len(runs),
                    solved_runs=sum(1 for run in runs.values() if run.result.solved),
                )
            )
        return records

    def close(self) -> None:
        """Release backend resources; further use is undefined."""

    def __repr__(self) -> str:  # pragma: no cover - debugging cosmetics
        return f"{type(self).__name__}({self.describe()!r})"

    # ------------------------------------------------------------- creation
    @classmethod
    def from_spec(cls, location: str) -> "StoreBackend":
        """Build from the grammar's location part (``<name>:<location>``)."""
        return cls(location)  # type: ignore[call-arg]


# --------------------------------------------------------------------------
# Backend registry and the store-selection grammar
# --------------------------------------------------------------------------

_BACKENDS: dict[str, type[StoreBackend]] = {}
_builtin_backends_loaded = False


def register_store_backend(cls: type[StoreBackend]) -> type[StoreBackend]:
    """Class decorator: add a backend to the ``name:location`` grammar."""
    if not cls.name:
        raise ValueError(f"store backend {cls.__name__} must declare a name")
    existing = _BACKENDS.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"store backend name {cls.name!r} is already registered")
    _BACKENDS[cls.name] = cls
    return cls


def _ensure_builtin_backends() -> None:
    """Import modules that register the built-in backends (cycle-free lazily)."""
    global _builtin_backends_loaded
    if _builtin_backends_loaded:
        return
    from repro.scenarios import store_chaos, store_sqlite  # noqa: F401 - register backends

    _builtin_backends_loaded = True


def available_store_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (``('chaos', 'jsonl', 'sqlite')`` out of the box)."""
    _ensure_builtin_backends()
    return tuple(sorted(_BACKENDS))


def store_backend_class(name: str) -> type[StoreBackend]:
    """Look up a registered backend class by name (the ``repro lint``
    store-contract rule audits every registered backend through this)."""
    _ensure_builtin_backends()
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown store backend {name!r}; registered: {sorted(_BACKENDS)}"
        ) from None


def parse_store_spec(spec: str) -> tuple[str, str]:
    """Split a store spec into ``(backend name, location)``.

    ``jsonl:path`` and ``sqlite:path.db`` select backends explicitly; a bare
    path — including Windows drive paths, whose one-letter "scheme" is never
    a registered backend — defaults to JSONL.
    """
    _ensure_builtin_backends()
    scheme, sep, rest = spec.partition(":")
    if sep and rest and scheme in _BACKENDS:
        return scheme, rest
    return JsonlStore.name, spec


def open_store(target: "str | Path | StoreBackend") -> StoreBackend:
    """Resolve a store target to a live :class:`StoreBackend`.

    Accepts an already-built backend (returned as-is), a ``Path`` (JSONL
    directory), or a spec string in the grammar documented in the module
    docstring.
    """
    if isinstance(target, StoreBackend):
        return target
    if isinstance(target, Path):
        return JsonlStore(target)
    name, location = parse_store_spec(str(target))
    return _BACKENDS[name].from_spec(location)


# --------------------------------------------------------------------------
# JSONL backend (the historical ResultStore, re-homed)
# --------------------------------------------------------------------------


@register_store_backend
class JsonlStore(StoreBackend):
    """Append-only per-hash JSONL files under one root directory.

    Layout: ``<root>/<content-hash>.jsonl``.  Line 1 is a self-describing
    header carrying the scenario that produced the cell; every further line
    records one completed replication.  Appending line-by-line makes
    interruption safe by construction: a run killed mid-sweep leaves
    complete lines for the replications that finished, and a torn final line
    is detected by the JSON parser and ignored.

    Reads are served through a per-hash parse cache invalidated on any
    mtime/size change of the cell file, so a repeated cache probe (the
    service's ``POST /scenarios`` fast path) costs one ``stat`` instead of
    re-parsing the whole file.
    """

    name = "jsonl"
    capabilities = StoreCapabilities(
        indexed_counts=False, eviction=False, multiprocess=fcntl is not None
    )

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Serialises writers within this process even where fcntl is missing;
        # cheap enough to hold across the flock on POSIX too.
        self._write_lock = threading.Lock()
        # hash -> ((mtime_ns, size), raw runs-by-replication); LRU-bounded.
        self._cache: OrderedDict[str, tuple[tuple[int, int], dict[int, StoredRun]]] = (
            OrderedDict()
        )
        # (hash, replications) -> ((mtime_ns, size), validated count).  Kept
        # separately from the parse cache because the count also depends on
        # the requested replication budget and its (derived) seed prefix.
        self._count_cache: OrderedDict[tuple[str, int], tuple[tuple[int, int], int]] = (
            OrderedDict()
        )
        self._cache_lock = threading.Lock()
        # Label children resolved once: the probe sits on the cached fast
        # path, where per-call labels() lookups are measurable.
        self._m_append = _M_APPEND.labels(backend=self.name)
        self._m_probe = _M_PROBE.labels(backend=self.name)

    def path_for(self, scenario: Scenario) -> Path:
        return self.root / f"{scenario.content_hash()}.jsonl"

    def describe(self) -> str:
        return f"{self.name}:{self.root}"

    @contextmanager
    def _locked(self, path: Path) -> Iterator[None]:
        """Hold the advisory per-hash write lock (see module docstring)."""
        with self._write_lock:
            if fcntl is None:
                yield
                return
            lock_path = path.with_name(path.name + ".lock")
            with lock_path.open("a") as lock_handle:
                fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
                try:
                    yield
                finally:
                    fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)

    # -------------------------------------------------------------- reading
    @staticmethod
    def _parse_runs(path: Path) -> dict[int, StoredRun]:
        """All run records in a cell file, last-write-wins, seed-unvalidated."""
        runs: dict[int, StoredRun] = {}
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail of an interrupted write
                if not isinstance(record, dict) or record.get("kind") != "run":
                    continue
                try:
                    run = StoredRun(
                        replication=int(record["replication"]),
                        seed=int(record["seed"]),
                        elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
                        result=SimulationResult.from_dict(record["result"]),
                    )
                except (KeyError, TypeError, ValueError):
                    continue  # malformed record: missing, not fatal
                runs[run.replication] = run
        return runs

    def _cell_runs(self, scenario: Scenario) -> dict[int, StoredRun]:
        """The cell's raw runs, via the mtime/size-invalidated parse cache."""
        path = self.path_for(scenario)
        key = scenario.content_hash()
        try:
            stat = path.stat()
        except OSError:
            with self._cache_lock:
                self._cache.pop(key, None)
            return {}
        signature = (stat.st_mtime_ns, stat.st_size)
        with self._cache_lock:
            entry = self._cache.get(key)
            if entry is not None and entry[0] == signature:
                self._cache.move_to_end(key)
                return entry[1]
        runs = self._parse_runs(path)
        with self._cache_lock:
            self._cache[key] = (signature, runs)
            self._cache.move_to_end(key)
            while len(self._cache) > _JSONL_CACHE_ENTRIES:
                self._cache.popitem(last=False)
        return runs

    def load(self, scenario: Scenario) -> dict[int, StoredRun]:
        expected_seeds = scenario.seeds()
        return {
            replication: run
            for replication, run in self._cell_runs(scenario).items()
            if replication >= len(expected_seeds) or run.seed == expected_seeds[replication]
        }

    def cached_count(self, scenario: Scenario) -> int:
        """Seed-validated count, memoised per ``(hash, replications)``.

        The memo follows the same mtime/size invalidation rule as the parse
        cache, so the service's repeated ``POST /scenarios`` cache-hit probe
        costs one ``stat`` — not a file parse plus an O(replications) seed
        derivation.
        """
        started = time.monotonic()
        try:
            return self._cached_count_inner(scenario)
        finally:
            self._m_probe.observe(time.monotonic() - started)

    def _cached_count_inner(self, scenario: Scenario) -> int:
        key = (scenario.content_hash(), scenario.replications)
        path = self.path_for(scenario)
        try:
            stat = path.stat()
        except OSError:
            with self._cache_lock:
                self._count_cache.pop(key, None)
            return 0
        signature = (stat.st_mtime_ns, stat.st_size)
        with self._cache_lock:
            entry = self._count_cache.get(key)
            if entry is not None and entry[0] == signature:
                self._count_cache.move_to_end(key)
                return entry[1]
        count = super().cached_count(scenario)
        try:
            stat = path.stat()
        except OSError:
            return count
        if (stat.st_mtime_ns, stat.st_size) != signature:
            return count  # concurrent append mid-computation: don't memoise
        with self._cache_lock:
            self._count_cache[key] = (signature, count)
            self._count_cache.move_to_end(key)
            while len(self._count_cache) > _JSONL_CACHE_ENTRIES:
                self._count_cache.popitem(last=False)
        return count

    def run_index(self, scenario: Scenario) -> dict[int, RunMeta]:
        return {
            replication: RunMeta(
                replication=replication,
                seed=run.seed,
                engine=run.result.engine,
                batch_reps=_batch_reps(run.result),
            )
            for replication, run in self._cell_runs(scenario).items()
        }

    # -------------------------------------------------------------- writing
    def append(self, scenario: Scenario, runs: Sequence[StoredRun]) -> None:
        """Persist newly completed replications (writing the header if new).

        The whole operation — tail inspection, torn-line healing, header
        decision and the write itself — runs under the per-hash advisory
        lock, and all lines of one call are emitted by a single ``write``,
        so concurrent appenders serialise cleanly instead of interleaving.
        """
        if not runs:
            return
        started = time.monotonic()
        path = self.path_for(scenario)
        with self._locked(path):
            lines = []
            # Heal a torn tail: a process killed mid-write leaves the file
            # without a trailing newline; appending straight onto it would
            # glue the first new record to the partial line and corrupt both,
            # forever.
            needs_leading_newline = False
            is_new_file = not path.exists() or path.stat().st_size == 0
            if not is_new_file:
                with path.open("rb") as handle:
                    handle.seek(-1, 2)
                    needs_leading_newline = handle.read(1) != b"\n"
            if is_new_file:
                lines.append(_header_line(scenario))
            for run in sorted(runs, key=lambda run: run.replication):
                lines.append(_run_line(run))
            with path.open("a", encoding="utf-8") as handle:
                payload = "\n".join(lines) + "\n"
                if needs_leading_newline:
                    payload = "\n" + payload
                handle.write(payload)
        content_hash = scenario.content_hash()
        with self._cache_lock:
            self._cache.pop(content_hash, None)
            for key in [k for k in self._count_cache if k[0] == content_hash]:
                del self._count_cache[key]
        self._m_append.observe(time.monotonic() - started)

    # ------------------------------------------------------------- listings
    def scenarios_on_record(self) -> list[Scenario]:
        """Scenarios whose cells exist under this root (locks never listed)."""
        scenarios = []
        for path in sorted(self.root.glob("*.jsonl")):
            scenario = self._scenario_from_header(path)
            if scenario is not None:
                scenarios.append(scenario)
        return scenarios

    def scenario_for_hash(self, content_hash: str) -> Scenario | None:
        if not _HASH_RE.fullmatch(content_hash):
            return None
        path = self.root / f"{content_hash}.jsonl"
        if not path.exists():
            return None
        return self._scenario_from_header(path)

    # ----------------------------------------------------------- janitorial
    def clean_locks(self) -> int:
        """Delete ``*.jsonl.lock`` sidecars; returns how many were removed.

        Safe only while no writer is mid-append on this root (a deleted lock
        file stops serialising writers that re-open it), which is why it runs
        from compaction and migration — offline moments — rather than after
        every append.
        """
        removed = 0
        for lock_path in self.root.glob("*.jsonl.lock"):
            try:
                lock_path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - raced by a concurrent writer
                continue
        return removed

    def compact(self) -> CompactionReport:
        """Rewrite every cell dropping torn/duplicate records; drop lock litter."""
        scenarios = 0
        dropped = 0
        for path in sorted(self.root.glob("*.jsonl")):
            scenario = self._scenario_from_header(path)
            if scenario is None:
                continue  # no trustworthy header: leave the file untouched
            with self._locked(path):
                with path.open("r", encoding="utf-8") as handle:
                    original_lines = sum(1 for line in handle if line.strip())
                runs = self._parse_runs(path)
                lines = [_header_line(scenario)]
                lines.extend(_run_line(run) for _, run in sorted(runs.items()))
                temp = path.with_name(path.name + ".compact")
                temp.write_text("\n".join(lines) + "\n", encoding="utf-8")
                temp.replace(path)
            scenarios += 1
            dropped += max(0, original_lines - (1 + len(runs)))
        with self._cache_lock:
            self._cache.clear()
            self._count_cache.clear()
        return CompactionReport(
            scenarios=scenarios,
            records_dropped=dropped,
            lock_files_removed=self.clean_locks(),
        )

    @staticmethod
    def _scenario_from_header(path: Path) -> Scenario | None:
        try:
            with path.open("r", encoding="utf-8") as handle:
                first = handle.readline().strip()
        except OSError:  # pragma: no cover - raced removal
            return None
        if not first:
            return None
        try:
            record = json.loads(first)
        except json.JSONDecodeError:
            return None
        if record.get("kind") != "scenario":
            return None
        try:
            return Scenario.from_dict(record["scenario"])
        except (KeyError, TypeError, ValueError):
            return None


def _batch_reps(result: SimulationResult) -> int | None:
    """The batch composition a result was produced under, if any."""
    batch_reps = result.metadata.get("batch_reps")
    return int(batch_reps) if isinstance(batch_reps, int) else None


def _header_line(scenario: Scenario) -> str:
    return json.dumps(
        {
            "kind": "scenario",
            "hash": scenario.content_hash(),
            "scenario": scenario.to_dict(),
        },
        sort_keys=True,
    )


def _run_line(run: StoredRun) -> str:
    return json.dumps(
        {
            "kind": "run",
            "replication": run.replication,
            "seed": run.seed,
            "elapsed_seconds": run.elapsed_seconds,
            "result": run.result.to_dict(),
        },
        sort_keys=True,
    )


#: Backwards-compatible alias: the concrete class every pre-interface caller
#: constructed directly.  ``ResultStore(root)`` is a ``JsonlStore``.
ResultStore = JsonlStore
