"""Persistent per-scenario result store: one JSONL file per scenario hash.

The store is the durability layer behind
:class:`~repro.scenarios.session.Session`.  Layout, under one root directory::

    <root>/<content-hash>.jsonl

Line 1 is a self-describing header carrying the scenario that produced the
file; every further line records one completed replication (its index, seed,
simulation time and full :class:`~repro.engine.result.SimulationResult`).
Appending line-by-line makes interruption safe by construction: a run killed
mid-sweep leaves complete lines for the replications that finished, and the
next session re-executes only the missing ones.  A torn final line (the
process died mid-write) is detected by the JSON parser and ignored.

The file is keyed by :meth:`Scenario.content_hash`, which excludes the
replication count — so raising ``replications`` later extends the same file
instead of starting a new cell from scratch.

Concurrency
-----------
:meth:`ResultStore.append` is safe under concurrent writers.  Each append
takes an ``fcntl``-based advisory lock on a per-hash sidecar file
(``<content-hash>.jsonl.lock``) for the whole read-tail/heal/write critical
section, so two processes — or two server worker threads, since ``flock``
locks attach to the open file description, not the process — cannot
interleave torn lines or both decide to write the header.  The header itself
is written atomically with the first batch of runs in a single ``write``
call, under the lock, after re-checking that the file is still empty.  On
platforms without ``fcntl`` (Windows) the store degrades to an in-process
:class:`threading.Lock`, which still serialises all writers within one
interpreter (the simulation service's deployment shape).
"""

from __future__ import annotations

import json
import re
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

try:  # pragma: no cover - exercised implicitly on POSIX
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback
    fcntl = None  # type: ignore[assignment]

from repro.engine.result import SimulationResult
from repro.scenarios.scenario import Scenario

__all__ = ["StoredRun", "StoreRecord", "ResultStore"]

#: Shape of :meth:`Scenario.content_hash` digests (16 lowercase hex digits).
_HASH_RE = re.compile(r"[0-9a-f]{16}")


@dataclass(frozen=True)
class StoredRun:
    """One persisted replication of a scenario."""

    replication: int
    seed: int
    elapsed_seconds: float
    result: SimulationResult


@dataclass(frozen=True)
class StoreRecord:
    """Summary of one scenario's file on record (the ``repro store`` listing)."""

    scenario: Scenario
    hash: str
    replications_on_record: int
    solved_runs: int

    @property
    def solved_fraction(self) -> float:
        if self.replications_on_record == 0:
            return 0.0
        return self.solved_runs / self.replications_on_record

    def to_dict(self) -> dict[str, object]:
        return {
            "scenario": self.scenario.format(),
            "hash": self.hash,
            "replications_on_record": self.replications_on_record,
            "requested_replications": self.scenario.replications,
            "solved_runs": self.solved_runs,
            "solved_fraction": self.solved_fraction,
        }


class ResultStore:
    """Append-only JSONL store of per-replication outcomes, keyed by scenario hash."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Serialises writers within this process even where fcntl is missing;
        # cheap enough to hold across the flock on POSIX too.
        self._write_lock = threading.Lock()

    def path_for(self, scenario: Scenario) -> Path:
        return self.root / f"{scenario.content_hash()}.jsonl"

    @contextmanager
    def _locked(self, path: Path) -> Iterator[None]:
        """Hold the advisory per-hash write lock (see module docstring)."""
        with self._write_lock:
            if fcntl is None:
                yield
                return
            lock_path = path.with_name(path.name + ".lock")
            with lock_path.open("a") as lock_handle:
                fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
                try:
                    yield
                finally:
                    fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)

    def load(self, scenario: Scenario) -> dict[int, StoredRun]:
        """Return the completed replications on record for ``scenario``.

        Replications whose recorded seed disagrees with the scenario's seed
        derivation are ignored (treated as missing) — that cannot happen
        through this store's own writes, but it keeps a hand-edited or
        corrupted file from silently poisoning a resumed sweep.
        """
        path = self.path_for(scenario)
        if not path.exists():
            return {}
        expected_seeds = scenario.seeds()
        runs: dict[int, StoredRun] = {}
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail of an interrupted write
                if record.get("kind") != "run":
                    continue
                replication = int(record["replication"])
                seed = int(record["seed"])
                if replication < len(expected_seeds) and seed != expected_seeds[replication]:
                    continue
                runs[replication] = StoredRun(
                    replication=replication,
                    seed=seed,
                    elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
                    result=SimulationResult.from_dict(record["result"]),
                )
        return runs

    def append(self, scenario: Scenario, runs: list[StoredRun]) -> None:
        """Persist newly completed replications (writing the header if new).

        The whole operation — tail inspection, torn-line healing, header
        decision and the write itself — runs under the per-hash advisory
        lock, and all lines of one call are emitted by a single ``write``,
        so concurrent appenders serialise cleanly instead of interleaving.
        """
        if not runs:
            return
        path = self.path_for(scenario)
        with self._locked(path):
            lines = []
            # Heal a torn tail: a process killed mid-write leaves the file
            # without a trailing newline; appending straight onto it would
            # glue the first new record to the partial line and corrupt both,
            # forever.
            needs_leading_newline = False
            is_new_file = not path.exists() or path.stat().st_size == 0
            if not is_new_file:
                with path.open("rb") as handle:
                    handle.seek(-1, 2)
                    needs_leading_newline = handle.read(1) != b"\n"
            if is_new_file:
                lines.append(
                    json.dumps(
                        {
                            "kind": "scenario",
                            "hash": scenario.content_hash(),
                            "scenario": scenario.to_dict(),
                        },
                        sort_keys=True,
                    )
                )
            for run in sorted(runs, key=lambda run: run.replication):
                lines.append(
                    json.dumps(
                        {
                            "kind": "run",
                            "replication": run.replication,
                            "seed": run.seed,
                            "elapsed_seconds": run.elapsed_seconds,
                            "result": run.result.to_dict(),
                        },
                        sort_keys=True,
                    )
                )
            with path.open("a", encoding="utf-8") as handle:
                payload = "\n".join(lines) + "\n"
                if needs_leading_newline:
                    payload = "\n" + payload
                handle.write(payload)

    def scenarios_on_record(self) -> list[Scenario]:
        """Return the scenarios whose stores exist under this root."""
        scenarios = []
        for path in sorted(self.root.glob("*.jsonl")):
            scenario = self._scenario_from_header(path)
            if scenario is not None:
                scenarios.append(scenario)
        return scenarios

    def scenario_for_hash(self, content_hash: str) -> Scenario | None:
        """Resolve a content hash back to the scenario recorded in its header.

        The hash reaches this method straight from a URL path segment
        (``GET /results/<hash>``), so anything that is not a well-formed
        :meth:`Scenario.content_hash` digest is rejected *before* the path
        join — a traversal payload must never escape the store root.
        """
        if not _HASH_RE.fullmatch(content_hash):
            return None
        path = self.root / f"{content_hash}.jsonl"
        if not path.exists():
            return None
        return self._scenario_from_header(path)

    def summaries(self) -> list[StoreRecord]:
        """One :class:`StoreRecord` per scenario on record (sorted by hash)."""
        records = []
        for scenario in self.scenarios_on_record():
            runs = self.load(scenario)
            records.append(
                StoreRecord(
                    scenario=scenario,
                    hash=scenario.content_hash(),
                    replications_on_record=len(runs),
                    solved_runs=sum(1 for run in runs.values() if run.result.solved),
                )
            )
        return records

    @staticmethod
    def _scenario_from_header(path: Path) -> Scenario | None:
        with path.open("r", encoding="utf-8") as handle:
            first = handle.readline().strip()
        if not first:
            return None
        try:
            record = json.loads(first)
        except json.JSONDecodeError:
            return None
        if record.get("kind") != "scenario":
            return None
        return Scenario.from_dict(record["scenario"])
