"""Declarative scenario API: spec strings, scenarios, sessions, result stores.

This package is the spec-driven front door to the whole library:

* :mod:`repro.scenarios.spec` — the ``"name(key=value)"`` spec-string grammar
  shared by the protocol, arrival and channel registries;
* :mod:`repro.scenarios.scenario` — the frozen, hashable :class:`Scenario`
  value object (string ⇄ dict ⇄ JSON ⇄ TOML round-trips);
* :mod:`repro.scenarios.store` — pluggable result-store backends behind the
  :class:`StoreBackend` contract: the per-scenario JSONL store
  (:class:`JsonlStore`), the indexed SQLite store
  (:class:`~repro.scenarios.store_sqlite.SqliteStore`), the deterministic
  fault-injecting ``chaos:`` wrapper
  (:class:`~repro.scenarios.store_chaos.ChaosStore`), and the
  ``jsonl:``/``sqlite:``/``chaos:`` selection grammar (:func:`open_store`);
* :mod:`repro.scenarios.federation` — cross-store sync by content hash
  (:func:`sync_stores`), disk↔disk or against a running simulation service;
* :mod:`repro.scenarios.session` — the :class:`Session` service that plans,
  caches, resumes and fans out scenario executions.

Quickstart::

    from repro import Scenario, Session

    scenario = Scenario.parse("one-fail-adaptive k=1000 reps=10 seed=7")
    result_set = Session(store_dir="results/store").run(scenario)
    print(result_set.mean_makespan, result_set.new_runs, result_set.cached_runs)

Re-running the same scenario against the same store performs zero new
simulations — every replication is served from the store.  Pass
``store_dir="sqlite:results.db"`` for the indexed backend, and
``sync_stores(src, dst)`` to make results simulated anywhere cached
everywhere.
"""

from __future__ import annotations

from repro.scenarios.federation import RemoteStore, SyncReport
from repro.scenarios.federation import sync as sync_stores
from repro.scenarios.scenario import SEED_POLICIES, Scenario
from repro.scenarios.session import ResultSet, Session, SessionProgress
from repro.scenarios.spec import SpecError, canonical_spec, format_spec, parse_spec
from repro.scenarios.store import (
    CompactionReport,
    JsonlStore,
    ResultStore,
    RunMeta,
    StoreBackend,
    StoreCapabilities,
    StoredRun,
    StoreRecord,
    available_store_backends,
    open_store,
    parse_store_spec,
    register_store_backend,
)
from repro.scenarios.store_chaos import ChaosStore
from repro.scenarios.store_sqlite import SqliteStore

__all__ = [
    "Scenario",
    "SEED_POLICIES",
    "Session",
    "SessionProgress",
    "ResultSet",
    "StoreBackend",
    "JsonlStore",
    "SqliteStore",
    "ChaosStore",
    "RemoteStore",
    "ResultStore",
    "StoredRun",
    "StoreRecord",
    "RunMeta",
    "StoreCapabilities",
    "CompactionReport",
    "open_store",
    "parse_store_spec",
    "register_store_backend",
    "available_store_backends",
    "sync_stores",
    "SyncReport",
    "SpecError",
    "parse_spec",
    "format_spec",
    "canonical_spec",
]
