"""Declarative scenario API: spec strings, scenarios, sessions, result stores.

This package is the spec-driven front door to the whole library:

* :mod:`repro.scenarios.spec` — the ``"name(key=value)"`` spec-string grammar
  shared by the protocol, arrival and channel registries;
* :mod:`repro.scenarios.scenario` — the frozen, hashable :class:`Scenario`
  value object (string ⇄ dict ⇄ JSON ⇄ TOML round-trips);
* :mod:`repro.scenarios.store` — the per-scenario JSONL result store;
* :mod:`repro.scenarios.session` — the :class:`Session` service that plans,
  caches, resumes and fans out scenario executions.

Quickstart::

    from repro import Scenario, Session

    scenario = Scenario.parse("one-fail-adaptive k=1000 reps=10 seed=7")
    result_set = Session(store_dir="results/store").run(scenario)
    print(result_set.mean_makespan, result_set.new_runs, result_set.cached_runs)

Re-running the same scenario against the same store performs zero new
simulations — every replication is served from the JSONL store.
"""

from repro.scenarios.scenario import SEED_POLICIES, Scenario
from repro.scenarios.session import ResultSet, Session, SessionProgress
from repro.scenarios.spec import SpecError, canonical_spec, format_spec, parse_spec
from repro.scenarios.store import ResultStore, StoredRun, StoreRecord

__all__ = [
    "Scenario",
    "SEED_POLICIES",
    "Session",
    "SessionProgress",
    "ResultSet",
    "ResultStore",
    "StoredRun",
    "StoreRecord",
    "SpecError",
    "parse_spec",
    "format_spec",
    "canonical_spec",
]
