"""Channel semantics: slot outcomes, feedback models, per-station observations.

The multiple-access channel of the paper is fully described by two rules:

1. **Outcome rule.**  In a slot, if exactly one station transmits the slot is a
   *success* and the message is delivered to every station; if none transmit
   the slot is *silent*; if two or more transmit the slot is a *collision* and
   nothing is delivered.
2. **Feedback rule.**  The paper's model has *no collision detection*: a
   station that did not receive a message cannot tell whether the slot was
   silent or a collision.  A station whose own transmission succeeded learns
   so (implicit acknowledgement, e.g. 802.11-style ACK) and becomes idle.

Other feedback models (full collision detection, as used by the tree/splitting
algorithms discussed in the paper's related work) are provided so baselines
that need them can be expressed in the same framework.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "SlotOutcome",
    "FeedbackModel",
    "Observation",
    "ChannelModel",
    "resolve_slot",
    "available_channels",
    "build_channel",
]


class SlotOutcome(enum.Enum):
    """Physical outcome of one communication step on the shared channel."""

    #: No station transmitted; only background noise on the channel.
    SILENCE = "silence"
    #: Exactly one station transmitted; its message was delivered to everyone.
    SUCCESS = "success"
    #: Two or more stations transmitted; messages garbled, nothing delivered.
    COLLISION = "collision"


class FeedbackModel(enum.Enum):
    """How much of the slot outcome a non-receiving station can observe."""

    #: The paper's model: silence and collision are indistinguishable noise.
    NO_COLLISION_DETECTION = "no-cd"
    #: Ternary feedback: every station learns the exact :class:`SlotOutcome`.
    COLLISION_DETECTION = "cd"


def resolve_slot(transmitter_count: int) -> SlotOutcome:
    """Map the number of simultaneous transmitters to the slot outcome."""
    if transmitter_count < 0:
        raise ValueError(f"transmitter_count must be non-negative, got {transmitter_count}")
    if transmitter_count == 0:
        return SlotOutcome.SILENCE
    if transmitter_count == 1:
        return SlotOutcome.SUCCESS
    return SlotOutcome.COLLISION


@dataclass(frozen=True)
class Observation:
    """What one station observes at the end of one slot.

    Attributes
    ----------
    slot:
        Global slot index (0-based).
    transmitted:
        Whether this station transmitted in the slot.
    received:
        Whether this station received a message transmitted by *another*
        station (true exactly when the slot was a success and the station was
        not the transmitter).
    delivered:
        Whether this station's own transmission succeeded in the slot (the
        implicit acknowledgement of the model); the station becomes idle.
    detected:
        The exact slot outcome, populated only under
        :attr:`FeedbackModel.COLLISION_DETECTION`; ``None`` in the paper's
        model, where noise is ambiguous.
    """

    slot: int
    transmitted: bool
    received: bool
    delivered: bool
    detected: SlotOutcome | None = None

    def __post_init__(self) -> None:
        if self.received and self.delivered:
            raise ValueError("a station cannot both receive another message and deliver its own")
        if self.delivered and not self.transmitted:
            raise ValueError("a station cannot deliver without transmitting")

    @property
    def heard_something(self) -> bool:
        """True when the station can positively distinguish this slot from noise."""
        return self.received or self.delivered or self.detected is not None


@dataclass(frozen=True)
class ChannelModel:
    """Configuration of the shared channel.

    The default configuration is exactly the paper's model: no collision
    detection and implicit acknowledgement of successful transmissions.
    Setting ``acknowledgements=False`` models channels without an ACK
    mechanism, in which stations never learn that their own transmission
    succeeded.  None of the paper's protocols can *terminate* in that setting
    (a station that never learns of its delivery never retires), so the
    simulation engines reject such channels up front; the flag remains for
    reasoning about :meth:`observe` feedback in isolation.
    """

    feedback: FeedbackModel = FeedbackModel.NO_COLLISION_DETECTION
    acknowledgements: bool = True

    def observe(
        self,
        slot: int,
        transmitted: bool,
        outcome: SlotOutcome,
        is_successful_transmitter: bool,
    ) -> Observation:
        """Build the :class:`Observation` for a single station.

        Parameters
        ----------
        slot:
            Global slot index.
        transmitted:
            Whether the observing station transmitted.
        outcome:
            The physical outcome of the slot.
        is_successful_transmitter:
            Whether the observing station is the unique transmitter of a
            successful slot.
        """
        if is_successful_transmitter and outcome is not SlotOutcome.SUCCESS:
            raise ValueError("is_successful_transmitter requires a SUCCESS outcome")
        if is_successful_transmitter and not transmitted:
            raise ValueError("the successful transmitter must have transmitted")
        received = outcome is SlotOutcome.SUCCESS and not is_successful_transmitter
        delivered = is_successful_transmitter and self.acknowledgements
        detected = outcome if self.feedback is FeedbackModel.COLLISION_DETECTION else None
        return Observation(
            slot=slot,
            transmitted=transmitted,
            received=received,
            delivered=delivered,
            detected=detected,
        )


#: Spec-string registry of named channel configurations, mirroring the
#: protocol and arrival registries.  "default" (alias "no-cd") is the paper's
#: channel; "cd" grants every station ternary collision-detection feedback.
_CHANNEL_REGISTRY: dict[str, FeedbackModel] = {
    "default": FeedbackModel.NO_COLLISION_DETECTION,
    "no-cd": FeedbackModel.NO_COLLISION_DETECTION,
    "cd": FeedbackModel.COLLISION_DETECTION,
}


def available_channels() -> list[str]:
    """Return the sorted spec names of the registered channel configurations."""
    return sorted(_CHANNEL_REGISTRY)


def build_channel(spec: str) -> ChannelModel:
    """Build a :class:`ChannelModel` from a spec string.

    ``"default"``/``"no-cd"`` is the paper's channel (no collision detection,
    implicit acknowledgements); ``"cd"`` enables ternary feedback.  Either
    name accepts an ``acknowledgements`` parameter, e.g.
    ``"cd(acknowledgements=false)"`` (note that the simulation engines reject
    ack-less channels up front — no protocol can terminate on them).
    """
    from repro.scenarios.spec import parse_spec

    name, params = parse_spec(spec)
    try:
        feedback = _CHANNEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(available_channels())
        raise KeyError(f"unknown channel {name!r}; registered: {known}") from None
    acknowledgements = params.pop("acknowledgements", True)
    if params:
        raise ValueError(f"unknown channel parameters {sorted(params)} in spec {spec!r}")
    if not isinstance(acknowledgements, bool):
        raise ValueError(f"acknowledgements must be a boolean, got {acknowledgements!r}")
    return ChannelModel(feedback=feedback, acknowledgements=acknowledgements)
