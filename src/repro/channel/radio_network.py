"""Exact node-level simulator of the single-hop Radio Network.

This is the reference implementation of the paper's model (Section 2): every
station is an explicit :class:`~repro.channel.node.Node` object holding its
own protocol instance and its own random stream; every slot the simulator

1. injects any arriving messages (activating the corresponding nodes),
2. asks every active node whether it transmits,
3. resolves the slot (silence / success / collision), and
4. hands each active node exactly the feedback the channel model allows it to
   observe.

The run ends when every injected message has been delivered (or when the
safety cap on the number of slots is reached, which is reported as a failure
rather than silently returning a truncated makespan).

The node-level simulator is O(active nodes) per slot, so it is the slowest of
the three engines; it exists to *define* the semantics.  The specialised
engines in :mod:`repro.engine` are validated against it in the test suite and
are the ones used for the large sweeps of the evaluation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.channel.arrivals import ArrivalProcess, BatchArrival
from repro.channel.model import ChannelModel, SlotOutcome, resolve_slot
from repro.channel.node import Message, Node
from repro.channel.trace import ExecutionTrace, SlotRecord
from repro.protocols.base import Protocol
from repro.util.rng import RandomSource

__all__ = ["RadioNetwork", "RadioNetworkResult"]

#: Default safety cap: no experiment in this repository legitimately needs
#: more than this many slots per contender.
_DEFAULT_SLOT_FACTOR = 10_000


@dataclass
class RadioNetworkResult:
    """Outcome of one node-level simulation run.

    Attributes
    ----------
    solved:
        Whether every message was delivered before the slot cap.
    makespan:
        Number of slots until the last delivery (inclusive); the quantity the
        paper plots in Figure 1 and divides by k in Table 1.  ``None`` when
        the run did not solve the instance.
    k:
        Total number of messages injected.
    slots_simulated:
        Number of slots actually simulated (equals ``makespan`` for solved
        runs).
    successes, collisions, silences:
        Slot-outcome counts over the whole run.
    delivery_slots:
        Slot index (0-based) of every successful delivery, in order.
    node_summaries:
        Per-node statistics (only populated when ``collect_node_summaries``).
    """

    solved: bool
    makespan: int | None
    k: int
    slots_simulated: int
    successes: int
    collisions: int
    silences: int
    delivery_slots: list[int] = field(default_factory=list)
    node_summaries: list[dict[str, object]] = field(default_factory=list)

    @property
    def steps_per_node(self) -> float:
        """The ratio reported in Table 1 of the paper."""
        if not self.solved or self.makespan is None:
            raise ValueError("steps_per_node is only defined for solved runs")
        return self.makespan / self.k


class RadioNetwork:
    """Single-hop Radio Network simulator (exact, per-node).

    Parameters
    ----------
    protocol:
        Prototype protocol instance; each node receives an independent
        :meth:`~repro.protocols.base.Protocol.spawn` copy.
    arrivals:
        Arrival process; defaults must be provided by the caller (static
        k-selection uses :class:`~repro.channel.arrivals.BatchArrival`).
    channel:
        Channel model (defaults to the paper's: no collision detection,
        implicit acknowledgements).
    seed:
        Root seed for the run; node streams and arrival randomness are derived
        from it deterministically.
    max_slots:
        Safety cap on the number of simulated slots; ``None`` selects
        ``_DEFAULT_SLOT_FACTOR * k``.
    """

    def __init__(
        self,
        protocol: Protocol,
        arrivals: ArrivalProcess,
        channel: ChannelModel | None = None,
        seed: int = 0,
        max_slots: int | None = None,
    ) -> None:
        self.protocol_prototype = protocol
        self.arrivals = arrivals
        self.channel = channel if channel is not None else ChannelModel()
        if not self.channel.acknowledgements:
            # Without acknowledgements a successful transmitter never learns
            # of its delivery, so it stays active and the run is guaranteed to
            # burn to the slot cap; fail loudly instead of timing out.
            raise ValueError(
                "RadioNetwork requires a channel with acknowledgements: under "
                "acknowledgements=False no station ever retires, so k-selection "
                "cannot terminate and every run would hit the slot cap"
            )
        self.seed = seed
        self.k = arrivals.total_messages
        self.max_slots = max_slots if max_slots is not None else _DEFAULT_SLOT_FACTOR * self.k

    @classmethod
    def for_static_k_selection(
        cls,
        protocol: Protocol,
        k: int,
        seed: int = 0,
        channel: ChannelModel | None = None,
        max_slots: int | None = None,
    ) -> "RadioNetwork":
        """Convenience constructor for the paper's setting (batched arrivals)."""
        return cls(
            protocol=protocol,
            arrivals=BatchArrival(k),
            channel=channel,
            seed=seed,
            max_slots=max_slots,
        )

    # ---------------------------------------------------------------- running
    def run(
        self,
        trace: ExecutionTrace | None = None,
        collect_node_summaries: bool = False,
    ) -> RadioNetworkResult:
        """Simulate until every message is delivered (or the slot cap is hit)."""
        source = RandomSource(seed=self.seed)
        arrival_rng = source.child(0).generator
        node_source = source.child(1)

        events = sorted(self.arrivals.events(arrival_rng), key=lambda event: event.slot)
        total_messages = sum(event.count for event in events)
        if total_messages != self.k:
            raise RuntimeError(
                f"arrival process announced {self.k} messages but generated {total_messages}"
            )

        nodes: list[Node] = []
        # The active set is maintained incrementally: nodes join on arrival
        # and leave when their message is delivered (the only way a node goes
        # idle, and at most one per slot).  Rescanning `nodes` every slot
        # would cost O(total nodes ever created) per slot, which dominates
        # long dynamic runs where most nodes are already done.
        active_nodes: list[Node] = []
        # A deque keeps the per-slot arrival check O(1) per event; bursty and
        # Poisson schedules can hold one event per message, and list.pop(0)
        # would make the arrival phase quadratic in the number of events.
        pending_events = deque(events)
        delivered = 0
        successes = collisions = silences = 0
        delivery_slots: list[int] = []

        slot = 0
        while delivered < total_messages:
            if slot >= self.max_slots:
                return RadioNetworkResult(
                    solved=False,
                    makespan=None,
                    k=total_messages,
                    slots_simulated=slot,
                    successes=successes,
                    collisions=collisions,
                    silences=silences,
                    delivery_slots=delivery_slots,
                    node_summaries=[node.summary() for node in nodes]
                    if collect_node_summaries
                    else [],
                )

            # 1. arrivals
            while pending_events and pending_events[0].slot <= slot:
                event = pending_events.popleft()
                for _ in range(event.count):
                    node_id = len(nodes)
                    node = Node(
                        node_id=node_id,
                        protocol=self.protocol_prototype.spawn(),
                        rng=node_source.child(node_id).generator,
                    )
                    node.activate(Message(origin=node_id, arrival_slot=slot), slot)
                    nodes.append(node)
                    active_nodes.append(node)

            # 2. transmission decisions (one flag per active node, so the
            # feedback phase below tests membership in O(1) instead of
            # scanning the transmitter list per node)
            active_before = len(active_nodes)
            decisions = [node.decide_transmission(slot) for node in active_nodes]
            transmitters = [
                node for node, transmitted in zip(active_nodes, decisions) if transmitted
            ]
            outcome = resolve_slot(len(transmitters))
            if outcome is SlotOutcome.SUCCESS:
                successes += 1
            elif outcome is SlotOutcome.COLLISION:
                collisions += 1
            else:
                silences += 1

            successful_node = transmitters[0] if outcome is SlotOutcome.SUCCESS else None

            # 3. feedback
            for node, transmitted in zip(active_nodes, decisions):
                observation = self.channel.observe(
                    slot=slot,
                    transmitted=transmitted,
                    outcome=outcome,
                    is_successful_transmitter=node is successful_node,
                )
                node.receive_feedback(observation)

            if successful_node is not None and not successful_node.is_active:
                delivered += 1
                delivery_slots.append(slot)
                active_nodes.remove(successful_node)

            if trace is not None:
                trace.append(
                    SlotRecord(
                        slot=slot,
                        transmitters=len(transmitters),
                        outcome=outcome,
                        active_before=active_before,
                        delivered_node=successful_node.node_id if successful_node else None,
                    )
                )
            slot += 1

        return RadioNetworkResult(
            solved=True,
            makespan=delivery_slots[-1] + 1 if delivery_slots else 0,
            k=total_messages,
            slots_simulated=slot,
            successes=successes,
            collisions=collisions,
            silences=silences,
            delivery_slots=delivery_slots,
            node_summaries=[node.summary() for node in nodes] if collect_node_summaries else [],
        )
