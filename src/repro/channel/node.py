"""Station (node) state machine used by the exact node-level simulator.

A node in the paper's model is in one of two states: *active* while it holds a
message to deliver, *idle* otherwise.  A node becomes active when a message
arrives (for static k-selection, all k messages arrive in one batch at slot 0)
and becomes idle as soon as its transmission succeeds, which the model assumes
is acknowledged implicitly.

The node object couples that state machine with a per-node protocol instance
and with the per-node random stream, so the
:class:`~repro.channel.radio_network.RadioNetwork` simulator can remain a thin
orchestration loop.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.channel.model import Observation
from repro.protocols.base import Protocol

__all__ = ["Message", "NodeState", "Node"]

_message_counter = itertools.count()


@dataclass(frozen=True)
class Message:
    """A piece of information assigned to a node by an external agent.

    Attributes
    ----------
    message_id:
        Globally unique identifier (unique within a process).
    origin:
        Identifier of the node the message was assigned to, or ``None`` if it
        has not been assigned yet.
    arrival_slot:
        Slot at which the message arrived (0 for batched/static arrivals).
    payload:
        Free-form payload; the simulator never inspects it.
    """

    message_id: int = field(default_factory=lambda: next(_message_counter))
    origin: int | None = None
    arrival_slot: int = 0
    payload: object = None


class NodeState(enum.Enum):
    """Lifecycle of a station."""

    #: No message assigned yet (relevant only for dynamic arrivals).
    DORMANT = "dormant"
    #: Holds a message and contends for the channel.
    ACTIVE = "active"
    #: Message delivered; the node no longer transmits.
    IDLE = "idle"


class Node:
    """A station of the single-hop Radio Network.

    Parameters
    ----------
    node_id:
        Identifier used only by the simulator and traces; the protocols never
        see it (the model gives nodes no labels).
    protocol:
        A fresh protocol instance governing this node's transmissions.
    rng:
        The node's private random stream.
    """

    def __init__(self, node_id: int, protocol: Protocol, rng: np.random.Generator) -> None:
        self.node_id = node_id
        self.protocol = protocol
        self.rng = rng
        self.state = NodeState.DORMANT
        self.message: Message | None = None
        self.activation_slot: int | None = None
        self.delivery_slot: int | None = None
        self.transmissions = 0
        self.collisions = 0

    # ------------------------------------------------------------------ state
    @property
    def is_active(self) -> bool:
        """Whether the node currently contends for the channel."""
        return self.state is NodeState.ACTIVE

    def activate(self, message: Message, slot: int) -> None:
        """Handle a message arrival: the node becomes active and (re)starts its protocol."""
        if self.state is NodeState.ACTIVE:
            raise RuntimeError(
                f"node {self.node_id} received a message while still holding one "
                "(the static k-selection model assigns one message per node)"
            )
        self.message = message
        self.activation_slot = slot
        self.delivery_slot = None
        self.state = NodeState.ACTIVE
        self.protocol.reset()

    # ------------------------------------------------------------ slot phases
    def decide_transmission(self, slot: int) -> bool:
        """Phase 1 of a slot: ask the protocol whether to transmit."""
        if not self.is_active:
            return False
        transmit = self.protocol.will_transmit(slot, self.rng)
        if transmit:
            self.transmissions += 1
        return transmit

    def receive_feedback(self, observation: Observation) -> None:
        """Phase 2 of a slot: deliver the channel feedback to the protocol.

        If the observation carries the acknowledgement of this node's own
        message, the node becomes idle (Task 3 of Algorithm 1: "upon message
        delivery stop"); the protocol is still notified first so that traces
        of its final state are meaningful.
        """
        if not self.is_active:
            return
        self.protocol.notify(observation)
        if observation.transmitted and not observation.delivered and not observation.received:
            # The node transmitted but nobody got the message: with at least
            # one other transmitter this was a collision.  (Under the paper's
            # feedback model the node itself cannot distinguish this from its
            # ACK being lost, but the simulator can, and the counter is useful
            # for diagnostics.)
            self.collisions += 1
        if observation.delivered:
            self.state = NodeState.IDLE
            self.delivery_slot = observation.slot

    # ---------------------------------------------------------------- reports
    def summary(self) -> dict[str, object]:
        """Return a JSON-friendly summary of the node's run."""
        return {
            "node_id": self.node_id,
            "state": self.state.value,
            "activation_slot": self.activation_slot,
            "delivery_slot": self.delivery_slot,
            "transmissions": self.transmissions,
            "collisions": self.collisions,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Node(id={self.node_id}, state={self.state.value}, "
            f"protocol={type(self.protocol).__name__})"
        )
