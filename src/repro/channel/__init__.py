"""Radio-network substrate: the multiple-access channel the paper simulates.

The paper's model (Section 2) is a slot-synchronous single-hop Radio Network
without collision detection: in every communication step each active station
decides whether to transmit; if exactly one transmits the message is delivered
to everyone (and implicitly acknowledged), otherwise the stations hear noise
and cannot tell a collision apart from silence.

This package implements that substrate:

* :mod:`repro.channel.model` — slot outcomes, feedback models and the
  per-station observation produced by a slot.
* :mod:`repro.channel.node` — station state machine (active / idle) wrapping a
  per-node protocol instance.
* :mod:`repro.channel.arrivals` — message-arrival processes: the batch arrival
  of static k-selection plus Poisson and bursty processes for the dynamic
  extension discussed in the paper's conclusions.
* :mod:`repro.channel.trace` — per-slot execution records.
* :mod:`repro.channel.radio_network` — the exact node-level simulator.
"""

from __future__ import annotations

from repro.channel.model import (
    ChannelModel,
    FeedbackModel,
    Observation,
    SlotOutcome,
    available_channels,
    build_channel,
    resolve_slot,
)
from repro.channel.node import Message, Node, NodeState
from repro.channel.arrivals import (
    ArrivalEvent,
    ArrivalProcess,
    BatchArrival,
    BurstyArrival,
    PoissonArrival,
    available_arrivals,
    build_arrivals,
    get_arrival_class,
    register_arrival,
)
from repro.channel.trace import ExecutionTrace, SlotRecord
from repro.channel.radio_network import RadioNetwork, RadioNetworkResult

__all__ = [
    "ChannelModel",
    "FeedbackModel",
    "Observation",
    "SlotOutcome",
    "resolve_slot",
    "Message",
    "Node",
    "NodeState",
    "ArrivalEvent",
    "ArrivalProcess",
    "BatchArrival",
    "BurstyArrival",
    "PoissonArrival",
    "available_arrivals",
    "available_channels",
    "build_arrivals",
    "build_channel",
    "get_arrival_class",
    "register_arrival",
    "ExecutionTrace",
    "SlotRecord",
    "RadioNetwork",
    "RadioNetworkResult",
]
