"""Execution traces of channel simulations.

Traces serve two purposes in this repository:

* **debugging and testing** — the cross-engine validation tests compare
  per-slot outcome sequences, and several unit tests assert properties of the
  trace (e.g. that exactly k slots are successes);
* **inspection** — the examples print small traces so a reader can follow
  what a protocol does slot by slot, mirroring the narrative descriptions in
  Sections 3 and 4 of the paper.

Recording a full trace of a multi-million-slot run would dwarf the cost of the
simulation itself, so tracing is opt-in: engines only populate a trace when the
caller passes one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channel.model import SlotOutcome

__all__ = ["SlotRecord", "ExecutionTrace"]


@dataclass(frozen=True)
class SlotRecord:
    """What happened in one slot of one run.

    Attributes
    ----------
    slot:
        Global slot index (0-based).
    transmitters:
        Number of stations that transmitted in the slot.
    outcome:
        The resulting :class:`SlotOutcome`.
    active_before:
        Number of active stations at the beginning of the slot.
    delivered_node:
        Identifier of the delivering station for successful slots (when the
        engine tracks identities), otherwise ``None``.
    """

    slot: int
    transmitters: int
    outcome: SlotOutcome
    active_before: int
    delivered_node: int | None = None


@dataclass
class ExecutionTrace:
    """Ordered collection of :class:`SlotRecord` with convenience accessors."""

    records: list[SlotRecord] = field(default_factory=list)
    max_records: int | None = None

    def append(self, record: SlotRecord) -> None:
        """Append a record, silently dropping it once ``max_records`` is reached."""
        if self.max_records is not None and len(self.records) >= self.max_records:
            return
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index: int) -> SlotRecord:
        return self.records[index]

    # ------------------------------------------------------------ aggregates
    def count(self, outcome: SlotOutcome) -> int:
        """Number of recorded slots with the given outcome."""
        return sum(1 for record in self.records if record.outcome is outcome)

    @property
    def successes(self) -> int:
        return self.count(SlotOutcome.SUCCESS)

    @property
    def collisions(self) -> int:
        return self.count(SlotOutcome.COLLISION)

    @property
    def silences(self) -> int:
        return self.count(SlotOutcome.SILENCE)

    def success_slots(self) -> list[int]:
        """Slot indices of all recorded successful transmissions."""
        return [record.slot for record in self.records if record.outcome is SlotOutcome.SUCCESS]

    def utilisation(self) -> float:
        """Fraction of recorded slots that delivered a message."""
        if not self.records:
            return 0.0
        return self.successes / len(self.records)

    def summary(self) -> dict[str, object]:
        """Return aggregate counts as a JSON-friendly dictionary."""
        return {
            "slots": len(self.records),
            "successes": self.successes,
            "collisions": self.collisions,
            "silences": self.silences,
            "utilisation": self.utilisation(),
        }

    def format(self, limit: int = 50) -> str:
        """Render the first ``limit`` records as an aligned text block."""
        lines = ["slot  active  transmitters  outcome"]
        for record in self.records[:limit]:
            lines.append(
                f"{record.slot:>4}  {record.active_before:>6}  "
                f"{record.transmitters:>12}  {record.outcome.value}"
            )
        if len(self.records) > limit:
            lines.append(f"... ({len(self.records) - limit} more slots)")
        return "\n".join(lines)
