"""Message-arrival processes.

Static k-selection — the problem the paper analyses and simulates — assumes
*batched* arrivals: all k messages arrive simultaneously at slot 0
(:class:`BatchArrival`).  The paper's conclusions single out the *dynamic*
version of the problem, where messages arrive over time under statistical or
adversarial processes, as the main open direction; :class:`PoissonArrival` and
:class:`BurstyArrival` implement the two canonical instances of that setting
so the protocols can also be exercised beyond the paper's experiments (see
``examples/dynamic_arrivals.py`` and ``benchmarks/bench_dynamic.py``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.util.validation import check_positive, check_positive_int

__all__ = [
    "ArrivalEvent",
    "ArrivalProcess",
    "BatchArrival",
    "PoissonArrival",
    "BurstyArrival",
    "register_arrival",
    "get_arrival_class",
    "available_arrivals",
    "build_arrivals",
]

_ARRIVAL_REGISTRY: dict[str, type["ArrivalProcess"]] = {}


def register_arrival(cls: type["ArrivalProcess"]) -> type["ArrivalProcess"]:
    """Class decorator adding an arrival process to the spec-string registry.

    Mirrors :func:`repro.protocols.base.register_protocol`: processes declare
    a ``spec_name`` class attribute and become addressable by spec strings
    like ``"poisson(rate=0.2)"`` (see :func:`build_arrivals`).
    """
    name = cls.spec_name
    if not name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'spec_name'")
    existing = _ARRIVAL_REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"arrival name {name!r} already registered by {existing.__name__}")
    _ARRIVAL_REGISTRY[name] = cls
    return cls


def get_arrival_class(name: str) -> type["ArrivalProcess"]:
    """Look up a registered arrival-process class by spec name."""
    try:
        return _ARRIVAL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_ARRIVAL_REGISTRY)) or "<none>"
        raise KeyError(f"unknown arrival process {name!r}; registered: {known}") from None


def available_arrivals() -> list[str]:
    """Return the sorted spec names of all registered arrival processes."""
    return sorted(_ARRIVAL_REGISTRY)


def build_arrivals(spec: str, k: int) -> "ArrivalProcess | None":
    """Build the arrival process described by a spec string, for ``k`` messages.

    ``"batch"`` — the paper's static k-selection — returns ``None``, the
    static default of :func:`repro.engine.dispatch.simulate` (so the cheap
    fair/window/batch reductions stay eligible); every other spec returns a
    process injecting exactly ``k`` messages, e.g. ``"poisson(rate=0.2)"`` or
    ``"bursty(bursts=4,gap=100)"``.
    """
    from repro.scenarios.spec import parse_spec

    name, params = parse_spec(spec)
    cls = get_arrival_class(name)
    try:
        process = cls.from_spec(k, **params)
    except TypeError as error:
        raise ValueError(f"cannot build arrival process from spec {spec!r}: {error}") from error
    if isinstance(process, BatchArrival):
        return None
    if process.total_messages != k:
        raise ValueError(
            f"arrival spec {spec!r} injects {process.total_messages} messages, "
            f"which disagrees with k={k}"
        )
    return process


@dataclass(frozen=True)
class ArrivalEvent:
    """One message arrival: ``count`` messages arrive at ``slot``."""

    slot: int
    count: int

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ValueError(f"slot must be non-negative, got {self.slot}")
        if self.count <= 0:
            raise ValueError(f"count must be positive, got {self.count}")


class ArrivalProcess(abc.ABC):
    """Generates the arrival schedule for one simulation run."""

    #: Registry spec name; subclasses must override to be registrable.
    spec_name: ClassVar[str] = ""

    @classmethod
    def from_spec(cls, k: int, **params: object) -> "ArrivalProcess":
        """Instantiate from spec-string parameters for ``k`` total messages.

        The default forwards ``k`` plus the parameters to the constructor;
        processes whose constructor does not take a plain ``k`` (bursty
        arrivals) override this to derive their shape from ``k``.
        """
        return cls(k=k, **params)  # type: ignore[call-arg]

    @abc.abstractmethod
    def events(self, rng: np.random.Generator) -> list[ArrivalEvent]:
        """Return the (finite) list of arrival events, ordered by slot."""

    @property
    @abc.abstractmethod
    def total_messages(self) -> int:
        """Total number of messages the process will inject (its ``k``)."""

    def describe(self) -> dict[str, object]:
        """JSON-friendly description, used by experiment metadata."""
        params = {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and isinstance(value, (int, float, str, bool))
        }
        return {"type": type(self).__name__, "parameters": params}


@register_arrival
class BatchArrival(ArrivalProcess):
    """All ``k`` messages arrive simultaneously at slot 0 (static k-selection)."""

    spec_name: ClassVar[str] = "batch"

    def __init__(self, k: int) -> None:
        self.k = check_positive_int("k", k)

    def events(self, rng: np.random.Generator) -> list[ArrivalEvent]:
        return [ArrivalEvent(slot=0, count=self.k)]

    @property
    def total_messages(self) -> int:
        return self.k


@register_arrival
class PoissonArrival(ArrivalProcess):
    """Messages arrive one by one, with independent exponential gaps.

    The process injects exactly ``k`` messages; the gap between consecutive
    arrivals is geometric with mean ``1/rate`` slots (the discrete-time
    analogue of a Poisson process with intensity ``rate`` messages per slot).
    The first message arrives at slot 0 so every run has work to do from the
    start.
    """

    spec_name: ClassVar[str] = "poisson"

    def __init__(self, k: int, rate: float) -> None:
        self.k = check_positive_int("k", k)
        self.rate = check_positive("rate", rate)
        if self.rate > 1:
            raise ValueError(f"rate is per-slot and must be <= 1, got {rate}")

    def events(self, rng: np.random.Generator) -> list[ArrivalEvent]:
        events: list[ArrivalEvent] = [ArrivalEvent(slot=0, count=1)]
        slot = 0
        for _ in range(self.k - 1):
            gap = int(rng.geometric(self.rate))
            slot += max(gap, 1)
            events.append(ArrivalEvent(slot=slot, count=1))
        return events

    @property
    def total_messages(self) -> int:
        return self.k


@register_arrival
class BurstyArrival(ArrivalProcess):
    """Adversarial-style bursts: ``burst_size`` messages every ``gap`` slots.

    This is the worst-case arrival pattern the paper's introduction cites as
    frequent in practice (batched/bursty traffic): contention arrives in
    lumps rather than smoothly.
    """

    spec_name: ClassVar[str] = "bursty"

    @classmethod
    def from_spec(
        cls,
        k: int,
        bursts: int = 4,
        burst_size: int | None = None,
        gap: int | None = None,
    ) -> "BurstyArrival":
        """Derive the burst shape from ``k``: ``k`` split into ``bursts`` batches.

        ``burst_size`` defaults to ``k / bursts`` (``k`` must then be a
        positive multiple of ``bursts``); ``gap`` defaults to ``k`` slots.
        """
        if bursts < 1:
            raise ValueError(f"bursts must be positive, got {bursts}")
        if burst_size is None:
            burst_size, leftover = divmod(k, bursts)
            if burst_size < 1 or leftover:
                raise ValueError(f"k={k} must be a positive multiple of bursts={bursts}")
        return cls(bursts=bursts, burst_size=burst_size, gap=gap if gap is not None else k)

    def __init__(self, bursts: int, burst_size: int, gap: int) -> None:
        self.bursts = check_positive_int("bursts", bursts)
        self.burst_size = check_positive_int("burst_size", burst_size)
        self.gap = check_positive_int("gap", gap)

    def events(self, rng: np.random.Generator) -> list[ArrivalEvent]:
        return [
            ArrivalEvent(slot=index * self.gap, count=self.burst_size)
            for index in range(self.bursts)
        ]

    @property
    def total_messages(self) -> int:
        return self.bursts * self.burst_size
