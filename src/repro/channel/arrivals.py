"""Message-arrival processes.

Static k-selection — the problem the paper analyses and simulates — assumes
*batched* arrivals: all k messages arrive simultaneously at slot 0
(:class:`BatchArrival`).  The paper's conclusions single out the *dynamic*
version of the problem, where messages arrive over time under statistical or
adversarial processes, as the main open direction; :class:`PoissonArrival` and
:class:`BurstyArrival` implement the two canonical instances of that setting
so the protocols can also be exercised beyond the paper's experiments (see
``examples/dynamic_arrivals.py`` and ``benchmarks/bench_dynamic.py``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive, check_positive_int

__all__ = [
    "ArrivalEvent",
    "ArrivalProcess",
    "BatchArrival",
    "PoissonArrival",
    "BurstyArrival",
]


@dataclass(frozen=True)
class ArrivalEvent:
    """One message arrival: ``count`` messages arrive at ``slot``."""

    slot: int
    count: int

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ValueError(f"slot must be non-negative, got {self.slot}")
        if self.count <= 0:
            raise ValueError(f"count must be positive, got {self.count}")


class ArrivalProcess(abc.ABC):
    """Generates the arrival schedule for one simulation run."""

    @abc.abstractmethod
    def events(self, rng: np.random.Generator) -> list[ArrivalEvent]:
        """Return the (finite) list of arrival events, ordered by slot."""

    @property
    @abc.abstractmethod
    def total_messages(self) -> int:
        """Total number of messages the process will inject (its ``k``)."""

    def describe(self) -> dict[str, object]:
        """JSON-friendly description, used by experiment metadata."""
        params = {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and isinstance(value, (int, float, str, bool))
        }
        return {"type": type(self).__name__, "parameters": params}


class BatchArrival(ArrivalProcess):
    """All ``k`` messages arrive simultaneously at slot 0 (static k-selection)."""

    def __init__(self, k: int) -> None:
        self.k = check_positive_int("k", k)

    def events(self, rng: np.random.Generator) -> list[ArrivalEvent]:
        return [ArrivalEvent(slot=0, count=self.k)]

    @property
    def total_messages(self) -> int:
        return self.k


class PoissonArrival(ArrivalProcess):
    """Messages arrive one by one, with independent exponential gaps.

    The process injects exactly ``k`` messages; the gap between consecutive
    arrivals is geometric with mean ``1/rate`` slots (the discrete-time
    analogue of a Poisson process with intensity ``rate`` messages per slot).
    The first message arrives at slot 0 so every run has work to do from the
    start.
    """

    def __init__(self, k: int, rate: float) -> None:
        self.k = check_positive_int("k", k)
        self.rate = check_positive("rate", rate)
        if self.rate > 1:
            raise ValueError(f"rate is per-slot and must be <= 1, got {rate}")

    def events(self, rng: np.random.Generator) -> list[ArrivalEvent]:
        events: list[ArrivalEvent] = [ArrivalEvent(slot=0, count=1)]
        slot = 0
        for _ in range(self.k - 1):
            gap = int(rng.geometric(self.rate))
            slot += max(gap, 1)
            events.append(ArrivalEvent(slot=slot, count=1))
        return events

    @property
    def total_messages(self) -> int:
        return self.k


class BurstyArrival(ArrivalProcess):
    """Adversarial-style bursts: ``burst_size`` messages every ``gap`` slots.

    This is the worst-case arrival pattern the paper's introduction cites as
    frequent in practice (batched/bursty traffic): contention arrives in
    lumps rather than smoothly.
    """

    def __init__(self, bursts: int, burst_size: int, gap: int) -> None:
        self.bursts = check_positive_int("bursts", bursts)
        self.burst_size = check_positive_int("burst_size", burst_size)
        self.gap = check_positive_int("gap", gap)

    def events(self, rng: np.random.Generator) -> list[ArrivalEvent]:
        return [
            ArrivalEvent(slot=index * self.gap, count=self.burst_size)
            for index in range(self.bursts)
        ]

    @property
    def total_messages(self) -> int:
        return self.bursts * self.burst_size
