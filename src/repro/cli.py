"""Unified command-line interface: ``python -m repro <command>``.

Subcommands:

* ``simulate``  — run one protocol on one network size and print the result;
  ``--arrivals`` accepts an arrival spec string (``poisson(rate=0.2)``,
  ``bursty(bursts=4,gap=100)``) or a bare registry name tuned by ``--rate``,
  ``--bursts``, ``--gap``; ``--json`` emits a machine-readable result;
* ``run``       — execute a declarative scenario (a compact spec string or a
  ``.toml``/``.json`` scenario file) through a
  :class:`~repro.scenarios.session.Session`, optionally backed by a
  persistent ``--store`` (a JSONL directory, or a store spec like
  ``sqlite:results.db``) that serves completed replications on re-run;
* ``serve``     — run the simulation service (:mod:`repro.service`): a
  threaded HTTP/JSON server with a dedup'ing FIFO job queue over one shared
  session;
* ``submit``    — submit a scenario to a running service (``--url``) instead
  of simulating locally; waits for completion and prints the result;
* ``store``     — inspect and manage result stores: ``repro store <spec>``
  lists the scenarios on record, ``repro store migrate <src> <dst>`` copies
  missing replications between any two backends (or a running service URL)
  via :func:`repro.scenarios.federation.sync`, and ``repro store compact
  <spec>`` reclaims space and removes lock litter;
* ``trace``     — summarise a span trace log (:mod:`repro.obs`): per-stage
  latency breakdown and the slowest traces, from the ``trace.jsonl`` the
  service writes next to its store;
* ``figure1``   — reproduce Figure 1 (delegates to
  :mod:`repro.experiments.figure1`);
* ``table1``    — reproduce Table 1 (delegates to
  :mod:`repro.experiments.table1`);
* ``dynamic``   — the dynamic-arrivals experiment (delegates to
  :mod:`repro.experiments.dynamic`);
* ``protocols`` — list the registered protocols and the knowledge they need;
* ``lint``      — run the invariant checker (:mod:`repro.analysis`) over the
  source tree: seeded-randomness discipline, monotonic-clock discipline,
  lock discipline, exception hygiene and registry contracts; exits non-zero
  on findings so it can gate CI.

The figure/table/dynamic subcommands accept the same flags as their
``python -m`` counterparts (``--max-k``, ``--runs``, ``--seed``,
``--workers``, ``--store``, ``--output-dir``, ``--quiet``).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Callable, Sequence
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.wire import JobStatus

from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.registry import available_engines
from repro.protocols.base import available_protocols, get_protocol_class
from repro.scenarios.scenario import Scenario
from repro.scenarios.session import ResultSet, Session
from repro.scenarios.spec import SpecError, format_spec
from repro.util.tables import format_text_table

__all__ = ["main"]


def _protocol_spec(name: str, delta: float | None = None, xi_t: float = 0.5) -> str:
    """Assemble the protocol spec string selected by the simulate flags.

    Mirrors the historical flag routing: ``--delta`` parameterises the two
    protocols that take a δ (One-fail Adaptive, Exp Back-on/Back-off) and is
    ignored elsewhere; ``--xi-t`` parameterises Log-fails Adaptive only.
    """
    cls = get_protocol_class(name)  # fail early on unknown names
    params: dict[str, object] = {}
    if delta is not None and cls.name in ("one-fail-adaptive", "exp-backon-backoff"):
        params["delta"] = delta
    if cls.name == "log-fails-adaptive":
        params["xi_t"] = xi_t
    return format_spec(name, params)


def _arrivals_spec(kind: str, rate: float, bursts: int, gap: int | None) -> str:
    """Assemble the arrival spec string selected by the simulate flags.

    A ``kind`` that already carries parameters (``"poisson(rate=0.5)"``) is
    passed through untouched; a bare registry name picks its parameters from
    the dedicated flags.
    """
    if "(" in kind:
        return kind
    if kind == "poisson":
        return format_spec(kind, {"rate": rate})
    if kind == "bursty":
        params: dict[str, object] = {"bursts": bursts}
        if gap is not None:
            params["gap"] = gap
        return format_spec(kind, params)
    return kind


def _print_result_set(result_set: ResultSet) -> None:
    """Human-readable summary of a scenario execution."""
    scenario = result_set.scenario
    rows: list[list[object]] = [
        ["scenario", result_set.scenario.format()],
        ["hash", result_set.scenario_hash],
        ["engine", result_set.engine_used],
        ["replications", scenario.replications],
        ["new runs", result_set.new_runs],
        ["cached runs", result_set.cached_runs],
        ["solved", f"{len(result_set.solved_results)}/{scenario.replications}"],
    ]
    if result_set.makespans:
        rows.append(["mean makespan (slots)", f"{result_set.mean_makespan:.1f}"])
        rows.append(["mean steps per node", f"{result_set.mean_ratio:.3f}"])
    rows.append(["elapsed (s)", f"{result_set.elapsed_seconds:.3f}"])
    print(format_text_table(["metric", "value"], rows))


def _scenario_error(error: Exception) -> int:
    """Report a bad scenario/spec as a one-line CLI error (exit code 2)."""
    message = error.args[0] if error.args else error
    print(f"repro: error: {message}", file=sys.stderr)
    return 2


def _cmd_simulate(args: argparse.Namespace) -> int:
    try:
        scenario = Scenario(
            protocol=_protocol_spec(args.protocol, delta=args.delta, xi_t=args.xi_t),
            k=args.k,
            arrivals=_arrivals_spec(args.arrivals, rate=args.rate, bursts=args.bursts, gap=args.gap),
            engine=args.engine,
            replications=1,
            seed=args.seed,
            seed_policy="sequential",  # replication 0 runs with exactly --seed
        )
    except (SpecError, KeyError) as error:
        return _scenario_error(error)
    # batch=False keeps the historical single-run semantics: "auto" picks the
    # cheapest per-run engine; the batch engine still serves --engine batch.
    result_set = Session(batch=False).run(scenario)
    result = result_set.results[0]
    if args.json:
        payload = result.to_dict()
        payload["scenario"] = scenario.format()
        payload["scenario_hash"] = result_set.scenario_hash
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if result.solved else 1
    protocol = scenario.build_protocol()
    rows = [
        ["protocol", protocol.label],
        ["k", args.k],
        ["seed", args.seed],
        ["engine", result.engine],
        ["arrivals", result.metadata.get("arrivals", "BatchArrival")],
        ["scenario hash", result_set.scenario_hash],
        ["solved", result.solved],
        ["makespan (slots)", result.makespan if result.makespan is not None else "-"],
        ["steps per node", f"{result.steps_per_node:.3f}" if result.solved else "-"],
        ["collisions", result.collisions],
        ["silent slots", result.silences],
    ]
    latencies = result.metadata.get("latencies")
    if latencies:
        rows.append(["mean latency (slots)", f"{sum(latencies) / len(latencies):.1f}"])
    print(format_text_table(["metric", "value"], rows))
    return 0 if result.solved else 1


def _load_scenario(args: argparse.Namespace) -> Scenario:
    """Resolve the scenario argument shared by ``run`` and ``submit``.

    The positional is a compact spec string or a ``.toml``/``.json`` file
    path; ``--replications``/``--seed`` override the loaded values.
    """
    text = args.scenario
    path = Path(text)
    if path.suffix.lower() in (".toml", ".json") or path.is_file():
        scenario = Scenario.from_file(path)
    else:
        scenario = Scenario.parse(text)
    overrides: dict[str, object] = {}
    if args.replications is not None:
        overrides["replications"] = args.replications
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        scenario = scenario.replace(**overrides)
    return scenario


def _cmd_run(args: argparse.Namespace) -> int:
    # `run` is a new subcommand with no legacy error contract, so every
    # scenario-level failure — bad spec, unknown registry name, missing file,
    # invalid parameter — reports as a one-line CLI error, not a traceback.
    try:
        scenario = _load_scenario(args)
        session = Session(store_dir=args.store, workers=args.workers, batch=args.batch)
        result_set = session.run(scenario)
    except (SpecError, KeyError, ValueError, OSError) as error:
        return _scenario_error(error)
    if args.json:
        print(json.dumps(result_set.to_dict(), indent=2, sort_keys=True))
    else:
        _print_result_set(result_set)
    return 0 if result_set.all_solved else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve

    try:
        return serve(
            host=args.host,
            port=args.port,
            store_dir=args.store,
            workers=args.workers,
            job_workers=args.job_workers,
            batch=args.batch,
            quiet=args.quiet,
            max_queue=args.max_queue,
            obs=args.obs,
        )
    except OSError as error:  # e.g. port already in use, privileged port
        return _scenario_error(error)


def _submit_progress_printer() -> Callable[[JobStatus], None]:
    """Progress callback for ``submit --wait``: one stderr line per change.

    Lines go to stderr so stdout stays exactly the result table (or the
    ``--json`` payload, which skips progress entirely).
    """

    def on_progress(status: JobStatus) -> None:
        print(
            f"repro: job {status.id}: {status.state} "
            f"{status.done}/{status.total} replication(s)",
            file=sys.stderr,
        )

    return on_progress


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError
    from repro.service.wire import JOB_FAILED

    client = ServiceClient(args.url, timeout=args.timeout)
    if args.cancel is not None:
        try:
            payload = client.cancel(args.cancel)
        except ServiceError as error:
            print(f"repro: service error: {error}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            verb = "cancelled" if payload.get("cancelled") else "cancelling"
            print(f"job {args.cancel}: {verb}")
        return 0
    if args.scenario is None:
        print("repro: error: a scenario (or --cancel JOB_ID) is required", file=sys.stderr)
        return 2
    try:
        scenario = _load_scenario(args)
    except (SpecError, KeyError, ValueError, OSError) as error:
        return _scenario_error(error)
    try:
        status = client.submit(scenario, deadline=args.deadline)
        # The disposition flags are per-submission, not per-job: a later
        # status poll never carries them, so capture them now.
        cached, deduplicated = status.cached, status.deduplicated
        if not args.wait:
            payload = {
                "job_id": status.id,
                "hash": status.hash,
                "state": status.state,
                "cached": cached,
                "deduplicated": deduplicated,
            }
            if args.json:
                print(json.dumps(payload, indent=2, sort_keys=True))
            else:
                rows = [[key, value] for key, value in payload.items()]
                print(format_text_table(["field", "value"], rows))
            return 0
        if not status.finished:
            on_progress = None if args.json else _submit_progress_printer()
            status = client.wait(status.id, timeout=args.timeout, on_progress=on_progress)
        if status.state == JOB_FAILED:
            print(f"repro: job {status.id} failed: {status.error}", file=sys.stderr)
            return 1
        payload = client.result(status.hash)
    except ServiceError as error:
        print(f"repro: service error: {error}", file=sys.stderr)
        return 2
    if args.json:
        payload["cached"] = cached
        payload["deduplicated"] = deduplicated
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        rows = [
            ["scenario", payload["scenario_string"]],
            ["hash", payload["hash"]],
            ["job", f"{status.id} ({'cached' if cached else status.state})"],
            ["engine", payload["engine"]],
            ["new runs", payload["new_runs"]],
            ["cached runs", payload["cached_runs"]],
            ["solved", f"{payload['solved_runs']}/{len(payload['results'])}"],
        ]
        if payload.get("mean_makespan") is not None:
            rows.append(["mean makespan (slots)", f"{payload['mean_makespan']:.1f}"])
            rows.append(["mean steps per node", f"{payload['mean_steps_per_node']:.3f}"])
        rows.append(["elapsed (s)", f"{payload['elapsed_seconds']:.3f}"])
        print(format_text_table(["metric", "value"], rows))
    return 0 if payload["solved_runs"] == len(payload["results"]) else 1


def _store_spec_missing(spec: str) -> str | None:
    """For a read-only store command: the local path that must already exist.

    Returns the missing path, or ``None`` when the target exists (service
    URLs are always deferred to the request itself).
    """
    if spec.startswith(("http://", "https://")):
        return None
    from repro.scenarios.store import parse_store_spec

    _, location = parse_store_spec(spec)
    path = Path(location.partition("?")[0])
    return None if path.exists() else str(path)


def _cmd_store(args: argparse.Namespace) -> int:
    targets: list[str] = args.target
    if targets[0] == "migrate":
        return _store_migrate(targets[1:], json_output=args.json)
    if targets[0] == "compact":
        return _store_compact(targets[1:], json_output=args.json)
    if len(targets) != 1:
        print("repro: error: usage: repro store <spec> | migrate <src> <dst> | "
              "compact <spec>", file=sys.stderr)
        return 2
    return _store_list(targets[0], json_output=args.json)


def _store_list(spec: str, json_output: bool) -> int:
    from repro.scenarios.store import open_store

    missing = _store_spec_missing(spec)
    if missing is not None:
        print(f"repro: error: store directory {missing} does not exist", file=sys.stderr)
        return 2
    records = open_store(spec).summaries()
    if json_output:
        print(json.dumps([record.to_dict() for record in records], indent=2, sort_keys=True))
        return 0
    if not records:
        print(f"store {spec}: no scenarios on record")
        return 0
    rows = [
        [
            record.hash,
            record.scenario.format(),
            f"{record.replications_on_record}/{record.scenario.replications}",
            f"{record.solved_runs} ({record.solved_fraction:.0%})",
        ]
        for record in records
    ]
    print(format_text_table(["hash", "scenario", "reps on record", "solved"], rows))
    return 0


def _store_migrate(targets: list[str], json_output: bool) -> int:
    """``repro store migrate <src> <dst>``: federation sync + lock cleanup."""
    from repro.scenarios.federation import resolve_store, sync
    from repro.scenarios.store import JsonlStore
    from repro.service.reliability import RetryPolicy

    if len(targets) != 2:
        print("repro: error: usage: repro store migrate <src> <dst>", file=sys.stderr)
        return 2
    source, destination = targets
    missing = _store_spec_missing(source)
    if missing is not None:
        print(f"repro: error: store directory {missing} does not exist", file=sys.stderr)
        return 2
    try:
        report = sync(source, destination, retry=RetryPolicy())
    except Exception as error:  # noqa: BLE001 - surfaced as a one-line CLI error
        return _scenario_error(error)
    # Migration is an offline moment: clear accumulated lock-sidecar litter
    # on both local JSONL endpoints (unsafe only under live writers).
    for endpoint in (source, destination):
        store = resolve_store(endpoint)
        if isinstance(store, JsonlStore):
            store.clean_locks()
    if json_output:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"migrated {report.replications_copied} replication(s) across "
            f"{report.scenarios_copied} scenario(s) "
            f"({report.scenarios_examined} examined) "
            f"from {report.source} to {report.destination}"
        )
    if report.scenarios_failed:
        print(
            f"repro: warning: {report.scenarios_failed} scenario(s) failed to "
            "copy (sync is idempotent — rerun to resume with just those)",
            file=sys.stderr,
        )
        return 1
    return 0


def _store_compact(targets: list[str], json_output: bool) -> int:
    """``repro store compact <spec>``: reclaim space, drop lock litter."""
    from repro.scenarios.store import open_store

    if len(targets) != 1:
        print("repro: error: usage: repro store compact <spec>", file=sys.stderr)
        return 2
    missing = _store_spec_missing(targets[0])
    if missing is not None:
        print(f"repro: error: store directory {missing} does not exist", file=sys.stderr)
        return 2
    report = open_store(targets[0]).compact()
    if json_output:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"compacted {report.scenarios} scenario(s): "
            f"{report.records_dropped} stale record(s) dropped, "
            f"{report.lock_files_removed} lock file(s) removed, "
            f"{report.runs_evicted} run(s) evicted"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import read_trace, summarize_trace

    path = Path(args.file)
    if not path.is_file():
        print(f"repro: error: trace log {path} does not exist", file=sys.stderr)
        return 2
    events = read_trace(path)
    summary = summarize_trace(events)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    if not events:
        print(f"trace {path}: no events on record")
        return 0
    print(f"trace {path}: {summary['events']} event(s) across {summary['traces']} trace(s)")
    stage_rows = [
        [
            stage["stage"],
            stage["count"],
            f"{stage['total_s']:.4f}",
            f"{stage['mean_s']:.4f}",
            f"{stage['max_s']:.4f}",
        ]
        for stage in summary["stages"]
    ]
    print(format_text_table(["stage", "count", "total (s)", "mean (s)", "max (s)"], stage_rows))
    if summary["slowest"]:
        print()
        print("slowest traces:")
        slow_rows = [
            [
                entry["trace"],
                entry["root"],
                entry["spans"],
                f"{entry['dur_s']:.4f}",
                _format_attrs(entry.get("attrs", {})),
            ]
            for entry in summary["slowest"]
        ]
        print(
            format_text_table(
                ["trace", "root span", "spans", "duration (s)", "attrs"], slow_rows
            )
        )
    return 0


def _format_attrs(attrs: dict[str, object]) -> str:
    """Render span attrs as a compact ``k=v`` list for the trace table."""
    return " ".join(f"{key}={value}" for key, value in sorted(attrs.items())) or "-"


def _cmd_protocols(_: argparse.Namespace) -> int:
    rows = []
    for name in available_protocols():
        cls = get_protocol_class(name)
        knowledge = ", ".join(sorted(cls.requires_knowledge)) or "none"
        rows.append([name, cls.label, knowledge])
    print(format_text_table(["name", "label", "required knowledge"], rows))
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    from repro.experiments.figure1 import main as figure1_main

    return figure1_main(args.rest)


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import main as table1_main

    return table1_main(args.rest)


def _cmd_dynamic(args: argparse.Namespace) -> int:
    from repro.experiments.dynamic import main as dynamic_main

    return dynamic_main(args.rest)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.core import Baseline, available_rules, rule_class, run_lint

    if args.list_rules:
        rows = []
        for rule_id in available_rules():
            cls = rule_class(rule_id)
            rows.append([rule_id, cls.name, cls.description])
        print(format_text_table(["id", "name", "description"], rows))
        return 0

    paths = args.paths or ["src"]
    baseline_path = Path(args.baseline) if args.baseline else Path("lint_baseline.json")
    try:
        if args.write_baseline:
            report = run_lint(paths, rules=args.rule or None)
            Baseline.from_findings(report.findings).save(baseline_path)
            print(f"wrote {len(report.findings)} finding(s) to {baseline_path}")
            return 0
        report = run_lint(paths, rules=args.rule or None, baseline=baseline_path)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(report.to_json())
    else:
        for finding in report.findings:
            print(finding.format())
        summary = (
            f"{len(report.findings)} finding(s) in {report.files} file(s) "
            f"({len(report.rules)} rule(s)"
        )
        if report.suppressed:
            summary += f", {report.suppressed} suppressed"
        if report.baselined:
            summary += f", {report.baselined} baselined"
        print(summary + ")")
    return 0 if report.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Unbounded Contention Resolution in Multiple-Access Channels'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sim = subparsers.add_parser("simulate", help="run one static k-selection instance")
    sim.add_argument("--protocol", default=OneFailAdaptive.name, choices=available_protocols())
    sim.add_argument("--k", type=int, default=1_000, help="number of contenders")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--engine", default="auto", choices=available_engines())
    sim.add_argument("--delta", type=float, default=None, help="protocol delta (paper default if omitted)")
    sim.add_argument("--xi-t", dest="xi_t", type=float, default=0.5, help="xi_t for log-fails-adaptive")
    sim.add_argument(
        "--arrivals",
        default="batch",
        help="arrival spec string: a registry name (batch, poisson, bursty; batch = the "
        "paper's static k-selection) tuned by --rate/--bursts/--gap, or a parameterised "
        "spec like 'poisson(rate=0.2)'",
    )
    sim.add_argument("--rate", type=float, default=0.1, help="per-slot rate for --arrivals poisson")
    sim.add_argument("--bursts", type=int, default=4, help="number of bursts for --arrivals bursty")
    sim.add_argument(
        "--gap", type=int, default=None, help="slots between bursts for --arrivals bursty (default k)"
    )
    sim.add_argument("--json", action="store_true", help="print a machine-readable JSON result")
    sim.set_defaults(func=_cmd_simulate)

    run = subparsers.add_parser(
        "run",
        help="execute a declarative scenario (spec string or .toml/.json file)",
        description="Execute a scenario through a Session.  The scenario is either a "
        "compact spec string — e.g. \"one-fail-adaptive(delta=2.72) k=1000 reps=10 "
        "seed=7\" — or the path of a .toml/.json scenario file.  With --store, "
        "completed replications are persisted and served from the store on re-run "
        "(a repeated invocation reports 0 new runs).",
    )
    run.add_argument("scenario", help="scenario spec string or path to a .toml/.json file")
    run.add_argument(
        "--store",
        default=None,
        help="persistent result store: a directory (JSONL) or a backend spec "
        "like jsonl:dir / sqlite:results.db",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (0 = one per CPU); results are identical for any value",
    )
    run.add_argument(
        "--replications", "--reps", type=int, default=None, help="override the replication count"
    )
    run.add_argument("--seed", type=int, default=None, help="override the root seed")
    run.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="vectorise batch-eligible cells (--no-batch replays per-run streams)",
    )
    run.add_argument("--json", action="store_true", help="print the machine-readable result set")
    run.set_defaults(func=_cmd_run)

    serve = subparsers.add_parser(
        "serve",
        help="run the simulation service (threaded HTTP server + job queue)",
        description="Run the always-on simulation service: POST /scenarios to submit, "
        "GET /jobs/<id> for progress, GET /results/<hash> for completed payloads, "
        "GET /store for the store listing, GET /healthz for liveness.  With --store, "
        "completed scenarios are persisted and repeat submissions are answered "
        "synchronously from the store (cached: true, zero new simulations).",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765, help="listen port (0 = ephemeral)")
    serve.add_argument(
        "--store",
        default=None,
        help="persistent result store: a directory (JSONL) or a backend spec "
        "like jsonl:dir / sqlite:results.db (sqlite supports ?ttl=&max_rows= "
        "eviction for always-on servers)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="simulation worker processes per job (0 = one per CPU)",
    )
    serve.add_argument(
        "--job-workers", type=int, default=1, help="concurrently executing jobs (FIFO start order)"
    )
    serve.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="vectorise batch-eligible cells (--no-batch replays per-run streams)",
    )
    serve.add_argument("--quiet", action="store_true", help="suppress per-request log lines")
    serve.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="bound on accepted-but-unstarted jobs; a full queue answers "
        "503 + Retry-After instead of accepting unbounded work",
    )
    serve.add_argument(
        "--obs",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="metrics + span tracing (--no-obs freezes the counters "
        "and writes no trace log; GET /metrics still answers)",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = subparsers.add_parser(
        "submit",
        help="submit a scenario to a running service instead of simulating locally",
        description="Submit a scenario (compact spec string or .toml/.json file) to a "
        "repro service and print the result.  Identical concurrent submissions attach "
        "to one in-flight job; scenarios already on the server's store are answered "
        "without simulating.",
    )
    submit.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="scenario spec string or path to a .toml/.json file",
    )
    submit.add_argument(
        "--url", default="http://127.0.0.1:8765", help="service base URL (repro serve)"
    )
    submit.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-job wall-clock budget in seconds; the server cancels the "
        "job if it outlives this (completed replications stay stored)",
    )
    submit.add_argument(
        "--cancel",
        metavar="JOB_ID",
        default=None,
        help="cancel the given job instead of submitting (DELETE /jobs/<id>)",
    )
    submit.add_argument(
        "--replications", "--reps", type=int, default=None, help="override the replication count"
    )
    submit.add_argument("--seed", type=int, default=None, help="override the root seed")
    submit.add_argument(
        "--wait",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="wait for completion and print the result (--no-wait prints the job id)",
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0, help="seconds to wait for completion"
    )
    submit.add_argument("--json", action="store_true", help="print the machine-readable payload")
    submit.set_defaults(func=_cmd_submit)

    store = subparsers.add_parser(
        "store",
        help="inspect or manage a result store (list / migrate / compact)",
        description="Inspect and manage result stores.  'repro store <spec>' lists the "
        "scenarios on record with content hashes, replications and solved fractions; "
        "'repro store migrate <src> <dst>' copies the replications <dst> is missing "
        "from <src> (any backend spec or a running service URL, idempotent); "
        "'repro store compact <spec>' drops stale records, lock litter and evicted "
        "rows.  A spec is a directory (JSONL), jsonl:dir, sqlite:file.db, or for "
        "migrate an http(s):// service URL.",
    )
    store.add_argument(
        "target",
        nargs="+",
        help="store spec to list, or: migrate <src> <dst> | compact <spec>",
    )
    store.add_argument("--json", action="store_true", help="print machine-readable records")
    store.set_defaults(func=_cmd_store)

    trace = subparsers.add_parser(
        "trace",
        help="summarise a span trace log (per-stage latency, slowest traces)",
        description="Summarise the JSONL span trace log the service writes next to "
        "its store (trace.jsonl for a JSONL store, <file>.db.trace.jsonl for "
        "SQLite): per-stage latency breakdown sorted by total time, plus the "
        "slowest traces by root-span duration.  Torn lines are skipped, so the "
        "log of a live or crashed server reads fine.",
    )
    trace.add_argument("file", help="path to a trace JSONL file")
    trace.add_argument("--json", action="store_true", help="print the machine-readable summary")
    trace.set_defaults(func=_cmd_trace)

    protocols = subparsers.add_parser("protocols", help="list registered protocols")
    protocols.set_defaults(func=_cmd_protocols)

    lint = subparsers.add_parser(
        "lint",
        help="check the source tree against the repository invariants",
        description="Run the invariant checker over the source tree: seeded-randomness "
        "discipline (RND001), monotonic-clock discipline (CLK001), lock discipline "
        "(LCK001/LCK002), exception hygiene (EXC001-003), annotation coverage "
        "(ANN001/ANN002) and registry contracts (REG001-003).  Exits 0 when clean, "
        "1 on findings, 2 on usage errors.  Suppress a single line with "
        "'# repro: noqa[RULE-ID]'; grandfather existing findings with --write-baseline.",
    )
    lint.add_argument(
        "paths", nargs="*", help="files or directories to lint (default: src)"
    )
    lint.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        help="run only this rule id (repeatable; default: all rules)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    lint.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file of grandfathered findings (default: lint_baseline.json)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="list the registered rules and exit"
    )
    lint.set_defaults(func=_cmd_lint)

    figure1 = subparsers.add_parser("figure1", help="reproduce Figure 1 (forwards remaining flags)")
    figure1.add_argument("rest", nargs=argparse.REMAINDER)
    figure1.set_defaults(func=_cmd_figure1)

    table1 = subparsers.add_parser("table1", help="reproduce Table 1 (forwards remaining flags)")
    table1.add_argument("rest", nargs=argparse.REMAINDER)
    table1.set_defaults(func=_cmd_table1)

    dynamic = subparsers.add_parser(
        "dynamic", help="dynamic-arrivals experiment (forwards remaining flags)"
    )
    dynamic.add_argument("rest", nargs=argparse.REMAINDER)
    dynamic.set_defaults(func=_cmd_dynamic)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""
    arguments = list(argv) if argv is not None else sys.argv[1:]
    # The figure1/table1/dynamic subcommands forward *all* remaining flags to
    # the experiment scripts; argparse's REMAINDER does not reliably capture
    # leading optionals, so forward them before involving the parser.
    if arguments and arguments[0] in {"figure1", "table1", "dynamic"}:
        if arguments[0] == "figure1":
            from repro.experiments.figure1 import main as forwarded
        elif arguments[0] == "table1":
            from repro.experiments.table1 import main as forwarded
        else:
            from repro.experiments.dynamic import main as forwarded
        return forwarded(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
