"""Unified command-line interface: ``python -m repro <command>``.

Subcommands:

* ``simulate``  — run one protocol on one network size and print the result;
  ``--arrivals poisson|bursty`` runs the dynamic variant through the same
  front door (``--rate``, ``--bursts``, ``--gap`` tune the process);
* ``figure1``   — reproduce Figure 1 (delegates to
  :mod:`repro.experiments.figure1`);
* ``table1``    — reproduce Table 1 (delegates to
  :mod:`repro.experiments.table1`);
* ``dynamic``   — the dynamic-arrivals experiment (delegates to
  :mod:`repro.experiments.dynamic`);
* ``protocols`` — list the registered protocols and the knowledge they need.

The figure/table/dynamic subcommands accept the same flags as their
``python -m`` counterparts (``--max-k``, ``--runs``, ``--seed``,
``--workers``, ``--output-dir``, ``--quiet``).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.channel.arrivals import ArrivalProcess, BurstyArrival, PoissonArrival
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.dispatch import simulate
from repro.protocols.aloha import SlottedAloha
from repro.protocols.backoff import ExponentialBackoff, LogBackoff, LogLogIteratedBackoff, PolynomialBackoff
from repro.protocols.base import Protocol, available_protocols, get_protocol_class
from repro.protocols.log_fails_adaptive import LogFailsAdaptive
from repro.util.tables import format_text_table

__all__ = ["main", "build_protocol", "build_arrivals"]


def build_protocol(name: str, k: int, delta: float | None = None, xi_t: float = 0.5) -> Protocol:
    """Instantiate a registered protocol with sensible evaluation parameters.

    Protocols that require knowledge of the network (Log-fails Adaptive,
    slotted ALOHA) receive the paper's parameterisation for ``k``; the
    paper's own protocols ignore ``k`` entirely.
    """
    if name == OneFailAdaptive.name:
        return OneFailAdaptive(delta=delta) if delta is not None else OneFailAdaptive()
    if name == ExpBackonBackoff.name:
        return ExpBackonBackoff(delta=delta) if delta is not None else ExpBackonBackoff()
    if name == LogFailsAdaptive.name:
        return LogFailsAdaptive.for_k(k, xi_t=xi_t)
    if name == SlottedAloha.name:
        return SlottedAloha(k=k)
    if name in {
        LogLogIteratedBackoff.name,
        ExponentialBackoff.name,
        PolynomialBackoff.name,
        LogBackoff.name,
    }:
        return get_protocol_class(name)()
    # Fall back to a no-argument constructor for any other registered protocol.
    return get_protocol_class(name)()


def build_arrivals(
    kind: str,
    k: int,
    rate: float = 0.1,
    bursts: int = 4,
    gap: int | None = None,
) -> ArrivalProcess | None:
    """Build the arrival process selected by the ``--arrivals`` flag.

    ``"batch"`` returns ``None`` (the static default of :func:`simulate`);
    ``"poisson"`` injects ``k`` messages at ``rate`` per slot; ``"bursty"``
    splits ``k`` into ``bursts`` batches ``gap`` slots apart.
    """
    if kind == "batch":
        return None
    if kind == "poisson":
        return PoissonArrival(k=k, rate=rate)
    if kind == "bursty":
        if bursts < 1:
            raise ValueError(f"--bursts must be positive, got {bursts}")
        burst_size, leftover = divmod(k, bursts)
        if burst_size < 1 or leftover:
            raise ValueError(f"k={k} must be a positive multiple of --bursts={bursts}")
        return BurstyArrival(bursts=bursts, burst_size=burst_size, gap=gap if gap is not None else k)
    raise ValueError(f"unknown arrival process {kind!r}; choose from batch, poisson, bursty")


def _cmd_simulate(args: argparse.Namespace) -> int:
    protocol = build_protocol(args.protocol, k=args.k, delta=args.delta, xi_t=args.xi_t)
    arrivals = build_arrivals(
        args.arrivals, k=args.k, rate=args.rate, bursts=args.bursts, gap=args.gap
    )
    result = simulate(protocol, k=args.k, seed=args.seed, engine=args.engine, arrivals=arrivals)
    rows = [
        ["protocol", protocol.label],
        ["k", args.k],
        ["seed", args.seed],
        ["engine", result.engine],
        ["arrivals", result.metadata.get("arrivals", "BatchArrival")],
        ["solved", result.solved],
        ["makespan (slots)", result.makespan if result.makespan is not None else "-"],
        ["steps per node", f"{result.steps_per_node:.3f}" if result.solved else "-"],
        ["collisions", result.collisions],
        ["silent slots", result.silences],
    ]
    latencies = result.metadata.get("latencies")
    if latencies:
        rows.append(["mean latency (slots)", f"{sum(latencies) / len(latencies):.1f}"])
    print(format_text_table(["metric", "value"], rows))
    return 0 if result.solved else 1


def _cmd_protocols(_: argparse.Namespace) -> int:
    rows = []
    for name in available_protocols():
        cls = get_protocol_class(name)
        knowledge = ", ".join(sorted(cls.requires_knowledge)) or "none"
        rows.append([name, cls.label, knowledge])
    print(format_text_table(["name", "label", "required knowledge"], rows))
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    from repro.experiments.figure1 import main as figure1_main

    return figure1_main(args.rest)


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import main as table1_main

    return table1_main(args.rest)


def _cmd_dynamic(args: argparse.Namespace) -> int:
    from repro.experiments.dynamic import main as dynamic_main

    return dynamic_main(args.rest)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Unbounded Contention Resolution in Multiple-Access Channels'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sim = subparsers.add_parser("simulate", help="run one static k-selection instance")
    sim.add_argument("--protocol", default=OneFailAdaptive.name, choices=available_protocols())
    sim.add_argument("--k", type=int, default=1_000, help="number of contenders")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--engine", default="auto", choices=["auto", "fair", "window", "slot", "batch"])
    sim.add_argument("--delta", type=float, default=None, help="protocol delta (paper default if omitted)")
    sim.add_argument("--xi-t", dest="xi_t", type=float, default=0.5, help="xi_t for log-fails-adaptive")
    sim.add_argument(
        "--arrivals",
        default="batch",
        choices=["batch", "poisson", "bursty"],
        help="arrival process (batch = the paper's static k-selection)",
    )
    sim.add_argument("--rate", type=float, default=0.1, help="per-slot rate for --arrivals poisson")
    sim.add_argument("--bursts", type=int, default=4, help="number of bursts for --arrivals bursty")
    sim.add_argument(
        "--gap", type=int, default=None, help="slots between bursts for --arrivals bursty (default k)"
    )
    sim.set_defaults(func=_cmd_simulate)

    protocols = subparsers.add_parser("protocols", help="list registered protocols")
    protocols.set_defaults(func=_cmd_protocols)

    figure1 = subparsers.add_parser("figure1", help="reproduce Figure 1 (forwards remaining flags)")
    figure1.add_argument("rest", nargs=argparse.REMAINDER)
    figure1.set_defaults(func=_cmd_figure1)

    table1 = subparsers.add_parser("table1", help="reproduce Table 1 (forwards remaining flags)")
    table1.add_argument("rest", nargs=argparse.REMAINDER)
    table1.set_defaults(func=_cmd_table1)

    dynamic = subparsers.add_parser(
        "dynamic", help="dynamic-arrivals experiment (forwards remaining flags)"
    )
    dynamic.add_argument("rest", nargs=argparse.REMAINDER)
    dynamic.set_defaults(func=_cmd_dynamic)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""
    arguments = list(argv) if argv is not None else sys.argv[1:]
    # The figure1/table1/dynamic subcommands forward *all* remaining flags to
    # the experiment scripts; argparse's REMAINDER does not reliably capture
    # leading optionals, so forward them before involving the parser.
    if arguments and arguments[0] in {"figure1", "table1", "dynamic"}:
        if arguments[0] == "figure1":
            from repro.experiments.figure1 import main as forwarded
        elif arguments[0] == "table1":
            from repro.experiments.table1 import main as forwarded
        else:
            from repro.experiments.dynamic import main as forwarded
        return forwarded(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
