"""repro — Unbounded Contention Resolution in Multiple-Access Channels.

A faithful, tested reproduction of the protocols and evaluation of

    Antonio Fernández Anta, Miguel A. Mosteiro, Jorge Ramón Muñoz,
    "Unbounded Contention Resolution in Multiple-Access Channels",
    PODC 2011 (brief announcement); full version arXiv:1107.0234.

The library provides:

* the paper's two protocols — :class:`OneFailAdaptive` (Algorithm 1) and
  :class:`ExpBackonBackoff` (Algorithm 2) — which solve static k-selection on
  a single-hop radio network *without collision detection and without any
  knowledge of the number of contenders*;
* the baselines the paper compares against — :class:`LogFailsAdaptive`
  (reconstruction of reference [7]) and :class:`LogLogIteratedBackoff` plus
  the rest of the monotone back-off family of reference [2];
* the channel substrate (:mod:`repro.channel`) and five cross-validated
  simulation engines behind one capability registry (:mod:`repro.engine`);
* the analysis toolkit (:mod:`repro.analysis`, :mod:`repro.core.analysis`);
* the experiment harness regenerating Figure 1 and Table 1
  (:mod:`repro.experiments`); and
* the simulation service (:mod:`repro.service`) — ``repro serve`` — exposing
  the scenario front door over HTTP with a dedup'ing job queue and a
  persistent result store.

Quickstart::

    from repro import OneFailAdaptive, ExpBackonBackoff, simulate

    result = simulate(OneFailAdaptive(), k=10_000, seed=1)
    print(result.makespan, result.steps_per_node)   # ≈ 7.4 * k, ≈ 7.4
"""

from __future__ import annotations

from repro.channel import (
    BatchArrival,
    BurstyArrival,
    ChannelModel,
    ExecutionTrace,
    FeedbackModel,
    PoissonArrival,
    RadioNetwork,
    SlotOutcome,
    available_arrivals,
    available_channels,
    build_arrivals,
    build_channel,
)
from repro.core import ExpBackonBackoff, OneFailAdaptive
from repro.core import analysis as paper_analysis
from repro.engine import (
    BatchFairEngine,
    BatchWindowEngine,
    EngineCapabilities,
    FairEngine,
    SimulationResult,
    SlotEngine,
    WindowEngine,
    available_engines,
    batch_engine_for,
    compare_engines,
    engine_capabilities,
    simulate,
    simulate_batch,
)
from repro.experiments import (
    ExperimentConfig,
    paper_k_values,
    paper_protocol_suite,
    reproduce_figure1,
    reproduce_table1,
)
from repro.protocols import (
    BinarySplitting,
    ExponentialBackoff,
    LogBackoff,
    LogFailsAdaptive,
    LogLogIteratedBackoff,
    PolynomialBackoff,
    SlottedAloha,
    available_protocols,
    build_protocol,
    get_protocol_class,
)
from repro.scenarios import (
    JsonlStore,
    ResultSet,
    ResultStore,
    Scenario,
    Session,
    SqliteStore,
    StoreBackend,
    SyncReport,
    available_store_backends,
    open_store,
    sync_stores,
)
from repro.service import ServiceClient, ServiceError

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # protocols (paper)
    "OneFailAdaptive",
    "ExpBackonBackoff",
    # protocols (baselines / related work)
    "LogFailsAdaptive",
    "LogLogIteratedBackoff",
    "ExponentialBackoff",
    "PolynomialBackoff",
    "LogBackoff",
    "SlottedAloha",
    "BinarySplitting",
    "available_protocols",
    "get_protocol_class",
    "build_protocol",
    # channel substrate
    "ChannelModel",
    "FeedbackModel",
    "SlotOutcome",
    "RadioNetwork",
    "BatchArrival",
    "PoissonArrival",
    "BurstyArrival",
    "ExecutionTrace",
    "available_arrivals",
    "available_channels",
    "build_arrivals",
    "build_channel",
    # engines
    "simulate",
    "simulate_batch",
    "SimulationResult",
    "FairEngine",
    "WindowEngine",
    "SlotEngine",
    "BatchFairEngine",
    "BatchWindowEngine",
    "EngineCapabilities",
    "available_engines",
    "batch_engine_for",
    "engine_capabilities",
    "compare_engines",
    # scenarios (declarative front door)
    "Scenario",
    "Session",
    "ResultSet",
    # result stores & federation
    "StoreBackend",
    "JsonlStore",
    "SqliteStore",
    "ResultStore",
    "open_store",
    "available_store_backends",
    "sync_stores",
    "SyncReport",
    # simulation service
    "ServiceClient",
    "ServiceError",
    # analysis & experiments
    "paper_analysis",
    "ExperimentConfig",
    "paper_k_values",
    "paper_protocol_suite",
    "reproduce_figure1",
    "reproduce_table1",
]
