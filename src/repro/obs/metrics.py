"""Thread-safe, stdlib-only metrics primitives with Prometheus exposition.

The design mirrors the engine registry's idiom: a small, explicit registry of
named families plus get-or-create accessors, so any subsystem can say

    from repro.obs import REGISTRY

    SLOTS = REGISTRY.counter(
        "repro_engine_slots_total", "Channel slots simulated.", ("engine",)
    )
    SLOTS.labels(engine="batch").inc(out.slots)

without caring whether another module already created the family.  Three
instrument kinds are provided — :class:`Counter` (monotone), :class:`Gauge`
(settable, optionally backed by a live callback) and :class:`Histogram`
(cumulative buckets with ``_sum``/``_count``) — each of which fans out into
per-label-set children.

Two properties matter for correctness and are covered by tests:

* **Determinism** — :meth:`MetricsRegistry.render` emits families sorted by
  name and children sorted by label values, so the exposition text is stable
  for a given set of observations (histogram bucket lines are emitted in
  ascending ``le`` order, cumulative by construction).
* **Zero cost when disabled** — every mutating call checks one module-level
  boolean first; ``repro serve --no-obs`` and the overhead benchmark flip it
  via :func:`set_enabled`.

Everything synchronises on per-registry/per-child locks and is safe to call
from the service's worker threads and HTTP handler threads concurrently.
"""

from __future__ import annotations

import bisect
import math
import threading
from collections.abc import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "enabled",
    "set_enabled",
    "escape_label_value",
    "format_value",
]

# Seconds-scale buckets wide enough for both sub-millisecond cached hits and
# multi-second sweep attempts.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    float("inf"),
)

_enabled = True
_enabled_lock = threading.Lock()


def enabled() -> bool:
    """Return whether instrumentation is currently recording."""
    return _enabled


def set_enabled(value: bool) -> None:
    """Globally enable or disable metric recording (``--no-obs``)."""
    global _enabled
    with _enabled_lock:
        _enabled = bool(value)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if math.isnan(value):
        return "NaN"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(float(value))


def _label_suffix(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{escape_label_value(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _Child:
    """Base for per-label-set instrument children."""

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()


class CounterChild(_Child):
    """A single monotone counter series."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if not _enabled:
            return
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount!r})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class GaugeChild(_Child):
    """A single settable gauge series, optionally backed by a callback."""

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Source the gauge from ``fn()`` at scrape time (e.g. queue depth)."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            try:
                return float(fn())
            except Exception:  # noqa: BLE001 - a broken probe must not break scrapes
                return float("nan")
        return self._value


class HistogramChild(_Child):
    """A single histogram series: cumulative buckets plus sum and count."""

    __slots__ = ("buckets", "_bucket_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float]) -> None:
        super().__init__()
        self.buckets = tuple(buckets)
        self._bucket_counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        # First bucket with value <= bound (the +Inf tail bound catches all);
        # per-bucket counts — snapshot() cumulates.  bisect keeps this O(log
        # buckets) in C, cheap enough for per-request call sites.
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._sum += value
            self._count += 1
            self._bucket_counts[index] += 1

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            cumulative: list[int] = []
            running = 0
            for n in self._bucket_counts:
                running += n
                cumulative.append(running)
            return {
                "buckets": dict(zip(self.buckets, cumulative)),
                "sum": self._sum,
                "count": self._count,
            }


class _Family:
    """A named metric family fanning out into per-label-set children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _make_child(self) -> object:
        raise NotImplementedError

    def _child(self, labelvalues: tuple[str, ...]) -> object:
        with self._lock:
            child = self._children.get(labelvalues)
            if child is None:
                child = self._make_child()
                self._children[labelvalues] = child
            return child

    def _resolve(self, args: Sequence[str], kwargs: Mapping[str, str]) -> tuple[str, ...]:
        if args and kwargs:
            raise ValueError("pass label values positionally or by name, not both")
        if kwargs:
            try:
                values = tuple(str(kwargs[name]) for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"metric {self.name!r} takes labels {self.labelnames}; missing {exc}"
                ) from None
            if len(kwargs) != len(self.labelnames):
                extra = set(kwargs) - set(self.labelnames)
                raise ValueError(f"metric {self.name!r} got unexpected labels {sorted(extra)}")
            return values
        values = tuple(str(v) for v in args)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes {len(self.labelnames)} label values "
                f"{self.labelnames}; got {len(values)}"
            )
        return values

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())


class Counter(_Family):
    """Monotonically increasing counter family."""

    kind = "counter"

    def _make_child(self) -> CounterChild:
        return CounterChild()

    def labels(self, *args: str, **kwargs: str) -> CounterChild:
        return self._child(self._resolve(args, kwargs))  # type: ignore[return-value]

    def inc(self, amount: float = 1.0) -> None:
        """Shorthand for the unlabelled child (labelnames must be empty)."""
        self.labels().inc(amount)


class Gauge(_Family):
    """Settable gauge family."""

    kind = "gauge"

    def _make_child(self) -> GaugeChild:
        return GaugeChild()

    def labels(self, *args: str, **kwargs: str) -> GaugeChild:
        return self._child(self._resolve(args, kwargs))  # type: ignore[return-value]

    def set(self, value: float) -> None:
        self.labels().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self.labels().set_function(fn)


class Histogram(_Family):
    """Histogram family with fixed buckets shared by all children."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        cleaned = [float(b) for b in buckets]
        if cleaned != sorted(cleaned):
            raise ValueError(f"histogram buckets must be sorted; got {buckets!r}")
        if not cleaned or cleaned[-1] != math.inf:
            cleaned.append(math.inf)
        self.buckets = tuple(cleaned)

    def _make_child(self) -> HistogramChild:
        return HistogramChild(self.buckets)

    def labels(self, *args: str, **kwargs: str) -> HistogramChild:
        return self._child(self._resolve(args, kwargs))  # type: ignore[return-value]

    def observe(self, value: float) -> None:
        self.labels().observe(value)


class MetricsRegistry:
    """Get-or-create registry of metric families.

    ``counter``/``gauge``/``histogram`` return the existing family when one
    with the same name is already registered (validating that the kind and
    label names agree), so instrumentation points in different modules can
    share a family without import-order coupling.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls: type, name: str, help: str, labelnames: Sequence[str], **kwargs: object) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"not {cls.kind}"  # type: ignore[attr-defined]
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {tuple(labelnames)}"
                    )
                return existing
            family = cls(name, help, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)  # type: ignore[return-value]

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def reset(self) -> None:
        """Drop every family (tests and benchmark harnesses only)."""
        with self._lock:
            self._families.clear()

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Return all families and children as a plain nested dict."""
        out: dict[str, dict[str, object]] = {}
        for family in self.families():
            series: dict[str, object] = {}
            for labelvalues, child in family.children():
                key = _label_suffix(family.labelnames, labelvalues) or ""
                if isinstance(child, HistogramChild):
                    snap = child.snapshot()
                    series[key] = {
                        "sum": snap["sum"],
                        "count": snap["count"],
                        "buckets": {
                            format_value(bound): count
                            for bound, count in snap["buckets"].items()  # type: ignore[union-attr]
                        },
                    }
                else:
                    series[key] = child.value  # type: ignore[union-attr]
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def render(self) -> str:
        """Render the registry in the Prometheus text exposition format."""
        lines: list[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labelvalues, child in family.children():
                if isinstance(child, HistogramChild):
                    snap = child.snapshot()
                    for bound, count in snap["buckets"].items():  # type: ignore[union-attr]
                        le_values = labelvalues + (format_value(bound),)
                        suffix = _label_suffix(
                            family.labelnames + ("le",), le_values
                        )
                        lines.append(f"{family.name}_bucket{suffix} {count}")
                    suffix = _label_suffix(family.labelnames, labelvalues)
                    lines.append(
                        f"{family.name}_sum{suffix} {format_value(snap['sum'])}"  # type: ignore[arg-type]
                    )
                    lines.append(f"{family.name}_count{suffix} {snap['count']}")
                else:
                    suffix = _label_suffix(family.labelnames, labelvalues)
                    value = child.value  # type: ignore[union-attr]
                    lines.append(f"{family.name}{suffix} {format_value(value)}")
        return "\n".join(lines) + "\n"


#: Process-wide default registry.  Instrumentation throughout the codebase
#: hangs families off this instance; ``GET /metrics`` renders it.
REGISTRY = MetricsRegistry()
