"""Lightweight span tracing with trace-id propagation and JSONL export.

A *trace* follows one logical request (typically a job submitted over HTTP)
through every layer it touches: HTTP handler → ``JobManager`` submit /
queue-wait / attempt → ``Session`` plan → engine run → store append.  Each
layer wraps its work in a :func:`span` context manager; spans nest via a
:class:`contextvars.ContextVar`, so the current trace and parent span follow
the call stack automatically *within* a thread.

Threads do not share context: the service's worker threads adopt a request's
trace explicitly — the HTTP handler stamps ``job.trace_id`` at submit time and
the worker enters :func:`trace_context` around the attempt.  That one explicit
hand-off is the entire cross-thread story.

Finished spans are appended to a :class:`TraceLog` — line-buffered JSONL next
to the job journal (see :func:`trace_log_for_store`), torn-line tolerant on
read exactly like the journal and the JSONL store: a crash mid-write costs at
most the final line.  When no sink is configured (the default for library
use), spans still nest and propagate ids but write nothing, and the fast-path
cost is one ContextVar read.

Span durations come from ``time.monotonic`` (wall-clock timestamps are
metadata only), and ids are 64-bit hex from ``os.urandom`` — independent of
the seeded simulation RNG streams, so tracing can never perturb determinism.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.scenarios.store import StoreBackend

__all__ = [
    "SpanEvent",
    "TraceLog",
    "configure_tracing",
    "current_span_id",
    "current_trace_id",
    "new_trace_id",
    "read_trace",
    "span",
    "summarize_trace",
    "trace_context",
    "trace_log_for_store",
    "tracing_sink",
]

#: (trace_id, span_id) of the innermost open span, or ``None`` outside one.
_current: contextvars.ContextVar[tuple[str, str] | None] = contextvars.ContextVar(
    "repro_trace", default=None
)

_sink: "TraceLog | None" = None
_sink_lock = threading.Lock()


def new_trace_id() -> str:
    """Return a fresh 64-bit hex trace id (not derived from simulation RNG)."""
    return os.urandom(8).hex()


def current_trace_id() -> str | None:
    """The trace id of the innermost open span/context, or ``None``."""
    ctx = _current.get()
    return ctx[0] if ctx is not None else None


def current_span_id() -> str | None:
    """The span id of the innermost open span, or ``None``."""
    ctx = _current.get()
    return ctx[1] if ctx is not None else None


def configure_tracing(path: "str | Path | None") -> "TraceLog | None":
    """Install (or clear, with ``None``) the process-wide trace sink."""
    global _sink
    with _sink_lock:
        _sink = TraceLog(path) if path is not None else None
        return _sink


def tracing_sink() -> "TraceLog | None":
    """The currently installed trace sink, if any."""
    return _sink


@contextmanager
def trace_context(trace_id: str | None) -> Iterator[None]:
    """Adopt ``trace_id`` as the current trace (cross-thread hand-off).

    Used by worker threads to continue a trace started in another thread:
    the handler stamps the id on the job, the worker wraps the attempt in
    ``trace_context(job.trace_id)``.  A ``None`` id is a no-op so call sites
    need no conditionals.
    """
    if trace_id is None:
        yield
        return
    token = _current.set((trace_id, ""))
    try:
        yield
    finally:
        _current.reset(token)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[dict[str, Any]]:
    """Record a named span around a block of work.

    Opens a child of the current span (starting a new trace when there is
    none), yields the span's attribute dict — callers may add attributes
    mid-flight (``sp["cached"] = True``) — and on exit appends one JSONL
    event to the configured sink.  Exceptions propagate; the span records
    the exception type in ``error`` before re-raising.
    """
    parent = _current.get()
    trace_id = parent[0] if parent is not None else new_trace_id()
    span_id = os.urandom(8).hex()
    token = _current.set((trace_id, span_id))
    payload: dict[str, Any] = dict(attrs)
    started = time.monotonic()
    started_at = time.time()  # repro: noqa[CLK001] - wall-clock metadata
    try:
        yield payload
    except BaseException as exc:
        payload.setdefault("error", type(exc).__name__)
        raise
    finally:
        _current.reset(token)
        sink = _sink
        if sink is not None:
            sink.append(
                SpanEvent(
                    trace=trace_id,
                    span=span_id,
                    parent=parent[1] if parent is not None else None,
                    name=name,
                    ts=started_at,
                    dur_s=time.monotonic() - started,
                    attrs=payload,
                )
            )


class SpanEvent:
    """One finished span, as written to / read from the trace log."""

    __slots__ = ("trace", "span", "parent", "name", "ts", "dur_s", "attrs")

    def __init__(
        self,
        trace: str,
        span: str,
        parent: str | None,
        name: str,
        ts: float,
        dur_s: float,
        attrs: Mapping[str, Any] | None = None,
    ) -> None:
        self.trace = trace
        self.span = span
        self.parent = parent
        self.name = name
        self.ts = ts
        self.dur_s = dur_s
        self.attrs = dict(attrs or {})

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "trace": self.trace,
            "span": self.span,
            "name": self.name,
            "ts": round(self.ts, 6),
            "dur_s": round(self.dur_s, 9),
        }
        if self.parent:
            out["parent"] = self.parent
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "SpanEvent":
        return cls(
            trace=str(record["trace"]),
            span=str(record["span"]),
            parent=record.get("parent"),
            name=str(record["name"]),
            ts=float(record.get("ts", 0.0)),
            dur_s=float(record.get("dur_s", 0.0)),
            attrs=record.get("attrs") or {},
        )


class TraceLog:
    """Append-only JSONL sink for finished spans.

    Writes are serialised under a lock and flushed line-at-a-time; like the
    job journal, a torn final line from a crash is skipped on read rather
    than poisoning the file.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._lock = threading.Lock()

    def append(self, event: SpanEvent) -> None:
        line = json.dumps(event.to_dict(), separators=(",", ":"))
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(line + "\n")

    def read(self) -> list[SpanEvent]:
        return read_trace(self.path)


def read_trace(path: "str | Path") -> list[SpanEvent]:
    """Parse a trace log, skipping torn or undecodable lines."""
    path = Path(path)
    if not path.exists():
        return []
    events: list[SpanEvent] = []
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                events.append(SpanEvent.from_dict(record))
            except (ValueError, KeyError, TypeError):
                continue  # torn tail or foreign line; tolerate like the journal
    return events


def trace_log_for_store(store: "StoreBackend | None") -> TraceLog | None:
    """The conventional trace-log location for a store, or ``None``.

    Mirrors :func:`repro.service.reliability.journal_for_store`: the trace
    log lives beside the journal so a store directory carries its own
    observability artefacts — ``<root>/trace.jsonl`` for a JSONL store,
    ``<file>.db.trace.jsonl`` for SQLite; chaos wrappers delegate to the
    store they wrap.
    """
    if store is None:
        return None
    inner = getattr(store, "inner", None)
    if inner is not None:
        return trace_log_for_store(inner)
    root = getattr(store, "root", None)
    if root is not None:
        return TraceLog(Path(root) / "trace.jsonl")
    path = getattr(store, "path", None)
    if path is not None:
        path = Path(path)
        return TraceLog(path.with_name(path.name + ".trace.jsonl"))
    return None


def summarize_trace(events: list[SpanEvent]) -> dict[str, Any]:
    """Aggregate a trace log for ``repro trace <file>``.

    Returns per-stage (span-name) latency stats and the slowest traces by
    total root-span time, ready for tabular display.
    """
    stages: dict[str, dict[str, float]] = {}
    for ev in events:
        agg = stages.setdefault(
            ev.name, {"count": 0.0, "total_s": 0.0, "max_s": 0.0}
        )
        agg["count"] += 1
        agg["total_s"] += ev.dur_s
        agg["max_s"] = max(agg["max_s"], ev.dur_s)
    stage_rows = [
        {
            "stage": name,
            "count": int(agg["count"]),
            "total_s": agg["total_s"],
            "mean_s": agg["total_s"] / agg["count"] if agg["count"] else 0.0,
            "max_s": agg["max_s"],
        }
        for name, agg in sorted(
            stages.items(), key=lambda kv: kv[1]["total_s"], reverse=True
        )
    ]

    roots: dict[str, SpanEvent] = {}
    spans_by_trace: dict[str, int] = {}
    for ev in events:
        spans_by_trace[ev.trace] = spans_by_trace.get(ev.trace, 0) + 1
        if not ev.parent:
            # Keep the longest root per trace (retries re-enter the root).
            prior = roots.get(ev.trace)
            if prior is None or ev.dur_s > prior.dur_s:
                roots[ev.trace] = ev
    slowest = [
        {
            "trace": ev.trace,
            "root": ev.name,
            "dur_s": ev.dur_s,
            "spans": spans_by_trace.get(ev.trace, 0),
            "attrs": ev.attrs,
        }
        for ev in sorted(roots.values(), key=lambda e: e.dur_s, reverse=True)[:10]
    ]
    return {
        "events": len(events),
        "traces": len(spans_by_trace),
        "stages": stage_rows,
        "slowest": slowest,
    }
