"""Structured JSON logging that carries the current trace id.

``get_logger`` hands out ordinary stdlib loggers under the ``repro`` root;
``configure_json_logging`` (called by ``repro serve``) attaches a handler
whose formatter emits one JSON object per line — timestamp, level, logger,
message, plus the current trace id when the log call happens inside a span
or :func:`~repro.obs.tracing.trace_context`.  Library modules log
unconditionally and cheaply: with no handler configured the stdlib drops
records at the root, so importing this module costs nothing to callers that
never serve.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, TextIO

from repro.obs.tracing import current_trace_id

__all__ = ["JsonFormatter", "configure_json_logging", "get_logger"]

_ROOT = "repro"


class JsonFormatter(logging.Formatter):
    """Format records as compact single-line JSON with trace correlation."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        trace = getattr(record, "trace", None) or current_trace_id()
        if trace:
            payload["trace"] = trace
        extra = getattr(record, "fields", None)
        if isinstance(extra, dict):
            payload.update(extra)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = record.exc_info[0].__name__
        return json.dumps(payload, separators=(",", ":"), default=str)

    def formatTime(self, record: logging.LogRecord, datefmt: str | None = None) -> str:
        return time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(record.created))


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``get_logger("service")``)."""
    if name == _ROOT or name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def configure_json_logging(
    level: int = logging.INFO, stream: TextIO | None = None
) -> logging.Logger:
    """Attach a JSON-formatting handler to the ``repro`` logger root.

    Idempotent: an existing JSON handler on the root is replaced rather than
    stacked, so re-serving in one process does not duplicate output lines.
    """
    root = logging.getLogger(_ROOT)
    root.setLevel(level)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_json", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter())
    handler._repro_json = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.propagate = False
    return root
