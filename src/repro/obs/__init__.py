"""Observability: metrics registry, span tracing, structured logging.

Three small, stdlib-only pieces shared by every layer of the repo:

* :mod:`repro.obs.metrics` — thread-safe Counter/Gauge/Histogram families
  with label sets in a process-wide :data:`REGISTRY`, snapshot-to-dict and
  deterministic Prometheus text exposition (``GET /metrics``).
* :mod:`repro.obs.tracing` — ``span(name, **attrs)`` context managers whose
  trace/span ids follow a request from HTTP handler through job queue,
  session plan, engine run and store append, exported as torn-line-tolerant
  JSONL next to the job journal.
* :mod:`repro.obs.logs` — JSON log lines that carry the current trace id.

Instrumentation is on by default and cheap; ``repro serve --no-obs`` (or
:func:`set_enabled` / ``configure_tracing(None)``) turns recording off, at
which point every hook reduces to one boolean or ContextVar check —
``benchmarks/bench_obs.py`` holds the cached fast path within 5% either way.
Metrics are per-process: the service's default in-process execution
aggregates everything in the server, while process-pool sweep workers only
report what runs in the parent.
"""

from __future__ import annotations

from repro.obs.logs import JsonFormatter, configure_json_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    enabled,
    set_enabled,
)
from repro.obs.tracing import (
    SpanEvent,
    TraceLog,
    configure_tracing,
    current_span_id,
    current_trace_id,
    new_trace_id,
    read_trace,
    span,
    summarize_trace,
    trace_context,
    trace_log_for_store,
    tracing_sink,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "REGISTRY",
    "SpanEvent",
    "TraceLog",
    "configure_json_logging",
    "configure_tracing",
    "current_span_id",
    "current_trace_id",
    "enabled",
    "get_logger",
    "new_trace_id",
    "read_trace",
    "set_enabled",
    "span",
    "summarize_trace",
    "trace_context",
    "trace_log_for_store",
    "tracing_sink",
]
