"""Cross-cell mega-batch engines: one fused kernel per sweep, not per cell.

:class:`~repro.engine.batch_engine.BatchFairEngine` and
:class:`~repro.engine.batch_window_engine.BatchWindowEngine` vectorise the R
replications *within* one (protocol, k) cell, but a Figure-1 sweep still
executes its cells one kernel launch at a time — the per-cell wins are
serialized across the k-grid × protocol family, and every cell pays the full
makespan of its own slowest replication.  The engines here fuse **all
same-kind cells of a sweep into a single padded numpy lockstep kernel**:

* rows of the batch are cell × replication, with a row → cell index map;
* protocol parameters, the network size ``k`` and the ``max_slots`` cap are
  *per-row* arrays (see
  :meth:`~repro.protocols.base.FairProtocol.make_fused_batch_state`), so one
  masked kernel pass per slot serves rows with different parameterisations;
* rows retire individually — a solved k=10 replication stops consuming work
  while its k=10⁶ siblings keep stepping — so the kernel's wall clock tracks
  the *global* maximum makespan of the group instead of the sum of per-cell
  maxima.

Randomness and resumability
---------------------------
Each fused cell consumes its **own** random stream, seeded exactly like the
per-cell batch engines (``SeedSequence(cell.seeds)``).  The fair kernel
pre-draws each cell's uniforms in fixed-size chunks at absolute slot
boundaries (:data:`_CHUNK`); a cell's draw count per chunk depends only on
its *own* live-row trajectory, so a cell's fused results are **bit-identical
no matter which group it is fused into** — alone, with any siblings, or
re-fused by a resumed sweep that only re-runs the missing cells.  Fused fair
results are *not* bit-identical to :class:`BatchFairEngine` (a different —
distributionally identical — sampling of the same process, pinned by
``tests/engine/test_megabatch.py``); fused *windowed* results consume their
per-cell streams in exactly the order :class:`BatchWindowEngine` does and
are therefore bit-identical to it per cell.

Fusion is planned by the scenario layer (:class:`~repro.scenarios.session.Session`
groups fusable cells by the engines' ``fuse_key`` hook) and executed through
:func:`repro.engine.dispatch.simulate_megabatch`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.channel.model import ChannelModel
from repro.channel.trace import ExecutionTrace
from repro.engine.batch_engine import _BatchAccumulator
from repro.engine.batch_window_engine import BatchWindowEngine, _LiveWindowBatch, _WindowBatchAccumulator
from repro.engine.registry import EngineCapabilities, check_engine_channel, register_engine
from repro.engine.result import SimulationResult
from repro.obs import REGISTRY
from repro.protocols.base import FairProtocol, Protocol, WindowedProtocol
from repro.util.validation import check_positive_int

__all__ = ["FusedCell", "MegaFairEngine", "MegaWindowEngine"]

# Megabatch profiling hooks (engine.megabatch.* family): rows fused per
# kernel launch, rows retired, and kernel loop iterations.  Incremented once
# per simulate_fused call, never per slot.
_M_ROWS = REGISTRY.counter(
    "repro_megabatch_rows_total",
    "Rows (cell × replication) entering fused mega-batch kernels, by engine.",
    ("engine",),
)
_M_RETIRED = REGISTRY.counter(
    "repro_megabatch_rows_retired_total",
    "Rows retired from fused mega-batch kernels, by engine.",
    ("engine",),
)
_M_KERNEL = REGISTRY.counter(
    "repro_megabatch_kernel_iterations_total",
    "Fused kernel loop iterations (slots or windows), by engine.",
    ("engine",),
)
_M_CELLS = REGISTRY.counter(
    "repro_megabatch_cells_total",
    "Cells fused into mega-batch kernel launches, by engine.",
    ("engine",),
)

#: Slots of uniforms pre-drawn per cell per refill of the fair kernel.  The
#: refill boundaries are *absolute* slot multiples of this constant, and each
#: cell draws its own ``(chunk, live-rows)`` block from its own generator, so
#: a cell's stream consumption is independent of its group's composition.
#: The value must stay constant for that guarantee to hold across runs.
_CHUNK = 1024


@dataclass(frozen=True)
class FusedCell:
    """One (protocol, k) cell of a fused group.

    ``protocol`` is the configured prototype instance (spawned fresh by the
    kernel), ``seeds`` the per-replication seeds keying the cell's private
    random stream, ``max_slots`` the cell's own safety cap, and ``tag`` an
    opaque caller token carried through to the executor layer.
    """

    protocol: Protocol
    k: int
    seeds: tuple[int, ...]
    max_slots: int
    tag: object = field(default=None, compare=False)

    def __post_init__(self) -> None:
        check_positive_int("k", self.k)
        if not self.seeds:
            raise ValueError("a fused cell needs at least one seed")
        check_positive_int("max_slots", self.max_slots)


def _check_cells(cells: Sequence[FusedCell], engine_name: str) -> None:
    if not cells:
        raise ValueError(f"{engine_name}.simulate_fused needs at least one cell")


class _ChunkedCellDraws:
    """Per-cell uniform streams, pre-drawn in composition-independent chunks.

    At every absolute slot multiple of :data:`_CHUNK` each cell with live
    rows draws one ``(chunk, live)`` block from its own generator; the blocks
    are assembled column-wise into one group-level matrix so the kernel's
    per-slot draw is a single row view.  When rows retire, their columns are
    dropped and their unused pre-drawn values discarded — exactly what would
    have happened had the cell run alone.
    """

    def __init__(self, generators: Sequence[np.random.Generator], row_cell: np.ndarray) -> None:
        self._generators = generators
        self._cells = row_cell.copy()
        self._block: np.ndarray | None = None

    def draws(self, slot: int) -> np.ndarray:
        offset = slot % _CHUNK
        if offset == 0 or self._block is None:
            self._refill()
        assert self._block is not None
        return self._block[offset]

    def _refill(self) -> None:
        block = np.empty((_CHUNK, self._cells.size))
        for cell in np.unique(self._cells):
            columns = self._cells == cell
            block[:, columns] = self._generators[cell].random(
                (_CHUNK, int(np.count_nonzero(columns)))
            )
        self._block = block

    def compact(self, keep: np.ndarray) -> None:
        self._cells = self._cells[keep]
        if self._block is not None:
            self._block = self._block[:, keep]


class _FusedLiveBatch:
    """The still-running rows of a fused fair group: counters + protocol state.

    Mirrors :class:`repro.engine.batch_engine._LiveBatch`, with the network
    size and the slot cap carried per row (rows come from cells with
    different k).  The kernel is dispatch-overhead bound, so the per-slot
    bookkeeping is collapsed to a single counter: ``under`` counts the slots
    whose uniform draw fell below the silence threshold (successes +
    silences); every other statistic is derived at retirement — successes
    from ``k − remaining``, silences from ``under − successes``, collisions
    from ``slots_lived − under``.
    """

    def __init__(self, ks: np.ndarray, caps: np.ndarray, state: object) -> None:
        rows = ks.size
        self.orig = np.arange(rows)
        self.k = ks.astype(np.int64).copy()
        self.remaining = self.k.copy()
        self.cap = caps.astype(np.int64).copy()
        self.under = np.zeros(rows, dtype=np.int64)
        self.state = state

    @property
    def size(self) -> int:
        return int(self.orig.size)

    def retire(
        self, mask: np.ndarray, out: _BatchAccumulator, solved: bool, slot: int
    ) -> np.ndarray:
        """Write final stats for the masked rows (all of which lived exactly
        ``slot`` slots), drop them, and return the keep mask."""
        idx = self.orig[mask]
        successes = self.k[mask] - self.remaining[mask]
        under = self.under[mask]
        out.solved[idx] = solved
        out.makespan[idx] = slot if solved else 0
        out.slots[idx] = slot
        out.successes[idx] = successes
        out.silences[idx] = under - successes
        out.collisions[idx] = slot - under
        keep = ~mask
        self.orig = self.orig[keep]
        self.k = self.k[keep]
        self.remaining = self.remaining[keep]
        self.cap = self.cap[keep]
        self.under = self.under[keep]
        self.state.compact(keep)
        return keep


@register_engine
class MegaFairEngine:
    """Fuse every fair (protocol, k) cell of a sweep into one lockstep kernel."""

    name = "mega"

    #: Mega-batch engine for fair protocols on the paper's channel.  Batched
    #: (it can serve one cell through ``simulate_batch``) *and* fusing; the
    #: registry's ``batch_engine_for`` auto path skips fusing engines, so it
    #: is reached only via ``fused_engine_for`` or an explicit selector.
    capabilities = EngineCapabilities(
        protocol_kinds=frozenset({"fair"}),
        batched=True,
        fuses_cells=True,
        cost_rank=40,
    )

    def __init__(self, channel: ChannelModel | None = None, max_slots_factor: int = 10_000) -> None:
        self.channel = check_engine_channel(type(self), channel)
        self.max_slots_factor = check_positive_int("max_slots_factor", max_slots_factor)

    # ------------------------------------------------------------ eligibility
    @classmethod
    def supports(cls, protocol: Protocol) -> bool:
        """Whether ``protocol``'s cells can be fused by this engine.

        Requires the fair kind, the fair-engine state contract, a *per-row*
        fused kernel (:meth:`FairProtocol.make_fused_batch_state`) and a
        probability that actually varies between receptions — protocols
        declaring ``probability_constant_between_receptions`` (slotted
        ALOHA) are excluded because the per-cell batch engine's geometric
        silence skipping beats any lockstep kernel for them.
        """
        if getattr(protocol, "protocol_kind", "generic") not in cls.capabilities.protocol_kinds:
            return False
        if protocol.state_depends_on_own_transmission:
            return False
        if protocol.probability_constant_between_receptions:
            return False
        return type(protocol).make_fused_batch_state([protocol.spawn()], [1]) is not None

    @classmethod
    def fuse_key(cls, protocol: Protocol) -> object:
        """Cells sharing this key may enter one fused kernel.

        Fair cells fuse per protocol *class*: the per-row parameter arrays of
        the fused state absorb any difference in constructor parameters, so
        e.g. both Log-fails Adaptive ``ξt`` variants of the paper's suite
        stack into one kernel.
        """
        return type(protocol)

    # ----------------------------------------------------------------- public
    def simulate(
        self,
        protocol: FairProtocol,
        k: int,
        seed: int = 0,
        max_slots: int | None = None,
        trace: ExecutionTrace | None = None,
    ) -> SimulationResult:
        """Run one instance as a fused group of one cell of one replication."""
        if trace is not None:
            raise ValueError(
                "MegaFairEngine does not collect traces (outcomes are classified "
                "in bulk, not slot records); use FairEngine for traced runs"
            )
        return self.simulate_batch(protocol, k, [seed], max_slots=max_slots)[0]

    def simulate_batch(
        self,
        protocol: FairProtocol,
        k: int,
        seeds: Sequence[int],
        max_slots: int | None = None,
    ) -> list[SimulationResult]:
        """Simulate one cell — a fused group of size one (the batch API)."""
        cap = max_slots if max_slots is not None else self.max_slots_factor * k
        cell = FusedCell(protocol=protocol, k=k, seeds=tuple(int(s) for s in seeds), max_slots=cap)
        return self.simulate_fused([cell])[0]

    def simulate_fused(self, cells: Sequence[FusedCell]) -> list[list[SimulationResult]]:
        """Simulate every cell of the group in one fused kernel pass.

        Returns one result list per cell (ordered like ``cells``, one
        :class:`SimulationResult` per seed).  Each cell's results are
        bit-identical regardless of the group's composition.
        """
        _check_cells(cells, type(self).__name__)
        prototypes = []
        for cell in cells:
            if not isinstance(cell.protocol, FairProtocol):
                raise TypeError(
                    f"MegaFairEngine requires FairProtocol cells, got "
                    f"{type(cell.protocol).__name__}"
                )
            if not self.supports(cell.protocol):
                raise ValueError(
                    f"{type(cell.protocol).__name__} has no per-row fused kernel "
                    "(or declares a contract the fused reduction cannot serve)"
                )
            prototypes.append(cell.protocol.spawn())
        keys = {self.fuse_key(cell.protocol) for cell in cells}
        if len(keys) != 1:
            raise ValueError(
                f"MegaFairEngine can fuse only cells of one protocol class, got "
                f"{sorted(key.__name__ for key in keys)}"
            )

        counts = [len(cell.seeds) for cell in cells]
        state = type(prototypes[0]).make_fused_batch_state(prototypes, counts)
        if state is None:  # pragma: no cover - guarded by supports()
            raise ValueError(
                f"{type(prototypes[0]).__name__} provides no fused batch state"
            )
        row_cell = np.repeat(np.arange(len(cells)), counts)
        ks = np.repeat([cell.k for cell in cells], counts)
        caps = np.repeat([cell.max_slots for cell in cells], counts)
        generators = [
            np.random.default_rng(np.random.SeedSequence(list(cell.seeds))) for cell in cells
        ]

        rows = int(row_cell.size)
        live = _FusedLiveBatch(ks, caps, state)
        out = _BatchAccumulator.empty(rows)
        iterations = self._run_lockstep(live, out, generators, row_cell)
        _M_ROWS.labels(engine=self.name).inc(rows)
        _M_RETIRED.labels(engine=self.name).inc(rows)
        _M_KERNEL.labels(engine=self.name).inc(iterations)
        _M_CELLS.labels(engine=self.name).inc(len(cells))

        results: list[list[SimulationResult]] = []
        offset = 0
        for cell, reps in zip(cells, counts):
            cell_results = [
                SimulationResult(
                    solved=bool(out.solved[offset + index]),
                    makespan=int(out.makespan[offset + index]) if out.solved[offset + index] else None,
                    k=cell.k,
                    slots_simulated=int(out.slots[offset + index]),
                    successes=int(out.successes[offset + index]),
                    collisions=int(out.collisions[offset + index]),
                    silences=int(out.silences[offset + index]),
                    protocol=cell.protocol.name,
                    engine=self.name,
                    seed=cell.seeds[index],
                    metadata={"batch_reps": reps},
                )
                for index in range(reps)
            ]
            results.append(cell_results)
            offset += reps
        return results

    # -------------------------------------------------------------- internals
    def _run_lockstep(
        self,
        live: _FusedLiveBatch,
        out: _BatchAccumulator,
        generators: Sequence[np.random.Generator],
        row_cell: np.ndarray,
    ) -> int:
        """One masked kernel pass per slot with per-row retirement.

        Identical slot semantics to ``BatchFairEngine._run_lockstep`` — the
        same classification thresholds (``draw < P(success)`` then
        ``< P(success) + P(silence)``), the same per-slot feedback — but
        organised around the fact that on a few dozen rows every numpy
        dispatch costs as much as the arithmetic:

        * caps are *events*, not per-slot checks — the distinct cap values
          are visited in ascending order and the capped-row pass runs only
          at those slots;
        * the outcome thresholds are cached per state identity
          (:meth:`~repro.protocols.base.FairBatchState.probabilities_cached`)
          and invalidated when the remaining counts change — a protocol
          alternating a few probability flavors (AT/BT schedules) recomputes
          each flavor's thresholds once per reception, not once per slot;
        * successes are sparse, so all success-dependent updates hide behind
          one ``success.any()``.

        Returns the number of slots stepped (the group's makespan).
        """
        draws = _ChunkedCellDraws(generators, row_cell)
        state = live.state
        probabilities_cached = state.probabilities_cached
        observe_receptions = state.observe_receptions
        next_draws = draws.draws
        cap_values = np.unique(live.cap)
        cap_index = 0
        next_cap = int(cap_values[0])
        remaining = live.remaining
        under = live.under
        remaining_f = remaining.astype(float)
        exponent = remaining_f - 1.0
        # Classification thresholds stacked as one (2, rows) array — row 0 is
        # P(success), row 1 is P(success) + P(silence) — so the per-slot
        # classification is a single broadcast comparison.  One entry is kept
        # per probability flavor (see probabilities_cached); `changes` logs
        # the rows whose inputs (probability, remaining count) moved since,
        # and each entry records its position in that log so a cache hit
        # patches only the logged rows, scalar-wise, instead of rebuilding.
        # Row indices shift when rows retire, so retirement drops everything.
        entries: dict[object, list] = {}
        entries_get = entries.get
        changes: list[int] = []
        scratch: np.ndarray | None = None
        # Reusable per-slot buffers: the (2, rows) outcome of the broadcast
        # comparison and the rebuild temporaries q / q**exponent.  Allocated
        # lazily and dropped whenever the row count changes.
        outcome = np.empty((2, remaining.size), dtype=bool)
        success = outcome[0]
        below = outcome[1]
        q_buf: np.ndarray | None = None
        q_pow_buf: np.ndarray | None = None
        slot = 0
        while live.orig.size:
            if slot == next_cap:
                capped = live.cap <= slot
                if capped.any():
                    keep = live.retire(capped, out, solved=False, slot=slot)
                    draws.compact(keep)
                    if not live.orig.size:
                        break
                    remaining = live.remaining
                    under = live.under
                    remaining_f = remaining_f[keep]
                    exponent = exponent[keep]
                    entries.clear()
                    changes.clear()
                    scratch = None
                    outcome = np.empty((2, remaining.size), dtype=bool)
                    success = outcome[0]
                    below = outcome[1]
                    q_buf = None
                    q_pow_buf = None
                cap_index += 1
                next_cap = int(cap_values[cap_index]) if cap_index < cap_values.size else -1
            p, key = probabilities_cached(slot)
            if key is None:
                if scratch is None:
                    scratch = np.empty((2, p.size))
                thresholds = scratch
                rebuild = True
            else:
                entry = entries_get(key)
                if entry is None:
                    thresholds = np.empty((2, p.size))
                    entries[key] = [len(changes), thresholds]
                    rebuild = True
                else:
                    thresholds = entry[1]
                    pointer = entry[0]
                    logged = len(changes)
                    rebuild = False
                    if pointer != logged:
                        stale = set(changes[pointer:])
                        # A scalar np.power costs more than the whole-array
                        # power, so patching pays off only for 1-2 rows.
                        if len(stale) > 2:
                            rebuild = True
                        else:
                            for i in stale:
                                p_i = p[i]
                                q_i = 1.0 - p_i
                                # np.power (not **): the scalar ufunc call is
                                # bit-identical to the array rebuild below,
                                # scalarmath __pow__ is not.
                                q_pow_i = np.power(q_i, exponent[i])
                                t0 = remaining_f[i] * p_i * q_pow_i
                                thresholds[0, i] = t0
                                thresholds[1, i] = q_pow_i * q_i + t0
                        entry[0] = logged
            if rebuild:
                if q_buf is None:
                    q_buf = np.empty(p.size)
                    q_pow_buf = np.empty(p.size)
                q = np.subtract(1.0, p, out=q_buf)
                q_pow = np.power(q, exponent, out=q_pow_buf)
                probability_success = np.multiply(remaining_f, p, out=thresholds[0])
                probability_success *= q_pow
                silence_limit = np.multiply(q_pow, q, out=thresholds[1])
                silence_limit += probability_success
            np.less(next_draws(slot), thresholds, out=outcome)
            under += below
            rows = success.nonzero()[0]
            any_success = rows.size > 0
            state_rows = observe_receptions(slot, success, any_success, rows)
            if state_rows is None:
                entries.clear()
                changes.clear()
            elif state_rows.size:
                changes.extend(state_rows.tolist())
            slot += 1
            if any_success:
                changes.extend(rows.tolist())
                finished_any = False
                if rows.size <= 8:
                    # Successes are sparse (usually one row per slot);
                    # per-row scalar updates beat four whole-array passes.
                    for index in rows:
                        i = int(index)
                        remaining[i] -= 1
                        remaining_f[i] -= 1.0
                        exponent[i] -= 1.0
                        if remaining[i] == 0:
                            finished_any = True
                else:
                    remaining -= success
                    remaining_f -= success
                    exponent -= success
                    finished_any = bool((remaining == 0).any())
                if finished_any:
                    finished = remaining == 0
                    keep = live.retire(finished, out, solved=True, slot=slot)
                    draws.compact(keep)
                    remaining = live.remaining
                    under = live.under
                    remaining_f = remaining_f[keep]
                    exponent = exponent[keep]
                    entries.clear()
                    changes.clear()
                    scratch = None
                    outcome = np.empty((2, remaining.size), dtype=bool)
                    success = outcome[0]
                    below = outcome[1]
                    q_buf = None
                    q_pow_buf = None
        return slot


@register_engine
class MegaWindowEngine:
    """Fuse every same-schedule windowed cell of a sweep into one lockstep pass."""

    name = "mega-window"

    #: Mega-batch engine for windowed protocols on the paper's channel; see
    #: :class:`MegaFairEngine` for the selection rules it shares.
    capabilities = EngineCapabilities(
        protocol_kinds=frozenset({"windowed"}),
        batched=True,
        fuses_cells=True,
        cost_rank=40,
    )

    def __init__(self, channel: ChannelModel | None = None, max_slots_factor: int = 10_000) -> None:
        self.channel = check_engine_channel(type(self), channel)
        self.max_slots_factor = check_positive_int("max_slots_factor", max_slots_factor)
        # The occupancy samplers (saturated shortcut, multinomial rows, ball
        # throwing) are borrowed verbatim from the per-cell windowed batch
        # engine, which keeps the two engines' draw sequences — and therefore
        # their per-cell results — bit-identical.
        self._inner = BatchWindowEngine(channel=channel, max_slots_factor=max_slots_factor)

    # ------------------------------------------------------------ eligibility
    @classmethod
    def supports(cls, protocol: Protocol) -> bool:
        """Whether ``protocol``'s cells can be fused: windowed kind, a shared
        window schedule kernel *and* a declared schedule identity
        (:meth:`WindowedProtocol.fused_schedule_key`)."""
        if getattr(protocol, "protocol_kind", "generic") not in cls.capabilities.protocol_kinds:
            return False
        if protocol.make_window_batch_state(1) is None:
            return False
        return protocol.fused_schedule_key() is not None

    @classmethod
    def fuse_key(cls, protocol: Protocol) -> object:
        """Cells sharing this key traverse identical window schedules.

        Windowed cells fuse per *schedule identity* — the lockstep window
        iteration requires every fused row to share window boundaries, so
        only cells whose protocols report equal
        :meth:`~repro.protocols.base.WindowedProtocol.fused_schedule_key`
        values group together (e.g. every k of one backoff parameterisation).
        """
        return protocol.fused_schedule_key()

    # ----------------------------------------------------------------- public
    def simulate(
        self,
        protocol: WindowedProtocol,
        k: int,
        seed: int = 0,
        max_slots: int | None = None,
        trace: ExecutionTrace | None = None,
    ) -> SimulationResult:
        """Run one instance as a fused group of one cell of one replication."""
        if trace is not None:
            raise ValueError(
                "MegaWindowEngine does not collect traces (windows are classified "
                "in bulk, not slot records); use WindowEngine for traced runs"
            )
        return self.simulate_batch(protocol, k, [seed], max_slots=max_slots)[0]

    def simulate_batch(
        self,
        protocol: WindowedProtocol,
        k: int,
        seeds: Sequence[int],
        max_slots: int | None = None,
    ) -> list[SimulationResult]:
        """Simulate one cell — a fused group of size one (the batch API)."""
        cap = max_slots if max_slots is not None else self.max_slots_factor * k
        cell = FusedCell(protocol=protocol, k=k, seeds=tuple(int(s) for s in seeds), max_slots=cap)
        return self.simulate_fused([cell])[0]

    def simulate_fused(self, cells: Sequence[FusedCell]) -> list[list[SimulationResult]]:
        """Simulate every cell of the group against one shared window schedule.

        Returns one result list per cell (ordered like ``cells``).  Each
        cell consumes its own random stream in exactly the order the
        per-cell :class:`BatchWindowEngine` would, so per-cell results are
        bit-identical to it — and therefore independent of the group's
        composition.
        """
        _check_cells(cells, type(self).__name__)
        keys = set()
        for cell in cells:
            if not isinstance(cell.protocol, WindowedProtocol):
                raise TypeError(
                    f"MegaWindowEngine requires WindowedProtocol cells, got "
                    f"{type(cell.protocol).__name__}"
                )
            if not self.supports(cell.protocol):
                raise ValueError(
                    f"{type(cell.protocol).__name__} declares no fusable window schedule"
                )
            keys.add(self.fuse_key(cell.protocol))
        if len(keys) != 1:
            raise ValueError(
                f"MegaWindowEngine can fuse only cells sharing one window schedule, "
                f"got {len(keys)} distinct schedule keys"
            )

        counts = [len(cell.seeds) for cell in cells]
        rows = sum(counts)
        schedule_state = cells[0].protocol.make_window_batch_state(rows)
        assert schedule_state is not None  # guarded by supports()
        schedule = schedule_state.lengths
        generators = [
            np.random.default_rng(np.random.SeedSequence(list(cell.seeds))) for cell in cells
        ]
        lives = [_LiveWindowBatch(cell.k, reps) for cell, reps in zip(cells, counts)]
        outs = [_WindowBatchAccumulator.empty(reps) for reps in counts]

        iterations = self._run(cells, schedule, lives, outs, generators)
        _M_ROWS.labels(engine=self.name).inc(rows)
        _M_RETIRED.labels(engine=self.name).inc(rows)
        _M_KERNEL.labels(engine=self.name).inc(iterations)
        _M_CELLS.labels(engine=self.name).inc(len(cells))

        results: list[list[SimulationResult]] = []
        for cell, reps, out in zip(cells, counts, outs):
            results.append(
                [
                    SimulationResult(
                        solved=bool(out.solved[index]),
                        makespan=int(out.makespan[index]) if out.solved[index] else None,
                        k=cell.k,
                        slots_simulated=int(out.slots[index]),
                        successes=int(out.successes[index]),
                        collisions=int(out.collisions[index]),
                        silences=int(out.silences[index]),
                        protocol=cell.protocol.name,
                        engine=self.name,
                        seed=cell.seeds[index],
                        metadata={
                            "batch_reps": reps,
                            "windows": int(out.windows[index]),
                        },
                    )
                    for index in range(reps)
                ]
            )
        return results

    # -------------------------------------------------------------- internals
    def _run(
        self,
        cells: Sequence[FusedCell],
        schedule,
        lives: Sequence[_LiveWindowBatch],
        outs: Sequence[_WindowBatchAccumulator],
        generators: Sequence[np.random.Generator],
    ) -> int:
        """Lockstep iteration of the one shared schedule across all cells.

        Every decision that touches randomness — the per-cell saturated
        shortcut and the occupancy sampling — is made per cell with the
        cell's own generator, in the same order ``BatchWindowEngine._run``
        makes it, so per-cell draw sequences match the per-cell engine
        exactly.  Returns the number of windows iterated.
        """
        inner = self._inner
        window_start = 0
        windows = 0
        while True:
            running = [index for index, live in enumerate(lives) if live.size]
            if not running:
                break
            for index in running:
                live = lives[index]
                if window_start >= cells[index].max_slots:
                    live.retire(
                        np.ones(live.size, dtype=bool),
                        outs[index],
                        solved=False,
                        slots=np.full(live.size, window_start, dtype=np.int64),
                    )
            running = [index for index in running if lives[index].size]
            if not running:
                break
            try:
                length = int(next(schedule))
            except StopIteration as error:
                unsolved = sum(lives[index].size for index in running)
                raise RuntimeError(
                    f"{type(cells[0].protocol).__name__}: window schedule exhausted "
                    f"with {unsolved} fused replications unsolved"
                ) from error
            if length < 1:
                raise ValueError(f"window length must be >= 1, got {length}")
            windows += 1

            for index in running:
                live = lives[index]
                if inner._saturated(length, int(live.remaining.min())):
                    live.collisions += length
                    live.windows += 1
                    continue
                delivered, collisions, silences, end_slot = inner._window_outcomes(
                    generators[index], live.remaining, length, window_start
                )
                finishing = delivered == live.remaining
                live.successes += delivered
                live.collisions += collisions
                live.silences += silences
                live.windows += 1
                live.remaining -= delivered
                if finishing.any():
                    live.retire(finishing, outs[index], solved=True, slots=end_slot)
            window_start += length
        return windows
