"""Capability-driven engine registry: the one source of truth for dispatch.

Historically, "which engine can serve this cell?" was answered three times —
by ``isinstance`` sniffing in :func:`repro.engine.dispatch.pick_engine`, by a
hand-rolled conjunction in ``Session._plan`` and by a third copy in
``run_sweep`` — and each copy had to be updated (and kept agreeing) whenever
an engine or protocol class was added.  This module replaces all of that with
a declarative scheme:

* every engine class carries an :class:`EngineCapabilities` declaration —
  which *protocol kinds* it can serve, which channel feedback models, whether
  it supports staggered arrivals, whether it is a *batched* engine (simulates
  many replications per call) and whether it collects traces — and registers
  itself with the module-level :class:`EngineRegistry`;
* every protocol declares its kind through
  :attr:`repro.protocols.base.Protocol.protocol_kind` (``"fair"``,
  ``"windowed"`` or ``"generic"``) instead of being ``isinstance``-sniffed;
* dispatch (:func:`pick_engine_name`), batch planning
  (:func:`batch_engine_for`), CLI/scenario engine choices
  (:func:`available_engines`) and the documentation tables are all *queries*
  against the registry.

:func:`batch_engine_for` is the **single batch-eligibility predicate** in the
repository: the scenario layer, the sweep runner and the ``simulate_batch``
front door all call it, so they cannot diverge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channel.arrivals import ArrivalProcess
from repro.channel.model import ChannelModel, FeedbackModel

__all__ = [
    "EngineCapabilities",
    "EngineRegistry",
    "register_engine",
    "available_engines",
    "engine_names",
    "engine_class",
    "engine_capabilities",
    "engines_for",
    "check_engine_channel",
    "pick_engine_name",
    "batch_engine_for",
    "fused_engine_for",
]

#: The paper's channel: no collision detection, implicit acknowledgements.
_PAPER_FEEDBACK = FeedbackModel.NO_COLLISION_DETECTION


@dataclass(frozen=True)
class EngineCapabilities:
    """What one engine class declares it can serve.

    Attributes
    ----------
    protocol_kinds:
        The :attr:`~repro.protocols.base.Protocol.protocol_kind` values the
        engine's reduction is exact for; ``None`` means *every* kind (the
        node-level reference engine).
    channels:
        The channel feedback models the engine implements; ``None`` means
        every model.  (All engines additionally require acknowledgements —
        without them no station ever retires, so no engine can terminate;
        the registry enforces that globally.)
    arrivals:
        Whether the engine simulates staggered arrival processes.  The
        reduced engines all assume every station starts at slot 0.
    batched:
        Whether the engine is a *batch* engine: it exposes
        ``simulate_batch(protocol, k, seeds)`` running many replications of
        one cell per call, plus a ``supports(protocol)`` kernel check.
        Batched engines are never chosen by ``engine="auto"`` for single
        runs; :func:`batch_engine_for` selects among them for whole cells.
    fuses_cells:
        Whether the engine is a *mega-batch* engine: it additionally exposes
        ``simulate_fused(cells)`` running many (protocol, k) cells of a sweep
        in one fused kernel, plus a ``fuse_key(protocol)`` grouping hook.
        Fusing engines are selected only by :func:`fused_engine_for` —
        ``batch_engine_for``'s ``"auto"`` path skips them, so per-cell batch
        planning is unchanged when fusion is off.
    traces:
        Whether the engine can fill an
        :class:`~repro.channel.trace.ExecutionTrace` with per-slot records.
    cost_rank:
        Auto-selection preference: among the engines that can serve a
        request, ``"auto"`` picks the lowest rank (the cheapest engine that
        is exact).  The node-level engine carries the highest rank so it is
        the fallback, never the preference.
    """

    protocol_kinds: frozenset[str] | None = None
    channels: frozenset[FeedbackModel] | None = field(
        default_factory=lambda: frozenset({_PAPER_FEEDBACK})
    )
    arrivals: bool = False
    batched: bool = False
    fuses_cells: bool = False
    traces: bool = False
    cost_rank: int = 100


def check_engine_channel(engine_cls: type, channel: ChannelModel | None) -> ChannelModel:
    """Validate ``channel`` against an engine class's declared capabilities.

    The one channel-validation routine shared by every engine constructor —
    the declaration in :attr:`EngineCapabilities.channels` is the single
    statement of what the engine implements, and this helper turns it into
    the constructor-time check (``None`` means the paper's default channel).
    Acknowledgements are required globally: without them no station ever
    retires, so no engine can terminate.
    """
    resolved = channel if channel is not None else ChannelModel()
    if not resolved.acknowledgements:
        raise ValueError(
            f"{engine_cls.__name__} requires a channel with acknowledgements: without them "
            "no station ever retires and k-selection cannot terminate"
        )
    capabilities = engine_cls.capabilities
    if capabilities.channels is not None and resolved.feedback not in capabilities.channels:
        supported = sorted(model.value for model in capabilities.channels)
        raise ValueError(
            f"{engine_cls.__name__} implements only the {supported} feedback model(s) "
            f"declared in its capabilities, got {resolved.feedback.value!r}; "
            "use SlotEngine for other feedback models"
        )
    return resolved


class EngineRegistry:
    """Name → (engine class, declared capabilities) mapping with query API."""

    def __init__(self) -> None:
        self._engines: dict[str, type] = {}

    # ------------------------------------------------------------ registration
    def register(self, cls: type) -> type:
        """Class decorator: register an engine under its ``name`` attribute.

        The class must declare a unique ``name`` and an
        :class:`EngineCapabilities` instance as its ``capabilities``
        attribute; batched engines must additionally provide a
        ``supports(protocol)`` classmethod (the kernel-availability check).
        """
        name = getattr(cls, "name", None)
        if not isinstance(name, str) or not name:
            raise ValueError(f"{cls.__name__} must define a non-empty 'name' attribute")
        capabilities = getattr(cls, "capabilities", None)
        if not isinstance(capabilities, EngineCapabilities):
            raise ValueError(
                f"{cls.__name__} must declare an EngineCapabilities 'capabilities' attribute"
            )
        if capabilities.batched and not callable(getattr(cls, "supports", None)):
            raise ValueError(
                f"batched engine {cls.__name__} must provide a supports(protocol) classmethod"
            )
        existing = self._engines.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(f"engine name {name!r} already registered by {existing.__name__}")
        self._engines[name] = cls
        return cls

    # ----------------------------------------------------------------- lookups
    def names(self) -> list[str]:
        """Sorted names of all registered engines."""
        return sorted(self._engines)

    def available(self) -> list[str]:
        """Valid ``engine=`` selectors: ``"auto"`` plus every registered name."""
        return ["auto", *self.names()]

    def engine_class(self, name: str) -> type:
        """Look up a registered engine class by name."""
        try:
            return self._engines[name]
        except KeyError:
            raise ValueError(
                f"unknown engine {name!r}; choose from {self.names()} or 'auto'"
            ) from None

    def capabilities(self, name: str) -> EngineCapabilities:
        """The declared capabilities of the named engine."""
        return self.engine_class(name).capabilities

    # ----------------------------------------------------------------- queries
    def serves(
        self,
        name: str,
        protocol: object | None = None,
        channel: ChannelModel | None = None,
        arrivals: object | None = None,
    ) -> bool:
        """Whether the named engine's declared capabilities cover the request.

        ``protocol`` is matched by its declared ``protocol_kind``; ``channel``
        ``None`` means the paper's default channel.  This checks *declared*
        capabilities only — for batched engines the per-protocol kernel check
        (``supports``) is layered on top by :meth:`batch_engine_for`.
        """
        caps = self.capabilities(name)
        if arrivals is not None and not caps.arrivals:
            return False
        if protocol is not None and caps.protocol_kinds is not None:
            kind = getattr(protocol, "protocol_kind", "generic")
            if kind not in caps.protocol_kinds:
                return False
        if channel is not None:
            if not channel.acknowledgements:
                return False
            if caps.channels is not None and channel.feedback not in caps.channels:
                return False
        return True

    def engines_for(
        self,
        protocol: object | None = None,
        channel: ChannelModel | None = None,
        arrivals: object | None = None,
        batched: bool | None = None,
        fuses_cells: bool | None = None,
        traces: bool | None = None,
    ) -> list[str]:
        """Names of every engine serving the request, cheapest first.

        ``arrivals`` is the requested arrival process; any non-``None``
        value (``True`` works as a pure capability filter) restricts the
        listing to engines declaring arrival support.  ``batched``,
        ``fuses_cells`` and ``traces`` filter on the declared flags exactly.
        """
        matches = []
        for name in self.names():
            caps = self.capabilities(name)
            if batched is not None and caps.batched != batched:
                continue
            if fuses_cells is not None and caps.fuses_cells != fuses_cells:
                continue
            if traces is not None and caps.traces != traces:
                continue
            if not self.serves(name, protocol=protocol, channel=channel, arrivals=arrivals):
                continue
            matches.append(name)
        return sorted(matches, key=lambda name: (self.capabilities(name).cost_rank, name))

    def pick(
        self,
        protocol: object,
        engine: str = "auto",
        channel: ChannelModel | None = None,
        arrivals: ArrivalProcess | None = None,
    ) -> str:
        """Resolve an ``engine=`` selector to a registered engine name.

        ``"auto"`` returns the cheapest non-batched engine whose declared
        capabilities are exact for the request.  An explicit name is
        validated against the registry — unknown names, engines that cannot
        serve the requested arrival process, channel or protocol kind are all
        rejected with the capable engines enumerated, so a wrong explicit
        choice fails loudly instead of silently simulating a different model.
        """
        if channel is not None and not channel.acknowledgements:
            # A precise diagnosis, not a per-engine capability gap: no
            # registered engine can serve an ack-less channel, because a
            # station that never learns of its delivery never retires.
            raise ValueError(
                "no engine can serve a channel without acknowledgements: a station "
                "that never learns of its own delivery never retires, so k-selection "
                "cannot terminate"
            )
        if engine == "auto":
            candidates = self.engines_for(
                protocol=protocol, channel=channel, arrivals=arrivals, batched=False
            )
            if not candidates:
                raise ValueError(
                    f"no registered engine can serve protocol kind "
                    f"{getattr(protocol, 'protocol_kind', 'generic')!r} with "
                    f"channel={channel!r} and arrivals={type(arrivals).__name__ if arrivals is not None else None}"
                )
            return candidates[0]
        caps = self.capabilities(engine)  # raises with the full roster on unknown names
        if arrivals is not None and not caps.arrivals:
            capable = self.engines_for(arrivals=arrivals)
            raise ValueError(
                f"engine {engine!r} does not support arrival processes; engines that do: "
                f"{capable} (or 'auto')"
            )
        if channel is not None and not self.serves(engine, channel=channel):
            capable = self.engines_for(channel=channel)
            raise ValueError(
                f"engine {engine!r} cannot serve channel {channel!r} "
                f"(it implements {sorted(model.value for model in caps.channels) if caps.channels is not None else 'every'} "
                f"feedback); engines that can: {capable or '<none>'}"
            )
        if caps.protocol_kinds is not None:
            kind = getattr(protocol, "protocol_kind", "generic")
            if kind not in caps.protocol_kinds:
                capable = self.engines_for(protocol=protocol, channel=channel)
                raise ValueError(
                    f"engine {engine!r} serves protocol kinds "
                    f"{sorted(caps.protocol_kinds)}, not {kind!r} "
                    f"({type(protocol).__name__}); engines that can: {capable}"
                )
        return engine

    def batch_engine_for(
        self,
        protocol: object,
        engine: str = "auto",
        channel: ChannelModel | None = None,
        arrivals: ArrivalProcess | None = None,
    ) -> str | None:
        """The batch engine able to run a whole (protocol, k) cell, or ``None``.

        This is the repository's one batch-eligibility predicate: the
        scenario layer (``Session._plan``), the sweep runner and the
        ``simulate_batch`` front door all ask this question here.  A cell is
        batch-eligible when a registered *batched* engine (a) is admissible
        under the ``engine=`` selector (``"auto"`` considers every batched
        engine, an explicit batched name considers only itself, any other
        selector none), (b) declares capabilities covering the protocol kind
        and channel, and (c) confirms a vectorised kernel for this specific
        protocol instance via its ``supports`` hook.  Arrival processes are
        never batch-eligible — the batch reductions assume slot-0 arrivals.
        """
        if arrivals is not None:
            return None
        if engine == "auto":
            candidates = self.engines_for(
                protocol=protocol, channel=channel, batched=True, fuses_cells=False
            )
        elif engine in self._engines and self.capabilities(engine).batched:
            candidates = [engine] if self.serves(engine, protocol=protocol, channel=channel) else []
        else:
            return None
        for name in candidates:
            if self.engine_class(name).supports(protocol):
                return name
        return None

    def fused_engine_for(
        self,
        protocol: object,
        engine: str = "auto",
        channel: ChannelModel | None = None,
        arrivals: ArrivalProcess | None = None,
    ) -> str | None:
        """The mega-batch engine able to fuse this protocol's cells, or ``None``.

        The one *fusion*-eligibility predicate, mirroring
        :meth:`batch_engine_for`: a cell is fusable when a registered engine
        declaring ``fuses_cells`` (a) is admissible under the ``engine=``
        selector (``"auto"`` considers every fusing engine, an explicit
        fusing name considers only itself, any other selector none),
        (b) declares capabilities covering the protocol kind and channel, and
        (c) confirms a per-row kernel for this specific protocol instance via
        its ``supports`` hook.  Arrival processes are never fusable.
        """
        if arrivals is not None:
            return None
        if engine == "auto":
            candidates = self.engines_for(
                protocol=protocol, channel=channel, batched=True, fuses_cells=True
            )
        elif engine in self._engines and self.capabilities(engine).fuses_cells:
            candidates = [engine] if self.serves(engine, protocol=protocol, channel=channel) else []
        else:
            return None
        for name in candidates:
            if self.engine_class(name).supports(protocol):
                return name
        return None


#: The process-wide registry.  Engine modules register themselves on import;
#: the module-level helpers below lazily import :mod:`repro.engine` so a
#: caller that imports only this module still sees every engine.
_REGISTRY = EngineRegistry()


def register_engine(cls: type) -> type:
    """Register an engine class with the process-wide registry (decorator)."""
    return _REGISTRY.register(cls)


def _loaded() -> EngineRegistry:
    # Importing the package imports every engine module, each of which
    # registers itself; after the first call this is a no-op dict lookup.
    import repro.engine  # noqa: F401

    return _REGISTRY


def available_engines() -> list[str]:
    """Valid ``engine=`` selectors: ``"auto"`` plus every registered engine.

    The CLI, the scenario layer and the docs all derive their accepted
    values from this query, so registering an engine propagates everywhere.
    """
    return _loaded().available()


def engine_names() -> list[str]:
    """Sorted names of all registered engines (without ``"auto"``)."""
    return _loaded().names()


def engine_class(name: str) -> type:
    """Look up a registered engine class by name."""
    return _loaded().engine_class(name)


def engine_capabilities(name: str) -> EngineCapabilities:
    """The declared capabilities of the named engine."""
    return _loaded().capabilities(name)


def engines_for(
    protocol: object | None = None,
    channel: ChannelModel | None = None,
    arrivals: object | None = None,
    batched: bool | None = None,
    fuses_cells: bool | None = None,
    traces: bool | None = None,
) -> list[str]:
    """Names of every engine serving the request, cheapest first
    (see :meth:`EngineRegistry.engines_for`)."""
    return _loaded().engines_for(
        protocol=protocol,
        channel=channel,
        arrivals=arrivals,
        batched=batched,
        fuses_cells=fuses_cells,
        traces=traces,
    )


def pick_engine_name(
    protocol: object,
    engine: str = "auto",
    channel: ChannelModel | None = None,
    arrivals: ArrivalProcess | None = None,
) -> str:
    """Resolve an ``engine=`` selector to a registered name (see :meth:`EngineRegistry.pick`)."""
    return _loaded().pick(protocol, engine=engine, channel=channel, arrivals=arrivals)


def batch_engine_for(
    protocol: object,
    engine: str = "auto",
    channel: ChannelModel | None = None,
    arrivals: ArrivalProcess | None = None,
) -> str | None:
    """The one batch-eligibility predicate (see :meth:`EngineRegistry.batch_engine_for`)."""
    return _loaded().batch_engine_for(protocol, engine=engine, channel=channel, arrivals=arrivals)


def fused_engine_for(
    protocol: object,
    engine: str = "auto",
    channel: ChannelModel | None = None,
    arrivals: ArrivalProcess | None = None,
) -> str | None:
    """The one fusion-eligibility predicate (see :meth:`EngineRegistry.fused_engine_for`)."""
    return _loaded().fused_engine_for(protocol, engine=engine, channel=channel, arrivals=arrivals)
