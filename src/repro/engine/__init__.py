"""Simulation engines and how one gets picked.

Four engines produce makespan samples of the *same* stochastic process — the
paper's channel model — at very different costs.  This docstring is the
engine-selection guide: what each engine requires (its contract), what it
costs, and when :func:`pick_engine` / the sweep runner choose it.

* :class:`~repro.engine.slot_engine.SlotEngine` — wraps the exact node-level
  :class:`~repro.channel.radio_network.RadioNetwork`.  **Contract:** none; it
  works for every protocol, every channel model and every arrival process,
  and it is the reference the reduced engines are validated against.
  **Cost:** O(active nodes) per slot.  **Picked when:** the protocol fits no
  reduction, a non-default channel is requested, or an ``arrivals`` process
  is given (the reductions below all assume every station starts at slot 0).
* :class:`~repro.engine.fair_engine.FairEngine` — for
  :class:`~repro.protocols.base.FairProtocol`.  **Contract:** every active
  station transmits with the same probability ``p`` and updates state only on
  commonly-observed feedback (`state_depends_on_own_transmission` must be
  False).  The slot outcome is then ``Binomial(m, p)``-distributed —
  ``P(success) = m·p·(1−p)^{m−1}``, ``P(silence) = (1−p)^m`` — so one uniform
  draw per slot suffices.  **Cost:** O(1) per slot regardless of k.
  **Picked when:** ``engine="auto"`` for a fair protocol on the paper's
  channel (single runs; it is also the only fair-path engine that collects
  traces).
* :class:`~repro.engine.window_engine.WindowEngine` — for
  :class:`~repro.protocols.base.WindowedProtocol`.  **Contract:** stations
  commit to one uniform slot per contention window and the window schedule is
  a pure function of the window index; a whole window is then one
  balls-in-bins experiment.  **Cost:** O(window) numpy work per window (runs
  with k = 10⁷ take seconds).  **Picked when:** ``engine="auto"`` for a
  windowed protocol on the paper's channel.
* :class:`~repro.engine.batch_engine.BatchFairEngine` — for fair protocols
  that expose vectorised state via
  :meth:`~repro.protocols.base.FairProtocol.make_batch_state`.  **Contract:**
  the fair-engine contract plus a numpy mirror of the protocol's shared
  state; protocols additionally declaring
  :attr:`~repro.protocols.base.FairProtocol.probability_constant_between_receptions`
  get geometric silence-run skipping.  **Cost:** one vectorised slot step for
  *all R replications of a sweep cell at once* — one ``Generator.random(R)``
  draw per slot, with finished replications retired so the batch shrinks.
  **Picked when:** :func:`repro.experiments.runner.run_sweep` groups a cell's
  seeds into one batch (the default for eligible cells; disable with
  ``batch=False`` / ``--no-batch``), or explicitly via ``engine="batch"``.
  Never picked by ``engine="auto"``, which serves single runs.  Its runs are
  distributionally identical — not bit-identical — to the per-run engines,
  because the whole batch consumes one interleaved random stream.

:func:`simulate` dispatches a single run to the cheapest applicable engine,
:func:`simulate_batch` runs a whole cell through the batch engine, and
:mod:`repro.engine.validation` provides the statistical cross-checks used by
the test suite and the engine ablation benchmark.
"""

from repro.engine.result import SimulationResult
from repro.engine.slot_engine import SlotEngine
from repro.engine.fair_engine import FairEngine
from repro.engine.window_engine import WindowEngine
from repro.engine.batch_engine import BatchFairEngine
from repro.engine.dispatch import available_engines, pick_engine, simulate, simulate_batch
from repro.engine.validation import compare_engines, makespan_samples

__all__ = [
    "SimulationResult",
    "SlotEngine",
    "FairEngine",
    "WindowEngine",
    "BatchFairEngine",
    "simulate",
    "simulate_batch",
    "pick_engine",
    "available_engines",
    "compare_engines",
    "makespan_samples",
]
