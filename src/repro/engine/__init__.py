"""Simulation engines.

Three engines produce makespan samples of the *same* stochastic process — the
paper's channel model — at very different costs:

* :class:`~repro.engine.slot_engine.SlotEngine` — wraps the exact node-level
  :class:`~repro.channel.radio_network.RadioNetwork`; O(active nodes) per
  slot.  Works for every protocol and is the reference the other engines are
  validated against.
* :class:`~repro.engine.fair_engine.FairEngine` — for
  :class:`~repro.protocols.base.FairProtocol`: because every active station
  transmits with the same probability ``p``, the slot outcome distribution is
  ``P(success) = m·p·(1−p)^{m−1}``, ``P(silence) = (1−p)^m``, so one uniform
  draw per slot suffices.  O(1) per slot regardless of k.
* :class:`~repro.engine.window_engine.WindowEngine` — for
  :class:`~repro.protocols.base.WindowedProtocol`: a whole contention window
  is one balls-in-bins experiment, vectorised with numpy.  O(window) work in
  numpy per window, which in practice makes runs with k = 10⁷ take seconds.

:func:`simulate` dispatches to the cheapest applicable engine, and
:mod:`repro.engine.validation` provides the statistical cross-checks used by
the test suite and the engine ablation benchmark.
"""

from repro.engine.result import SimulationResult
from repro.engine.slot_engine import SlotEngine
from repro.engine.fair_engine import FairEngine
from repro.engine.window_engine import WindowEngine
from repro.engine.dispatch import pick_engine, simulate
from repro.engine.validation import compare_engines, makespan_samples

__all__ = [
    "SimulationResult",
    "SlotEngine",
    "FairEngine",
    "WindowEngine",
    "simulate",
    "pick_engine",
    "compare_engines",
    "makespan_samples",
]
