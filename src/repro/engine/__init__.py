"""Simulation engines and the capability registry that picks between them.

Seven engines produce makespan samples of the *same* stochastic process — the
paper's channel model — at very different costs.  Which engine serves which
request is not hard-coded anywhere: every engine class declares an
:class:`~repro.engine.registry.EngineCapabilities` record (the protocol
*kinds* it can serve, the channel feedback models it implements, whether it
supports staggered arrivals, whether it is *batched*, whether it collects
traces) and registers itself with the :mod:`repro.engine.registry`; every
protocol declares its kind
(:attr:`~repro.protocols.base.Protocol.protocol_kind`).  Dispatch, sweep
batch planning, the scenario layer and the CLI's ``--engine`` choices are all
queries against those declarations.  This docstring is the engine-selection
guide: what each engine declares, what it costs, and when the registry
chooses it.

* :class:`~repro.engine.slot_engine.SlotEngine` — wraps the exact node-level
  :class:`~repro.channel.radio_network.RadioNetwork`.  **Declares:** every
  protocol kind, every feedback model, arrivals, traces — it is the
  reference the reduced engines are validated against, and carries the
  highest cost rank so ``"auto"`` falls back to it only when no reduction
  applies.  **Cost:** O(active nodes) per slot.
* :class:`~repro.engine.fair_engine.FairEngine` — **declares:** kind
  ``"fair"``, the paper's channel, traces.  The contract behind the kind:
  every active station transmits with the same probability ``p`` and updates
  state only on commonly-observed feedback, so the slot outcome is
  ``Binomial(m, p)``-distributed — ``P(success) = m·p·(1−p)^{m−1}``,
  ``P(silence) = (1−p)^m`` — and one uniform draw per slot suffices.
  **Cost:** O(1) per slot regardless of k.  **Picked when:**
  ``engine="auto"`` for a fair protocol on the paper's channel (single and
  traced runs).
* :class:`~repro.engine.window_engine.WindowEngine` — **declares:** kind
  ``"windowed"``, the paper's channel, traces.  The contract: stations
  commit to one uniform slot per contention window and the window schedule
  is a pure function of the window index; a whole window is then one
  balls-in-bins experiment.  **Cost:** O(window) numpy work per window (runs
  with k = 10⁷ take seconds).  **Picked when:** ``engine="auto"`` for a
  windowed protocol on the paper's channel.
* :class:`~repro.engine.batch_engine.BatchFairEngine` — **declares:** kind
  ``"fair"``, the paper's channel, *batched* (no traces, no arrivals).  On
  top of the declared capabilities, its ``supports`` hook requires the
  protocol to expose vectorised state via
  :meth:`~repro.protocols.base.FairProtocol.make_batch_state`; protocols
  additionally declaring
  :attr:`~repro.protocols.base.FairProtocol.probability_constant_between_receptions`
  get geometric silence-run skipping.  **Cost:** one vectorised slot step
  for all R replications of a sweep cell at once.
* :class:`~repro.engine.batch_window_engine.BatchWindowEngine` —
  **declares:** kind ``"windowed"``, the paper's channel, *batched* (no
  traces, no arrivals).  Its ``supports`` hook requires a shared schedule
  via
  :meth:`~repro.protocols.base.WindowedProtocol.make_window_batch_state`
  (i.e. a feedback-oblivious window schedule — Exp Back-on/Back-off and the
  whole monotone back-off family qualify).  **Cost:** one multinomial
  occupancy matrix per contention window covering all R live replications,
  with finished replications retired.
* :class:`~repro.engine.megabatch.MegaFairEngine` (``"mega"``) —
  **declares:** kind ``"fair"``, the paper's channel, batched *and*
  ``fuses_cells``: it stacks **all fair cells of a sweep that share one
  protocol class** — every k, every parameterisation — into a single padded
  lockstep kernel with per-row parameters and per-row retirement.  Its
  ``supports`` hook requires the per-row
  :meth:`~repro.protocols.base.FairProtocol.make_fused_batch_state` hook
  and *excludes* protocols declaring
  ``probability_constant_between_receptions`` (slotted ALOHA), for which
  ``BatchFairEngine``'s geometric silence skipping beats any lockstep pass.
  **Cost:** one kernel traversal of the whole group's *global* maximum
  makespan, instead of one per-cell traversal each.
* :class:`~repro.engine.megabatch.MegaWindowEngine` (``"mega-window"``) —
  the same for windowed cells: all cells sharing one window schedule
  (equal :meth:`~repro.protocols.base.WindowedProtocol.fused_schedule_key`)
  iterate the schedule in lockstep, with each cell's occupancy sampled from
  its own stream exactly as ``BatchWindowEngine`` would — fused windowed
  results are bit-identical per cell to the per-cell batch engine.

Batched engines are never chosen by ``engine="auto"`` for single runs; they
serve whole cells.  :func:`repro.experiments.runner.run_sweep` and the
scenario :class:`~repro.scenarios.session.Session` group a cell's seeds into
one :func:`simulate_batch` call whenever the registry's
:func:`~repro.engine.registry.batch_engine_for` — the repository's **one**
batch-eligibility predicate — reports an eligible engine (default; disable
with ``batch=False`` / ``--no-batch``), and batch runs can also be requested
explicitly via ``engine="batch"`` / ``engine="batch-window"``.  Batched runs
are **distributionally identical but not bit-identical** to their per-run
counterparts: the whole batch consumes one random stream derived from the
full seed tuple, so the i-th replication's draws interleave with its
siblings'.  The parity (same makespan mean and quantiles within sampling
tolerance, same solved rate at a binding cap) is pinned by
``tests/engine/test_batch_engine.py`` and
``tests/engine/test_batch_window_engine.py``.

*Fusing* engines go one step further: the scenario
:class:`~repro.scenarios.session.Session` (and therefore ``run_sweep``,
Figure 1 and Table 1) groups every fusable cell of a grid by fuse key and
executes each group as **one** :func:`simulate_megabatch` kernel pass — the
default; disable with ``fuse=False`` / ``--no-fuse``.  Eligibility is the
registry's :func:`~repro.engine.registry.fused_engine_for`.  Fused fair
results are distributionally identical but not bit-identical to
``BatchFairEngine``'s (pinned by ``tests/engine/test_megabatch.py``); each
*cell* consumes its own seed-derived stream in composition-independent
chunks, so a cell's fused results never depend on which siblings it was
fused with — resumed sweeps that re-fuse only the missing cells are
bit-identical to fresh ones.  Fusion is skipped (falling back to per-cell
batching or per-run execution) for: single-run ``engine="auto"`` calls,
``batch=False`` sessions, explicit non-mega engine selectors, non-default
channels, arrival processes, constant-probability protocols (slotted
ALOHA), and factory-only sweep cells on the legacy runner path.

:func:`simulate` dispatches a single run to the cheapest capable engine,
:func:`simulate_batch` runs a whole cell through the eligible batch engine,
:func:`simulate_megabatch` runs a whole fused group through the eligible
mega engine, and :mod:`repro.engine.validation` provides the statistical
cross-checks used by the test suite and the engine ablation benchmark.
"""

from __future__ import annotations

from repro.engine.registry import (
    EngineCapabilities,
    EngineRegistry,
    available_engines,
    batch_engine_for,
    engine_capabilities,
    fused_engine_for,
)
from repro.engine.result import SimulationResult
from repro.engine.slot_engine import SlotEngine
from repro.engine.fair_engine import FairEngine
from repro.engine.window_engine import WindowEngine
from repro.engine.batch_engine import BatchFairEngine
from repro.engine.batch_window_engine import BatchWindowEngine
from repro.engine.megabatch import FusedCell, MegaFairEngine, MegaWindowEngine
from repro.engine.dispatch import pick_engine, simulate, simulate_batch, simulate_megabatch
from repro.engine.validation import compare_engines, makespan_samples

__all__ = [
    "SimulationResult",
    "SlotEngine",
    "FairEngine",
    "WindowEngine",
    "BatchFairEngine",
    "BatchWindowEngine",
    "MegaFairEngine",
    "MegaWindowEngine",
    "FusedCell",
    "EngineCapabilities",
    "EngineRegistry",
    "simulate",
    "simulate_batch",
    "simulate_megabatch",
    "pick_engine",
    "available_engines",
    "batch_engine_for",
    "engine_capabilities",
    "fused_engine_for",
    "compare_engines",
    "makespan_samples",
]
