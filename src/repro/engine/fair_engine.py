"""O(1)-per-slot engine for fair protocols.

A *fair* protocol has every active station transmit with the same probability
``p`` in a slot, and updates its state only on information every active
station observes identically (receptions, slot parity).  Consequently the
number of transmitters in a slot with ``m`` active stations is
``Binomial(m, p)`` and the slot outcome distribution is::

    P(success)   = m * p * (1 - p)^(m - 1)
    P(silence)   = (1 - p)^m
    P(collision) = 1 - P(success) - P(silence)

One uniform draw per slot therefore samples the outcome exactly, and a single
shared protocol instance can stand in for the common state of every active
station.  This reduces the cost of a run from O(k) to O(1) per slot — the
difference between minutes and milliseconds for the network sizes of the
paper's Figure 1 — without changing the distribution of the makespan, which is
what the test suite verifies against the node-level engine.

The uniform stream derives from :class:`repro.util.rng.RandomSource` like
every other engine's, so a single integer seed keys the same machinery
everywhere; draws are pulled in blocks to keep the hot loop as cheap as the
stdlib generator this engine historically used.

Which station delivers in a successful slot is irrelevant for the makespan
(they are exchangeable), so station identities are not tracked.
"""

from __future__ import annotations

from repro.channel.model import ChannelModel, Observation, SlotOutcome
from repro.channel.trace import ExecutionTrace, SlotRecord
from repro.engine.registry import EngineCapabilities, check_engine_channel, register_engine
from repro.engine.result import SimulationResult
from repro.protocols.base import FairProtocol
from repro.util.rng import RandomSource
from repro.util.validation import check_positive_int

__all__ = ["FairEngine"]

#: Uniform draws are pulled from the numpy generator in blocks of this size:
#: a scalar ``Generator.random()`` call costs several times a
#: ``random.Random.random()`` call, but a block amortises the dispatch
#: overhead to well below it.  Runs shorter than one block waste the surplus
#: draws; at 10 runs per cell that is noise next to the per-slot loop.
_DRAW_BLOCK = 1024


@register_engine
class FairEngine:
    """Simulate a :class:`FairProtocol` with one random draw per slot."""

    name = "fair"

    #: Fair protocols on the paper's channel, one draw per slot; collects
    #: traces, so it is the per-run *and* the traced engine for fair
    #: protocols.  Cheapest rank: ``"auto"`` prefers it whenever it is exact.
    capabilities = EngineCapabilities(
        protocol_kinds=frozenset({"fair"}),
        traces=True,
        cost_rank=10,
    )

    def __init__(self, channel: ChannelModel | None = None, max_slots_factor: int = 10_000) -> None:
        self.channel = check_engine_channel(type(self), channel)
        self.max_slots_factor = check_positive_int("max_slots_factor", max_slots_factor)

    def simulate(
        self,
        protocol: FairProtocol,
        k: int,
        seed: int = 0,
        max_slots: int | None = None,
        trace: ExecutionTrace | None = None,
    ) -> SimulationResult:
        """Run one batched (static) k-selection instance."""
        check_positive_int("k", k)
        if not isinstance(protocol, FairProtocol):
            raise TypeError(
                f"FairEngine requires a FairProtocol, got {type(protocol).__name__}"
            )
        if protocol.state_depends_on_own_transmission:
            raise ValueError(
                f"{type(protocol).__name__} declares per-station state that depends on its own "
                "transmissions; the shared-state reduction of FairEngine does not apply"
            )

        shared_state = protocol.spawn()
        cap = max_slots if max_slots is not None else self.max_slots_factor * k
        # Like every other engine, the random stream derives from a
        # RandomSource so one integer seed keys the whole repository's
        # randomness machinery; draws come in blocks to keep the per-slot
        # cost below a scalar numpy call.
        generator = RandomSource(seed=seed).generator
        block = generator.random(_DRAW_BLOCK)
        block_index = 0

        remaining = k
        slot = 0
        successes = collisions = silences = 0
        last_delivery = -1

        while remaining > 0:
            if slot >= cap:
                return self._unsolved(protocol, k, slot, successes, collisions, silences, seed)
            p = shared_state.transmission_probability(slot)
            if p <= 0.0:
                probability_success = 0.0
                probability_silence = 1.0
            elif p >= 1.0:
                probability_success = 1.0 if remaining == 1 else 0.0
                probability_silence = 0.0
            else:
                q = 1.0 - p
                q_pow = q ** (remaining - 1)
                probability_success = remaining * p * q_pow
                probability_silence = q_pow * q

            if block_index == _DRAW_BLOCK:
                block = generator.random(_DRAW_BLOCK)
                block_index = 0
            draw = block[block_index]
            block_index += 1
            if draw < probability_success:
                outcome = SlotOutcome.SUCCESS
                successes += 1
                remaining -= 1
                last_delivery = slot
            elif draw < probability_success + probability_silence:
                outcome = SlotOutcome.SILENCE
                silences += 1
            else:
                outcome = SlotOutcome.COLLISION
                collisions += 1

            # Feedback as seen by a surviving active station: it receives the
            # delivered message on a success and hears noise otherwise.  Fair
            # protocols' state must not depend on own transmissions, so the
            # `transmitted` flag is reported as False.
            shared_state.notify(
                Observation(
                    slot=slot,
                    transmitted=False,
                    received=outcome is SlotOutcome.SUCCESS,
                    delivered=False,
                )
            )
            if trace is not None:
                transmitters = 1 if outcome is SlotOutcome.SUCCESS else (
                    0 if outcome is SlotOutcome.SILENCE else 2
                )
                trace.append(
                    SlotRecord(
                        slot=slot,
                        transmitters=transmitters,
                        outcome=outcome,
                        active_before=remaining + (1 if outcome is SlotOutcome.SUCCESS else 0),
                    )
                )
            slot += 1

        return SimulationResult(
            solved=True,
            makespan=last_delivery + 1,
            k=k,
            slots_simulated=slot,
            successes=successes,
            collisions=collisions,
            silences=silences,
            protocol=protocol.name,
            engine=self.name,
            seed=seed,
        )

    def _unsolved(
        self,
        protocol: FairProtocol,
        k: int,
        slots: int,
        successes: int,
        collisions: int,
        silences: int,
        seed: int,
    ) -> SimulationResult:
        return SimulationResult(
            solved=False,
            makespan=None,
            k=k,
            slots_simulated=slots,
            successes=successes,
            collisions=collisions,
            silences=silences,
            protocol=protocol.name,
            engine=self.name,
            seed=seed,
        )
