"""Vectorised batch-replication engine for fair protocols.

:class:`~repro.engine.fair_engine.FairEngine` already reduces one run of a
fair protocol to one uniform draw per slot, but a sweep cell still pays one
Python-interpreted loop per replication: R replications of a (protocol, k)
cell cost R × makespan interpreter iterations, each with a Python call into
``transmission_probability`` and a scalar RNG draw.  This engine runs **all R
replications of a cell in lockstep** instead:

* the protocol exposes its shared state as R-sized numpy arrays through
  :meth:`~repro.protocols.base.FairProtocol.make_batch_state`;
* every slot makes *one* ``Generator.random(R)`` draw and classifies all R
  outcomes at once from the closed-form ``Binomial(m, p)`` slot-outcome
  probabilities (``P(success) = m·p·(1−p)^{m−1}``, ``P(silence) = (1−p)^m``);
* ``remaining``/makespan updates are masked array operations, and finished
  replications are retired from the batch, so the live batch shrinks as runs
  solve and the per-slot cost tracks the number of *unsolved* replications.

Protocols that additionally declare
:attr:`~repro.protocols.base.FairProtocol.probability_constant_between_receptions`
(slotted ALOHA) get **geometric silence-run skipping**: between two receptions
their slot outcomes are i.i.d., so the length of every silent stretch is
sampled directly from a geometric distribution and the engine only touches the
non-silent slots.  Replications then advance to different slot indices, which
is sound precisely because the flag guarantees the probability does not depend
on the slot.

The lockstep batch consumes a *single* random stream derived from the whole
seed tuple, so its runs cannot be bit-identical to the per-run engines (the
i-th replication's draws interleave with its siblings'); the batch engine is
therefore validated **distributionally** against :class:`FairEngine` — same
makespan mean and quantiles within sampling tolerance, same solved rate at the
slot cap — by ``tests/engine/test_batch_engine.py``, in the same spirit as the
cross-engine checks of :mod:`repro.engine.validation`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.channel.model import ChannelModel
from repro.channel.trace import ExecutionTrace
from repro.engine.registry import EngineCapabilities, check_engine_channel, register_engine
from repro.engine.result import SimulationResult
from repro.obs import REGISTRY
from repro.protocols.base import FairBatchState, FairProtocol, Protocol
from repro.util.validation import check_positive_int

__all__ = ["BatchFairEngine"]

# Profiling hooks shared by the batched engines: loop iterations are counted
# locally inside the kernels and published once per simulate_batch call, so
# the hot loops carry no per-slot instrumentation cost.
_M_KERNEL = REGISTRY.counter(
    "repro_batch_kernel_iterations_total",
    "Vectorised kernel loop iterations, by engine and loop kind.",
    ("engine", "kind"),
)
_M_RETIRED = REGISTRY.counter(
    "repro_batch_replications_retired_total",
    "Replications retired from live batches, by engine.",
    ("engine",),
)


@dataclass
class _BatchAccumulator:
    """Final per-replication statistics, indexed by the original batch slot."""

    solved: np.ndarray
    makespan: np.ndarray
    slots: np.ndarray
    successes: np.ndarray
    collisions: np.ndarray
    silences: np.ndarray

    @classmethod
    def empty(cls, reps: int) -> "_BatchAccumulator":
        return cls(
            solved=np.zeros(reps, dtype=bool),
            makespan=np.zeros(reps, dtype=np.int64),
            slots=np.zeros(reps, dtype=np.int64),
            successes=np.zeros(reps, dtype=np.int64),
            collisions=np.zeros(reps, dtype=np.int64),
            silences=np.zeros(reps, dtype=np.int64),
        )


class _LiveBatch:
    """The still-running replications: counters plus the protocol state."""

    def __init__(self, k: int, reps: int, state: FairBatchState) -> None:
        self.orig = np.arange(reps)
        self.remaining = np.full(reps, k, dtype=np.int64)
        self.successes = np.zeros(reps, dtype=np.int64)
        self.collisions = np.zeros(reps, dtype=np.int64)
        self.silences = np.zeros(reps, dtype=np.int64)
        self.slots = np.zeros(reps, dtype=np.int64)
        self.state = state

    @property
    def size(self) -> int:
        return int(self.orig.size)

    def retire(self, mask: np.ndarray, out: _BatchAccumulator, solved: bool) -> None:
        """Write final stats for the masked replications and drop them."""
        idx = self.orig[mask]
        out.solved[idx] = solved
        out.makespan[idx] = self.slots[mask] if solved else 0
        out.slots[idx] = self.slots[mask]
        out.successes[idx] = self.successes[mask]
        out.collisions[idx] = self.collisions[mask]
        out.silences[idx] = self.silences[mask]
        keep = ~mask
        self.orig = self.orig[keep]
        self.remaining = self.remaining[keep]
        self.successes = self.successes[keep]
        self.collisions = self.collisions[keep]
        self.silences = self.silences[keep]
        self.slots = self.slots[keep]
        self.state.compact(keep)


def _outcome_probabilities(
    p: np.ndarray, remaining: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-replication ``(P(success), P(silence))`` for transmission prob ``p``.

    Mirrors the scalar piecewise cases of :class:`FairEngine`: ``p <= 0`` makes
    every slot silent, ``p >= 1`` succeeds only with a single station left.
    """
    interior = (p > 0.0) & (p < 1.0)
    if interior.all():
        q = 1.0 - p
        q_pow = q ** (remaining - 1)
        return remaining * p * q_pow, q_pow * q
    q = np.where(interior, 1.0 - p, 0.5)  # placeholder base keeps ** finite
    q_pow = q ** (remaining - 1)
    probability_success = np.where(interior, remaining * p * q_pow, 0.0)
    probability_silence = np.where(interior, q_pow * q, 0.0)
    probability_silence = np.where(p <= 0.0, 1.0, probability_silence)
    probability_success = np.where(p >= 1.0, (remaining == 1).astype(float), probability_success)
    return probability_success, probability_silence


@register_engine
class BatchFairEngine:
    """Simulate all replications of a fair-protocol cell in numpy lockstep."""

    name = "batch"

    #: Batched engine for fair protocols on the paper's channel: no traces
    #: (outcomes are classified in bulk), no arrivals (slot-0 starts assumed).
    #: Eligibility of a *specific* protocol instance is :meth:`supports`.
    capabilities = EngineCapabilities(
        protocol_kinds=frozenset({"fair"}),
        batched=True,
        cost_rank=50,
    )

    def __init__(self, channel: ChannelModel | None = None, max_slots_factor: int = 10_000) -> None:
        self.channel = check_engine_channel(type(self), channel)
        self.max_slots_factor = check_positive_int("max_slots_factor", max_slots_factor)

    # ------------------------------------------------------------ eligibility
    @classmethod
    def supports(cls, protocol: Protocol) -> bool:
        """Whether ``protocol`` can be simulated by the batch engine.

        The per-protocol half of eligibility, layered by the registry's
        :func:`~repro.engine.registry.batch_engine_for` on top of the
        declared :class:`EngineCapabilities`: the protocol must declare the
        fair kind, honour the fair-engine contract *and* provide a
        vectorised batch state.  A fair protocol that does not override
        :meth:`~repro.protocols.base.FairProtocol.make_batch_state` silently
        takes the per-run path in sweeps.
        """
        if getattr(protocol, "protocol_kind", "generic") not in cls.capabilities.protocol_kinds:
            return False
        return (
            not protocol.state_depends_on_own_transmission
            and protocol.make_batch_state(1) is not None
        )

    # ----------------------------------------------------------------- public
    def simulate(
        self,
        protocol: FairProtocol,
        k: int,
        seed: int = 0,
        max_slots: int | None = None,
        trace: ExecutionTrace | None = None,
    ) -> SimulationResult:
        """Run one instance as a batch of size one (the common engine API).

        Single runs gain nothing from vectorisation — use
        :meth:`simulate_batch` for whole cells; this method exists so the
        ``engine="batch"`` selector works through the normal front door.
        """
        if trace is not None:
            raise ValueError(
                "BatchFairEngine does not collect traces (outcomes are classified "
                "in bulk, not slot records); use FairEngine for traced runs"
            )
        return self.simulate_batch(protocol, k, [seed], max_slots=max_slots)[0]

    def simulate_batch(
        self,
        protocol: FairProtocol,
        k: int,
        seeds: Sequence[int],
        max_slots: int | None = None,
    ) -> list[SimulationResult]:
        """Simulate ``len(seeds)`` independent replications of one cell.

        Returns one :class:`SimulationResult` per seed, in order.  The seeds
        jointly key the batch's random stream (the i-th result is *not* the
        run :class:`FairEngine` would produce from ``seeds[i]``; the batch is
        a different — distributionally identical — sampling of the process).
        """
        check_positive_int("k", k)
        if not isinstance(protocol, FairProtocol):
            raise TypeError(
                f"BatchFairEngine requires a FairProtocol, got {type(protocol).__name__}"
            )
        if protocol.state_depends_on_own_transmission:
            raise ValueError(
                f"{type(protocol).__name__} declares per-station state that depends on its own "
                "transmissions; the shared-state reduction of the batch engine does not apply"
            )
        seed_list = [int(seed) for seed in seeds]
        if not seed_list:
            raise ValueError("simulate_batch needs at least one seed")
        state = protocol.spawn().make_batch_state(len(seed_list))
        if state is None:
            raise ValueError(
                f"{type(protocol).__name__} provides no vectorised batch state "
                "(make_batch_state returned None); use FairEngine instead"
            )
        cap = max_slots if max_slots is not None else self.max_slots_factor * k
        rng = np.random.default_rng(np.random.SeedSequence(seed_list))

        live = _LiveBatch(k, len(seed_list), state)
        out = _BatchAccumulator.empty(len(seed_list))
        if protocol.probability_constant_between_receptions:
            iterations = self._run_skipping(live, out, cap, rng)
            _M_KERNEL.labels(engine=self.name, kind="skip").inc(iterations)
        else:
            iterations = self._run_lockstep(live, out, cap, rng)
            _M_KERNEL.labels(engine=self.name, kind="lockstep").inc(iterations)
        _M_RETIRED.labels(engine=self.name).inc(len(seed_list))

        return [
            SimulationResult(
                solved=bool(out.solved[index]),
                makespan=int(out.makespan[index]) if out.solved[index] else None,
                k=k,
                slots_simulated=int(out.slots[index]),
                successes=int(out.successes[index]),
                collisions=int(out.collisions[index]),
                silences=int(out.silences[index]),
                protocol=protocol.name,
                engine=self.name,
                seed=seed_list[index],
                metadata={"batch_reps": len(seed_list)},
            )
            for index in range(len(seed_list))
        ]

    # -------------------------------------------------------------- internals
    def _run_lockstep(
        self,
        live: _LiveBatch,
        out: _BatchAccumulator,
        cap: int,
        rng: np.random.Generator,
    ) -> int:
        """Slot-by-slot lockstep: every live replication shares the slot index.

        Returns the number of loop iterations (vectorised slots stepped).
        """
        slot = 0
        while live.size:
            if slot >= cap:
                live.slots[:] = cap
                live.retire(np.ones(live.size, dtype=bool), out, solved=False)
                break
            p = live.state.probabilities(slot)
            probability_success, probability_silence = _outcome_probabilities(p, live.remaining)
            draw = rng.random(live.size)
            success = draw < probability_success
            silence = ~success & (draw < probability_success + probability_silence)
            collision = ~(success | silence)
            live.successes += success
            live.silences += silence
            live.collisions += collision
            live.remaining -= success
            live.state.observe_receptions(slot, success)
            slot += 1
            live.slots[:] = slot
            finished = live.remaining == 0
            if finished.any():
                live.retire(finished, out, solved=True)
        return slot

    def _run_skipping(
        self,
        live: _LiveBatch,
        out: _BatchAccumulator,
        cap: int,
        rng: np.random.Generator,
    ) -> int:
        """Event-by-event loop for slot-independent probabilities.

        Each iteration advances every live replication past one silent stretch
        (sampled geometrically) to its next non-silent slot and resolves that
        slot as a success or collision.  Replications may sit at different
        slot indices; the contract flag guarantees that is unobservable.
        Returns the number of loop iterations (events resolved).
        """
        events = 0
        while live.size:
            events += 1
            p = live.state.probabilities(-1)
            probability_success, probability_silence = _outcome_probabilities(p, live.remaining)

            # Replications that can never progress (p == 0) burn silently to
            # the cap in one step.
            stuck = probability_silence >= 1.0
            if stuck.any():
                live.silences[stuck] += cap - live.slots[stuck]
                live.slots[stuck] = cap
                live.retire(stuck, out, solved=False)
                if not live.size:
                    break
                keep = ~stuck
                probability_success = probability_success[keep]
                probability_silence = probability_silence[keep]

            # Length of the silent stretch before the next non-silent slot:
            # P(gap >= j) = P(silence)^j, sampled by inversion.
            draw = rng.random(live.size)
            with np.errstate(divide="ignore", invalid="ignore"):
                gap = np.floor(np.log(draw) / np.log(probability_silence))
            gap = np.where(probability_silence <= 0.0, 0.0, gap)
            allowed = (cap - live.slots).astype(float)
            hits_cap = ~(gap < allowed)  # catches inf/nan from log(0) corners
            stretch = np.where(hits_cap, allowed, gap).astype(np.int64)
            live.silences += stretch
            live.slots += stretch
            if hits_cap.any():
                live.retire(hits_cap, out, solved=False)
                if not live.size:
                    break
                keep = ~hits_cap
                probability_success = probability_success[keep]
                probability_silence = probability_silence[keep]

            # The non-silent slot itself: success vs collision, conditioned on
            # the slot not being silent.
            non_silent = 1.0 - probability_silence
            decisive = rng.random(live.size)
            success = decisive * non_silent < probability_success
            live.successes += success
            live.collisions += ~success
            live.remaining -= success
            live.state.observe_receptions(-1, success)
            live.slots += 1
            finished = live.remaining == 0
            if finished.any():
                live.retire(finished, out, solved=True)
                if not live.size:
                    break
            capped = live.slots >= cap
            if capped.any():
                live.retire(capped, out, solved=False)
        return events
