"""Exact node-level engine: thin adapter around :class:`RadioNetwork`.

This engine works for every protocol and every channel configuration, at
O(active nodes) cost per slot.  It is the semantic reference: the specialised
fair and window engines are validated against it by
:mod:`repro.engine.validation` and by the test suite.
"""

from __future__ import annotations

from repro.channel.arrivals import ArrivalProcess, BatchArrival
from repro.channel.model import ChannelModel
from repro.channel.radio_network import RadioNetwork
from repro.channel.trace import ExecutionTrace
from repro.engine.registry import EngineCapabilities, check_engine_channel, register_engine
from repro.engine.result import SimulationResult
from repro.protocols.base import Protocol
from repro.util.validation import check_positive_int

__all__ = ["SlotEngine"]


@register_engine
class SlotEngine:
    """Simulate any protocol by instantiating every station explicitly."""

    name = "slot"

    #: The reference engine: every protocol kind, every feedback model,
    #: staggered arrivals and traces — at O(active nodes) per slot, so it is
    #: the most expensive (highest cost rank) and ``"auto"`` falls back to it
    #: only when no reduction applies.
    capabilities = EngineCapabilities(
        protocol_kinds=None,
        channels=None,
        arrivals=True,
        traces=True,
        cost_rank=90,
    )

    def __init__(self, channel: ChannelModel | None = None, max_slots_factor: int = 10_000) -> None:
        self.channel = check_engine_channel(type(self), channel)
        self.max_slots_factor = check_positive_int("max_slots_factor", max_slots_factor)

    def simulate(
        self,
        protocol: Protocol,
        k: int,
        seed: int = 0,
        max_slots: int | None = None,
        trace: ExecutionTrace | None = None,
        arrivals: ArrivalProcess | None = None,
    ) -> SimulationResult:
        """Run one instance and return its :class:`SimulationResult`.

        Parameters
        ----------
        protocol:
            Prototype protocol; one copy is spawned per station.
        k:
            Number of messages (ignored if ``arrivals`` is given explicitly,
            in which case the arrival process defines the workload).
        seed:
            Root seed for the run.
        max_slots:
            Safety cap; defaults to ``max_slots_factor * k``.
        trace:
            Optional :class:`ExecutionTrace` to fill with per-slot records.
        arrivals:
            Arrival process; defaults to the paper's batched arrivals.
        """
        check_positive_int("k", k)
        process = arrivals if arrivals is not None else BatchArrival(k)
        network = RadioNetwork(
            protocol=protocol,
            arrivals=process,
            channel=self.channel,
            seed=seed,
            max_slots=max_slots if max_slots is not None else self.max_slots_factor * process.total_messages,
        )
        raw = network.run(trace=trace, collect_node_summaries=arrivals is not None)
        metadata: dict[str, object] = {"arrivals": process.describe()["type"]}
        if arrivals is not None:
            # Per-message delivery latency (delivery slot − arrival slot) is
            # the quantity a dynamic analysis would bound; expose it so the
            # dynamic experiment can aggregate through the simulate() front
            # door instead of driving RadioNetwork directly.
            metadata["latencies"] = tuple(
                int(summary["delivery_slot"]) - int(summary["activation_slot"])
                for summary in raw.node_summaries
                if summary["delivery_slot"] is not None
                and summary["activation_slot"] is not None
            )
        return SimulationResult(
            solved=raw.solved,
            makespan=raw.makespan,
            k=raw.k,
            slots_simulated=raw.slots_simulated,
            successes=raw.successes,
            collisions=raw.collisions,
            silences=raw.silences,
            protocol=protocol.name,
            engine=self.name,
            seed=seed,
            metadata=metadata,
        )
