"""Engine selection and the one-call simulation front door.

Most callers (examples, experiments, tests) just want "run protocol P with k
contenders and seed s"; :func:`simulate` picks the cheapest engine that is
exact for the given protocol and returns a
:class:`~repro.engine.result.SimulationResult`.

Every selection decision here is a query against the capability-driven
:mod:`repro.engine.registry`: engines declare what they can serve (protocol
kinds, channels, arrivals, batching, traces) and protocols declare their
kind, so this module holds **no** eligibility logic of its own — it resolves
names through the registry and instantiates the chosen engine class.

Dynamic workloads go through the same front door: passing an
``arrivals=`` process (e.g. :class:`~repro.channel.arrivals.PoissonArrival`)
routes the run to the node-level :class:`SlotEngine` — the only registered
engine declaring arrival support — so the runner, CLI and sweep machinery
need no special-casing for the paper's open dynamic problem.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.channel.arrivals import ArrivalProcess
from repro.channel.model import ChannelModel
from repro.channel.trace import ExecutionTrace

# Importing the engine modules registers each engine with the registry.
from repro.engine.batch_engine import BatchFairEngine  # noqa: F401  (registration)
from repro.engine.batch_window_engine import BatchWindowEngine  # noqa: F401
from repro.engine.fair_engine import FairEngine  # noqa: F401
from repro.engine.megabatch import FusedCell, MegaFairEngine, MegaWindowEngine  # noqa: F401
from repro.engine.registry import (
    available_engines,
    batch_engine_for,
    engine_capabilities,
    engine_class,
    engines_for,
    fused_engine_for,
    pick_engine_name,
)
from repro.engine.result import SimulationResult
from repro.engine.slot_engine import SlotEngine  # noqa: F401
from repro.engine.window_engine import WindowEngine  # noqa: F401
from repro.obs import REGISTRY, span
from repro.protocols.base import Protocol

__all__ = [
    "available_engines",
    "batch_engine_for",
    "engine_capabilities",
    "fused_engine_for",
    "pick_engine",
    "simulate",
    "simulate_batch",
    "simulate_megabatch",
]


# Engine-layer metric families, fed at this front door: every session /
# sweep / service execution funnels through simulate() or simulate_batch(),
# so counting here covers all engines without per-slot hooks.
_M_RUNS = REGISTRY.counter(
    "repro_engine_runs_total", "Simulation runs completed, by engine.", ("engine",)
)
_M_SLOTS = REGISTRY.counter(
    "repro_engine_slots_total", "Channel slots simulated, by engine.", ("engine",)
)
_M_BATCHES = REGISTRY.counter(
    "repro_engine_batches_total",
    "Vectorised simulate_batch kernel calls, by engine.",
    ("engine",),
)


def _instantiate(name: str, channel: ChannelModel | None):
    cls = engine_class(name)
    return cls(channel=channel) if channel is not None else cls()


def pick_engine(
    protocol: Protocol,
    engine: str = "auto",
    channel: ChannelModel | None = None,
    arrivals: ArrivalProcess | None = None,
) -> Any:
    """Instantiate the engine to use for ``protocol``.

    ``engine`` may be ``"auto"`` (default) or any name from
    :func:`~repro.engine.registry.available_engines`.  ``"auto"`` selects
    the cheapest registered engine whose declared capabilities are exact for
    the protocol's kind, the channel and the arrival process — the fair
    engine for fair protocols, the window engine for windowed protocols, and
    the node-level engine otherwise (or whenever a non-default channel or an
    arrival process is requested, since the reduced engines only implement
    the paper's channel with slot-0 arrivals).

    ``"auto"`` never selects a *batched* engine: for a single run the batch
    reduction has nothing to vectorise, and only the per-run engines collect
    traces.  Sweeps are where batching pays off —
    :func:`repro.experiments.runner.run_sweep` groups a cell's replications
    into one :func:`simulate_batch` call whenever
    :func:`~repro.engine.registry.batch_engine_for` reports an eligible
    batch engine.

    Explicit choices are validated against the registry: an unknown name, an
    engine that cannot serve the requested channel or arrival process, or an
    engine whose declared protocol kinds exclude this protocol are all
    rejected with the capable engines enumerated.
    """
    name = pick_engine_name(protocol, engine=engine, channel=channel, arrivals=arrivals)
    return _instantiate(name, channel)


def simulate(
    protocol: Protocol,
    k: int,
    seed: int = 0,
    engine: str = "auto",
    channel: ChannelModel | None = None,
    max_slots: int | None = None,
    trace: ExecutionTrace | None = None,
    arrivals: ArrivalProcess | None = None,
) -> SimulationResult:
    """Simulate one k-selection instance and return its result.

    This is the main entry point of the library::

        from repro import OneFailAdaptive, simulate

        result = simulate(OneFailAdaptive(), k=1000, seed=42)
        print(result.makespan, result.steps_per_node)

    Static k-selection (the paper's setting) is the default; dynamic
    workloads pass an explicit arrival process::

        from repro import PoissonArrival

        result = simulate(OneFailAdaptive(), k=64, seed=42,
                          arrivals=PoissonArrival(k=64, rate=0.1))
        print(result.metadata["latencies"])  # per-message delivery latencies
    """
    if arrivals is not None and arrivals.total_messages != k:
        raise ValueError(
            f"k={k} disagrees with the arrival process, which injects "
            f"{arrivals.total_messages} messages; pass k=arrivals.total_messages"
        )
    chosen = pick_engine(protocol, engine=engine, channel=channel, arrivals=arrivals)
    with span("engine.run", k=k) as run_span:
        if arrivals is not None:
            result = chosen.simulate(
                protocol, k, seed=seed, max_slots=max_slots, trace=trace, arrivals=arrivals
            )
        else:
            result = chosen.simulate(protocol, k, seed=seed, max_slots=max_slots, trace=trace)
        run_span["engine"] = result.engine
    _M_RUNS.labels(engine=result.engine).inc()
    _M_SLOTS.labels(engine=result.engine).inc(result.slots_simulated)
    return result


def simulate_batch(
    protocol: Protocol,
    k: int,
    seeds: Sequence[int],
    engine: str = "auto",
    channel: ChannelModel | None = None,
    max_slots: int | None = None,
) -> list[SimulationResult]:
    """Simulate many replications of one (protocol, k) cell in a single batch.

    Front door to the *batched* engines for callers holding a whole cell's
    seeds (the sweep runner, benchmarks).  The registry's
    :func:`~repro.engine.registry.batch_engine_for` — the repository's one
    batch-eligibility predicate — selects the batch engine that can serve
    the cell (``BatchFairEngine`` for fair protocols,
    ``BatchWindowEngine`` for windowed ones); callers that need a silent
    fallback check eligibility with the same query first and route
    ineligible cells through per-run :func:`simulate` calls.
    """
    name = batch_engine_for(protocol, engine=engine, channel=channel)
    if name is None:
        # Diagnose precisely: an unknown or per-run selector is a selector
        # problem, not a missing kernel.  engine_capabilities raises the
        # enumerating unknown-engine error for typos.
        if engine != "auto" and not engine_capabilities(engine).batched:
            raise ValueError(
                f"engine {engine!r} is not a batched engine; batched engines: "
                f"{engines_for(batched=True)} (or 'auto')"
            )
        raise ValueError(
            f"no batch engine can serve {type(protocol).__name__} "
            f"(kind {getattr(protocol, 'protocol_kind', 'generic')!r}) with "
            f"engine={engine!r} and channel={channel!r}; batch-eligible protocols "
            "declare a vectorised kernel via make_batch_state / "
            "make_window_batch_state and run on the paper's channel"
        )
    chosen = _instantiate(name, channel)
    with span("engine.batch", engine=name, k=k, replications=len(seeds)):
        results = chosen.simulate_batch(protocol, k, seeds, max_slots=max_slots)
    _M_BATCHES.labels(engine=name).inc()
    _M_RUNS.labels(engine=name).inc(len(results))
    _M_SLOTS.labels(engine=name).inc(sum(result.slots_simulated for result in results))
    return results


def simulate_megabatch(
    cells: Sequence[FusedCell],
    engine: str = "auto",
    channel: ChannelModel | None = None,
) -> list[list[SimulationResult]]:
    """Simulate a whole group of fused (protocol, k) cells in one kernel pass.

    Front door to the *fusing* engines for callers holding an entire sweep
    group (the session planner, benchmarks): every cell's replications enter
    one padded lockstep kernel and retire row by row, so the group costs one
    kernel traversal of the global maximum makespan instead of one per cell.

    All cells must share one fuse key (same protocol class for fair cells,
    same window schedule for windowed ones) — the engine rejects mixed
    groups.  Eligibility is resolved through the registry's
    :func:`~repro.engine.registry.fused_engine_for` predicate against the
    first cell's protocol; callers needing a silent fallback check the same
    query first and route unfusable cells through :func:`simulate_batch` or
    per-run :func:`simulate` calls.  Returns one result list per cell, in
    input order; each cell's results are independent of the group's
    composition, so re-fusing a subset (e.g. on sweep resume) reproduces the
    original results bit for bit.
    """
    if not cells:
        raise ValueError("simulate_megabatch needs at least one fused cell")
    protocol = cells[0].protocol
    name = fused_engine_for(protocol, engine=engine, channel=channel)
    if name is None:
        if engine != "auto" and not engine_capabilities(engine).fuses_cells:
            raise ValueError(
                f"engine {engine!r} is not a fusing engine; fusing engines: "
                f"{engines_for(fuses_cells=True)} (or 'auto')"
            )
        raise ValueError(
            f"no fusing engine can serve {type(protocol).__name__} "
            f"(kind {getattr(protocol, 'protocol_kind', 'generic')!r}) with "
            f"engine={engine!r} and channel={channel!r}; fusable protocols "
            "declare per-row kernels via make_fused_batch_state / "
            "fused_schedule_key and run on the paper's channel"
        )
    chosen = _instantiate(name, channel)
    replications = sum(len(cell.seeds) for cell in cells)
    with span("engine.megabatch", engine=name, cells=len(cells), replications=replications):
        results = chosen.simulate_fused(cells)
    _M_BATCHES.labels(engine=name).inc()
    _M_RUNS.labels(engine=name).inc(replications)
    _M_SLOTS.labels(engine=name).inc(
        sum(result.slots_simulated for cell_results in results for result in cell_results)
    )
    return results
