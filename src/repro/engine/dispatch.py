"""Engine selection and the one-call simulation front door.

Most callers (examples, experiments, tests) just want "run protocol P with k
contenders and seed s"; :func:`simulate` picks the cheapest engine that is
exact for the given protocol class and returns a
:class:`~repro.engine.result.SimulationResult`.

Dynamic workloads go through the same front door: passing an
``arrivals=`` process (e.g. :class:`~repro.channel.arrivals.PoissonArrival`)
routes the run to the node-level :class:`SlotEngine`, the only engine whose
semantics cover staggered arrivals, so the runner, CLI and sweep machinery
need no special-casing for the paper's open dynamic problem.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.channel.arrivals import ArrivalProcess
from repro.channel.model import ChannelModel
from repro.channel.trace import ExecutionTrace
from repro.engine.batch_engine import BatchFairEngine
from repro.engine.fair_engine import FairEngine
from repro.engine.result import SimulationResult
from repro.engine.slot_engine import SlotEngine
from repro.engine.window_engine import WindowEngine
from repro.protocols.base import FairProtocol, Protocol, WindowedProtocol

__all__ = ["available_engines", "pick_engine", "simulate", "simulate_batch"]

_ENGINES = {
    "slot": SlotEngine,
    "fair": FairEngine,
    "window": WindowEngine,
    "batch": BatchFairEngine,
}


def available_engines() -> list[str]:
    """Valid ``engine=`` selectors: ``"auto"`` plus every registered engine.

    This is the single source of truth for engine choices — the CLI and the
    scenario layer derive their accepted values from it, so adding an engine
    to ``_ENGINES`` propagates everywhere.
    """
    return ["auto", *sorted(_ENGINES)]


def pick_engine(
    protocol: Protocol,
    engine: str = "auto",
    channel: ChannelModel | None = None,
    arrivals: ArrivalProcess | None = None,
):
    """Instantiate the engine to use for ``protocol``.

    ``engine`` may be ``"auto"`` (default) or one of ``"slot"``, ``"fair"``,
    ``"window"``, ``"batch"``.  ``"auto"`` selects the cheapest engine that is
    exact for the protocol's class: the fair engine for fair protocols, the
    window engine for windowed protocols, and the node-level engine otherwise
    (or whenever a non-default channel model is requested, since the
    specialised engines only implement the paper's channel).

    ``"auto"`` never selects the batch engine: for a *single* run the batch
    reduction has nothing to vectorise, and only the per-run engines collect
    traces.  Sweeps are where batching pays off —
    :func:`repro.experiments.runner.run_sweep` groups a cell's replications
    into one :func:`simulate_batch` call whenever the protocol is eligible.

    When an explicit ``arrivals`` process is given the node-level engine is
    mandatory — the fair, window and batch reductions assume every station
    starts at slot 0 — so ``engine`` must be ``"auto"`` or ``"slot"``.
    """
    if arrivals is not None and engine not in ("auto", "slot"):
        raise ValueError(
            f"engine {engine!r} does not support arrival processes; only the "
            "node-level 'slot' engine simulates staggered arrivals"
        )
    if engine != "auto":
        try:
            engine_cls = _ENGINES[engine]
        except KeyError:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {sorted(_ENGINES)} or 'auto'"
            ) from None
        return engine_cls(channel=channel) if channel is not None else engine_cls()
    if arrivals is not None:
        return SlotEngine(channel=channel) if channel is not None else SlotEngine()

    default_channel = channel is None or channel == ChannelModel()
    if default_channel and isinstance(protocol, FairProtocol):
        return FairEngine(channel=channel) if channel is not None else FairEngine()
    if default_channel and isinstance(protocol, WindowedProtocol):
        return WindowEngine(channel=channel) if channel is not None else WindowEngine()
    return SlotEngine(channel=channel) if channel is not None else SlotEngine()


def simulate(
    protocol: Protocol,
    k: int,
    seed: int = 0,
    engine: str = "auto",
    channel: ChannelModel | None = None,
    max_slots: int | None = None,
    trace: ExecutionTrace | None = None,
    arrivals: ArrivalProcess | None = None,
) -> SimulationResult:
    """Simulate one k-selection instance and return its result.

    This is the main entry point of the library::

        from repro import OneFailAdaptive, simulate

        result = simulate(OneFailAdaptive(), k=1000, seed=42)
        print(result.makespan, result.steps_per_node)

    Static k-selection (the paper's setting) is the default; dynamic
    workloads pass an explicit arrival process::

        from repro import PoissonArrival

        result = simulate(OneFailAdaptive(), k=64, seed=42,
                          arrivals=PoissonArrival(k=64, rate=0.1))
        print(result.metadata["latencies"])  # per-message delivery latencies
    """
    if arrivals is not None and arrivals.total_messages != k:
        raise ValueError(
            f"k={k} disagrees with the arrival process, which injects "
            f"{arrivals.total_messages} messages; pass k=arrivals.total_messages"
        )
    chosen = pick_engine(protocol, engine=engine, channel=channel, arrivals=arrivals)
    if arrivals is not None:
        return chosen.simulate(
            protocol, k, seed=seed, max_slots=max_slots, trace=trace, arrivals=arrivals
        )
    return chosen.simulate(protocol, k, seed=seed, max_slots=max_slots, trace=trace)


def simulate_batch(
    protocol: Protocol,
    k: int,
    seeds: Sequence[int],
    channel: ChannelModel | None = None,
    max_slots: int | None = None,
) -> list[SimulationResult]:
    """Simulate many replications of one (protocol, k) cell in a single batch.

    Front door to :class:`~repro.engine.batch_engine.BatchFairEngine` for
    callers holding a whole cell's seeds (the sweep runner, benchmarks).  The
    protocol must be batch-eligible (see :meth:`BatchFairEngine.supports`);
    callers that need a silent fallback check eligibility first and route
    ineligible cells through per-run :func:`simulate` calls.
    """
    engine = BatchFairEngine(channel=channel) if channel is not None else BatchFairEngine()
    return engine.simulate_batch(protocol, k, seeds, max_slots=max_slots)
