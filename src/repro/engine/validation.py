"""Statistical cross-validation of the simulation engines.

The specialised engines (fair, window) are mathematically exact reductions of
the node-level simulation; these helpers provide the *empirical* counterpart:
they draw makespan samples from two engines for the same protocol and network
size and compare the samples' means with a two-sample z-test-style criterion.
The test suite uses them with small k and moderate sample counts, and
``benchmarks/bench_engines.py`` uses them to document the speed/fidelity
trade-off (experiment E5 of DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.engine.result import SimulationResult
from repro.protocols.base import Protocol
from repro.util.rng import derive_seeds

__all__ = ["makespan_samples", "compare_engines", "EngineComparison"]


def makespan_samples(
    engine: Any,
    protocol: Protocol,
    k: int,
    runs: int,
    root_seed: int = 0,
) -> list[int]:
    """Collect ``runs`` makespans of ``protocol`` on ``engine`` for size ``k``.

    Raises if any run fails to solve the instance — engine validation is only
    meaningful on solved runs.
    """
    seeds = derive_seeds(root_seed, runs)
    samples: list[int] = []
    for seed in seeds:
        result: SimulationResult = engine.simulate(protocol, k, seed=seed)
        if not result.solved or result.makespan is None:
            raise RuntimeError(
                f"engine {engine.name} failed to solve k={k} with protocol {protocol.name}"
            )
        samples.append(result.makespan)
    return samples


@dataclass(frozen=True)
class EngineComparison:
    """Summary of a two-engine comparison."""

    protocol: str
    k: int
    runs: int
    mean_a: float
    mean_b: float
    std_a: float
    std_b: float
    z_score: float
    compatible: bool

    def summary(self) -> str:
        return (
            f"{self.protocol} k={self.k}: mean_a={self.mean_a:.1f} mean_b={self.mean_b:.1f} "
            f"z={self.z_score:.2f} -> {'compatible' if self.compatible else 'DIVERGENT'}"
        )


def _mean_std(samples: list[int]) -> tuple[float, float]:
    n = len(samples)
    mean = sum(samples) / n
    if n < 2:
        return mean, 0.0
    variance = sum((value - mean) ** 2 for value in samples) / (n - 1)
    return mean, math.sqrt(variance)


def compare_engines(
    engine_a: Any,
    engine_b: Any,
    protocol: Protocol,
    k: int,
    runs: int = 50,
    root_seed: int = 0,
    z_threshold: float = 4.0,
) -> EngineComparison:
    """Compare the makespan distributions produced by two engines.

    The criterion is a two-sample z-score on the means; ``z_threshold = 4``
    keeps the false-alarm probability of a correct pair of engines below
    ~1e-4 per comparison while still flagging any systematic discrepancy of a
    few percent once ``runs`` is in the hundreds.
    """
    samples_a = makespan_samples(engine_a, protocol, k, runs, root_seed=root_seed)
    samples_b = makespan_samples(engine_b, protocol, k, runs, root_seed=root_seed + 1)
    mean_a, std_a = _mean_std(samples_a)
    mean_b, std_b = _mean_std(samples_b)
    pooled = math.sqrt(std_a**2 / len(samples_a) + std_b**2 / len(samples_b))
    if pooled == 0.0:
        z_score = 0.0 if mean_a == mean_b else math.inf
    else:
        z_score = abs(mean_a - mean_b) / pooled
    return EngineComparison(
        protocol=protocol.name,
        k=k,
        runs=runs,
        mean_a=mean_a,
        mean_b=mean_b,
        std_a=std_a,
        std_b=std_b,
        z_score=z_score,
        compatible=z_score <= z_threshold,
    )
