"""Vectorised balls-in-bins engine for windowed protocols.

A :class:`~repro.protocols.base.WindowedProtocol` commits every active station
to one uniformly random slot of each contention window.  With batched arrivals
every station follows the same window schedule, so a window of ``w`` slots
with ``m`` active stations is exactly the balls-in-bins experiment of the
paper's Lemma 1: ``m`` balls dropped uniformly into ``w`` bins, and a station
is delivered iff its bin (slot) holds exactly one ball.

The engine therefore processes a whole window in a handful of numpy
operations (``integers`` + ``bincount``), which makes runs with k = 10⁷ —
the right edge of the paper's Figure 1 — take seconds instead of hours.
"""

from __future__ import annotations

import numpy as np

from repro.channel.model import ChannelModel, SlotOutcome
from repro.channel.trace import ExecutionTrace, SlotRecord
from repro.engine.registry import EngineCapabilities, check_engine_channel, register_engine
from repro.engine.result import SimulationResult
from repro.protocols.base import WindowedProtocol
from repro.util.validation import check_positive_int

__all__ = ["WindowEngine"]


@register_engine
class WindowEngine:
    """Simulate a :class:`WindowedProtocol` one contention window at a time."""

    name = "window"

    #: Windowed protocols on the paper's channel, one balls-in-bins
    #: experiment per contention window; collects traces.
    capabilities = EngineCapabilities(
        protocol_kinds=frozenset({"windowed"}),
        traces=True,
        cost_rank=10,
    )

    def __init__(self, channel: ChannelModel | None = None, max_slots_factor: int = 10_000) -> None:
        self.channel = check_engine_channel(type(self), channel)
        self.max_slots_factor = check_positive_int("max_slots_factor", max_slots_factor)

    def simulate(
        self,
        protocol: WindowedProtocol,
        k: int,
        seed: int = 0,
        max_slots: int | None = None,
        trace: ExecutionTrace | None = None,
    ) -> SimulationResult:
        """Run one batched (static) k-selection instance."""
        check_positive_int("k", k)
        if not isinstance(protocol, WindowedProtocol):
            raise TypeError(
                f"WindowEngine requires a WindowedProtocol, got {type(protocol).__name__}"
            )

        schedule_owner = protocol.spawn()
        schedule = schedule_owner.window_lengths()
        rng = np.random.default_rng(seed)
        cap = max_slots if max_slots is not None else self.max_slots_factor * k

        remaining = k
        window_start = 0
        windows_processed = 0
        successes = collisions = silences = 0
        last_delivery = -1

        while remaining > 0:
            if window_start >= cap:
                return SimulationResult(
                    solved=False,
                    makespan=None,
                    k=k,
                    slots_simulated=window_start,
                    successes=successes,
                    collisions=collisions,
                    silences=silences,
                    protocol=protocol.name,
                    engine=self.name,
                    seed=seed,
                    metadata={"windows": windows_processed},
                )
            try:
                length = int(next(schedule))
            except StopIteration as error:
                raise RuntimeError(
                    f"{type(protocol).__name__}: window schedule exhausted with "
                    f"{remaining} messages left"
                ) from error
            if length < 1:
                raise ValueError(f"window length must be >= 1, got {length}")

            # Balls-in-bins: each of the `remaining` stations picks one slot
            # of the window; slots hit exactly once deliver their message.
            choices = rng.integers(0, length, size=remaining)
            occupancy = np.bincount(choices, minlength=length)
            singleton_slots = np.flatnonzero(occupancy == 1)
            delivered = int(singleton_slots.size)

            # The node-level engine stops at the slot of the final delivery;
            # when this window solves the instance, truncate the trailing
            # slots so counters and traces agree with it.
            if delivered == remaining:
                simulated_length = int(singleton_slots.max()) + 1
                occupancy = occupancy[:simulated_length]
            else:
                simulated_length = length

            successes += delivered
            collisions += int(np.count_nonzero(occupancy >= 2))
            silences += int(np.count_nonzero(occupancy == 0))

            if delivered > 0:
                last_delivery = window_start + int(singleton_slots.max())

            if trace is not None:
                # Stations committed to their slots at the window start, but a
                # station that delivers becomes idle for the rest of the
                # window, so the active count decreases at every singleton.
                active = remaining
                for offset in range(simulated_length):
                    count = int(occupancy[offset])
                    outcome = (
                        SlotOutcome.SILENCE
                        if count == 0
                        else SlotOutcome.SUCCESS
                        if count == 1
                        else SlotOutcome.COLLISION
                    )
                    trace.append(
                        SlotRecord(
                            slot=window_start + offset,
                            transmitters=count,
                            outcome=outcome,
                            active_before=active,
                        )
                    )
                    if count == 1:
                        active -= 1

            remaining -= delivered
            window_start += simulated_length
            windows_processed += 1

        return SimulationResult(
            solved=True,
            makespan=last_delivery + 1,
            k=k,
            slots_simulated=window_start,
            successes=successes,
            collisions=collisions,
            silences=silences,
            protocol=protocol.name,
            engine=self.name,
            seed=seed,
            metadata={"windows": windows_processed},
        )
