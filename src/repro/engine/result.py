"""Common result type returned by every simulation engine."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated run of static (or dynamic) k-selection.

    Attributes
    ----------
    solved:
        Whether all ``k`` messages were delivered before the slot cap.
    makespan:
        Number of slots until the last delivery, inclusive (the paper's
        "number of steps"); ``None`` for unsolved runs.
    k:
        Number of messages injected.
    slots_simulated:
        Slots actually processed by the engine.  For solved runs every engine
        stops at the slot of the final delivery, so this equals ``makespan``;
        for unsolved runs it is the slot cap that was hit.
    successes, collisions, silences:
        Slot-outcome counts over the simulated slots.
    protocol:
        Registry name of the protocol that produced the run.
    engine:
        Name of the engine that produced the run.
    seed:
        Root seed of the run.
    metadata:
        Engine- or experiment-specific extras (kept JSON-friendly).
    """

    solved: bool
    makespan: int | None
    k: int
    slots_simulated: int
    successes: int
    collisions: int
    silences: int
    protocol: str
    engine: str
    seed: int
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.solved:
            if self.makespan is None:
                raise ValueError("solved runs must report a makespan")
            if self.makespan < self.k:
                raise ValueError(
                    f"makespan {self.makespan} is smaller than k={self.k}: "
                    "at most one message can be delivered per slot"
                )
            if self.successes != self.k:
                raise ValueError(
                    f"solved runs must have exactly k successes, got {self.successes} != {self.k}"
                )
        elif self.makespan is not None:
            raise ValueError("unsolved runs must not report a makespan")

    @property
    def steps_per_node(self) -> float:
        """The steps/k ratio reported in Table 1 of the paper."""
        if not self.solved or self.makespan is None:
            raise ValueError("steps_per_node is only defined for solved runs")
        return self.makespan / self.k

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation used by the CSV/JSON exporters."""
        return {
            "solved": self.solved,
            "makespan": self.makespan,
            "k": self.k,
            "slots_simulated": self.slots_simulated,
            "successes": self.successes,
            "collisions": self.collisions,
            "silences": self.silences,
            "protocol": self.protocol,
            "engine": self.engine,
            "seed": self.seed,
            **{f"meta_{key}": value for key, value in self.metadata.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "SimulationResult":
        """Rebuild a result from its :meth:`to_dict` form (JSONL result stores).

        Metadata values that were tuples before serialisation come back as
        lists — JSON has no tuple — which every consumer in this repository
        accepts interchangeably.
        """
        metadata = {
            key[len("meta_"):]: value for key, value in data.items() if key.startswith("meta_")
        }
        return cls(
            solved=bool(data["solved"]),
            makespan=data["makespan"] if data["makespan"] is None else int(data["makespan"]),  # type: ignore[arg-type]
            k=int(data["k"]),  # type: ignore[call-overload]
            slots_simulated=int(data["slots_simulated"]),  # type: ignore[call-overload]
            successes=int(data["successes"]),  # type: ignore[call-overload]
            collisions=int(data["collisions"]),  # type: ignore[call-overload]
            silences=int(data["silences"]),  # type: ignore[call-overload]
            protocol=str(data["protocol"]),
            engine=str(data["engine"]),
            seed=int(data["seed"]),  # type: ignore[call-overload]
            metadata=metadata,
        )
