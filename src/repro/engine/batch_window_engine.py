"""Vectorised batch-replication engine for windowed protocols.

:class:`~repro.engine.window_engine.WindowEngine` already reduces one run of
a windowed protocol to one balls-in-bins experiment per contention window,
but a sweep cell still pays one Python-interpreted *window loop per
replication*: R replications of a (protocol, k) cell cost R × (number of
windows) interpreter iterations, each wrapped around a handful of small numpy
calls whose fixed dispatch overhead dominates at Figure-1 cell sizes.  This
engine runs **all R replications of a cell in lockstep** instead:

* the protocol exposes its (deterministic, feedback-oblivious) window
  schedule through
  :meth:`~repro.protocols.base.WindowedProtocol.make_window_batch_state` —
  every replication traverses the *same* windows, which is exactly the
  structure that makes lockstep simulation sound;
* every window performs *one* multinomial slot assignment covering every
  live replication (each replication's ``remaining`` balls dropped uniformly
  into the window's bins, materialised as an R × w occupancy matrix), and
  classifies all R windows at once — singleton bins are successes,
  multiply-hit bins collisions, empty bins silences;
* ``remaining``/makespan updates are masked array operations, and finished
  replications are retired from the batch (their final window truncated at
  the last delivery, exactly as the per-run window engine truncates), so the
  live batch shrinks as runs solve.

Amortising the interpreter overhead alone cannot beat the serial window
engine by much at large k — its per-window work is already vectorised — so
the occupancy sampling itself is adaptive, keyed on the saturation ratio
``m/w`` (balls per bin):

* **saturated windows** (the exact union bound
  ``w·[(1−1/w)^m + (m/w)(1−1/w)^{m−1}]`` on the probability that *any* bin
  holds fewer than two balls — evaluated at the smallest live replication —
  is below ``2^{-54}``, i.e. smaller than the resolution of the
  double-precision uniforms every sampler here consumes): the all-collisions
  outcome is emitted directly, with no random draws at all (this covers the
  long descending tails of every back-off sawtooth);
* **narrow windows** (``w·22 < mean m``, e.g. the mid-tail of a descent):
  the occupancy rows are sampled directly from the multinomial distribution
  (O(live·w) binomial draws — cheap because each bin expects many balls);
* **wide windows** (the delivery-heavy windows with ``w ~ m``): explicit
  ball throwing — one bounded-``integers`` draw per ball in the narrowest
  sufficient dtype, offset per row, and a single ``bincount`` building the
  occupancy matrix.  Rows are processed in chunks capping the matrix at
  :data:`_MAX_WINDOW_CELLS` cells, so memory stays bounded at the paper's
  Figure-1 right edge instead of scaling with R × w.

The lockstep batch consumes a *single* random stream derived from the whole
seed tuple, so its runs cannot be bit-identical to per-run
:class:`WindowEngine` runs (the i-th replication's draws interleave with its
siblings'); like :class:`~repro.engine.batch_engine.BatchFairEngine`, this
engine is therefore validated **distributionally** — same makespan mean and
quantiles within sampling tolerance, same solved rate at a binding slot cap —
by ``tests/engine/test_batch_window_engine.py``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.channel.model import ChannelModel
from repro.channel.trace import ExecutionTrace
from repro.engine.registry import EngineCapabilities, check_engine_channel, register_engine
from repro.engine.result import SimulationResult
from repro.obs import REGISTRY
from repro.protocols.base import Protocol, WindowedProtocol
from repro.util.validation import check_positive_int

__all__ = ["BatchWindowEngine"]

#: Which sampler produced each window's occupancy: ``saturated`` windows are
#: emitted without any draws, ``multinomial`` rows are sampled bin-wise, and
#: ``ball-throw`` windows materialise every ball.  One increment per window
#: (or per row chunk), never per slot — zero-cost when recording is disabled.
_M_OCCUPANCY = REGISTRY.counter(
    "repro_batch_window_occupancy_total",
    "Occupancy-sampling decisions in the windowed batch engine, by mode.",
    ("mode",),
)

#: Threshold under which a window is all-collisions "for sure": a window is
#: *saturated* when the exact union bound ``P(any bin holds <= 1 ball) <=
#: w [(1-1/w)^m + (m/w)(1-1/w)^{m-1}]`` evaluates below this — one power of
#: two under ``2^{-53}``, so even with the bound's own float rounding the
#: event probability is beneath the resolution of the double-precision
#: uniforms every sampler consumes, and emitting the certain all-collisions
#: outcome is indistinguishable from sampling it.
_SATURATED_BOUND = 2.0**-54

#: Saturation ratio above which sampling the occupancy row directly from the
#: multinomial distribution (O(w) binomial draws per replication) is cheaper
#: than throwing the ``m`` balls explicitly (O(m) uniform draws).  Below the
#: ratio the binomial sampler degrades to O(m/w) per bin anyway, so balls win.
_MULTINOMIAL_RATIO = 22

#: Cap on per-chunk work: both the occupancy matrix (replication rows ×
#: window slots) and the ball-throw scratch arrays (rows × remaining
#: messages) are kept at or under this many entries, so the engine's memory
#: stays bounded (~64 MB of int64 per chunk) at the paper's Figure-1 right
#: edge (k = 10⁷) instead of scaling with R × w or R × k.  Chunk boundaries
#: are a deterministic function of the live batch, so same-seed runs stay
#: bit-identical.
_MAX_WINDOW_CELLS = 1 << 23


@dataclass
class _WindowBatchAccumulator:
    """Final per-replication statistics, indexed by the original batch slot."""

    solved: np.ndarray
    makespan: np.ndarray
    slots: np.ndarray
    successes: np.ndarray
    collisions: np.ndarray
    silences: np.ndarray
    windows: np.ndarray

    @classmethod
    def empty(cls, reps: int) -> "_WindowBatchAccumulator":
        return cls(
            solved=np.zeros(reps, dtype=bool),
            makespan=np.zeros(reps, dtype=np.int64),
            slots=np.zeros(reps, dtype=np.int64),
            successes=np.zeros(reps, dtype=np.int64),
            collisions=np.zeros(reps, dtype=np.int64),
            silences=np.zeros(reps, dtype=np.int64),
            windows=np.zeros(reps, dtype=np.int64),
        )


class _LiveWindowBatch:
    """The still-running replications: per-replication counters.

    Unlike the fair batch there is no per-replication protocol state to
    carry — the window schedule is shared by contract
    (:class:`~repro.protocols.base.WindowBatchState`) — so compaction only
    touches the counters.
    """

    def __init__(self, k: int, reps: int) -> None:
        self.orig = np.arange(reps)
        self.remaining = np.full(reps, k, dtype=np.int64)
        self.successes = np.zeros(reps, dtype=np.int64)
        self.collisions = np.zeros(reps, dtype=np.int64)
        self.silences = np.zeros(reps, dtype=np.int64)
        self.windows = np.zeros(reps, dtype=np.int64)

    @property
    def size(self) -> int:
        return int(self.orig.size)

    def retire(
        self,
        mask: np.ndarray,
        out: _WindowBatchAccumulator,
        solved: bool,
        slots: np.ndarray,
    ) -> None:
        """Write final stats for the masked replications and drop them.

        ``slots`` is the per-live-replication total slot count at retirement
        (the truncated end of the finishing window for solved runs, the cap
        boundary for unsolved ones).
        """
        idx = self.orig[mask]
        out.solved[idx] = solved
        out.makespan[idx] = slots[mask] if solved else 0
        out.slots[idx] = slots[mask]
        out.successes[idx] = self.successes[mask]
        out.collisions[idx] = self.collisions[mask]
        out.silences[idx] = self.silences[mask]
        out.windows[idx] = self.windows[mask]
        keep = ~mask
        self.orig = self.orig[keep]
        self.remaining = self.remaining[keep]
        self.successes = self.successes[keep]
        self.collisions = self.collisions[keep]
        self.silences = self.silences[keep]
        self.windows = self.windows[keep]


@register_engine
class BatchWindowEngine:
    """Simulate all replications of a windowed-protocol cell in numpy lockstep."""

    name = "batch-window"

    #: Batched engine for windowed protocols on the paper's channel: no
    #: traces (windows are classified in bulk), no arrivals (the shared
    #: window schedule assumes every station starts at slot 0).  Eligibility
    #: of a *specific* protocol instance is :meth:`supports`.
    capabilities = EngineCapabilities(
        protocol_kinds=frozenset({"windowed"}),
        batched=True,
        cost_rank=50,
    )

    def __init__(self, channel: ChannelModel | None = None, max_slots_factor: int = 10_000) -> None:
        self.channel = check_engine_channel(type(self), channel)
        self.max_slots_factor = check_positive_int("max_slots_factor", max_slots_factor)

    # ------------------------------------------------------------ eligibility
    @classmethod
    def supports(cls, protocol: Protocol) -> bool:
        """Whether ``protocol`` can be simulated by the windowed batch engine.

        The per-protocol half of eligibility, layered by the registry's
        :func:`~repro.engine.registry.batch_engine_for` on top of the
        declared :class:`EngineCapabilities`: the protocol must declare the
        windowed kind *and* opt in with a shared schedule state.  A windowed
        protocol that does not override
        :meth:`~repro.protocols.base.WindowedProtocol.make_window_batch_state`
        silently takes the per-run path in sweeps.
        """
        if getattr(protocol, "protocol_kind", "generic") not in cls.capabilities.protocol_kinds:
            return False
        return protocol.make_window_batch_state(1) is not None

    # ----------------------------------------------------------------- public
    def simulate(
        self,
        protocol: WindowedProtocol,
        k: int,
        seed: int = 0,
        max_slots: int | None = None,
        trace: ExecutionTrace | None = None,
    ) -> SimulationResult:
        """Run one instance as a batch of size one (the common engine API).

        Single runs gain nothing from vectorisation — use
        :meth:`simulate_batch` for whole cells; this method exists so the
        ``engine="batch-window"`` selector works through the normal front
        door.
        """
        if trace is not None:
            raise ValueError(
                "BatchWindowEngine does not collect traces (windows are classified "
                "in bulk, not slot records); use WindowEngine for traced runs"
            )
        return self.simulate_batch(protocol, k, [seed], max_slots=max_slots)[0]

    def simulate_batch(
        self,
        protocol: WindowedProtocol,
        k: int,
        seeds: Sequence[int],
        max_slots: int | None = None,
    ) -> list[SimulationResult]:
        """Simulate ``len(seeds)`` independent replications of one cell.

        Returns one :class:`SimulationResult` per seed, in order.  The seeds
        jointly key the batch's random stream (the i-th result is *not* the
        run :class:`WindowEngine` would produce from ``seeds[i]``; the batch
        is a different — distributionally identical — sampling of the
        process).
        """
        check_positive_int("k", k)
        if not isinstance(protocol, WindowedProtocol):
            raise TypeError(
                f"BatchWindowEngine requires a WindowedProtocol, got {type(protocol).__name__}"
            )
        seed_list = [int(seed) for seed in seeds]
        if not seed_list:
            raise ValueError("simulate_batch needs at least one seed")
        state = protocol.make_window_batch_state(len(seed_list))
        if state is None:
            raise ValueError(
                f"{type(protocol).__name__} provides no shared window schedule "
                "(make_window_batch_state returned None); use WindowEngine instead"
            )
        cap = max_slots if max_slots is not None else self.max_slots_factor * k
        rng = np.random.default_rng(np.random.SeedSequence(seed_list))

        live = _LiveWindowBatch(k, len(seed_list))
        out = _WindowBatchAccumulator.empty(len(seed_list))
        self._run(protocol, state.lengths, live, out, cap, rng)

        return [
            SimulationResult(
                solved=bool(out.solved[index]),
                makespan=int(out.makespan[index]) if out.solved[index] else None,
                k=k,
                slots_simulated=int(out.slots[index]),
                successes=int(out.successes[index]),
                collisions=int(out.collisions[index]),
                silences=int(out.silences[index]),
                protocol=protocol.name,
                engine=self.name,
                seed=seed_list[index],
                metadata={
                    "batch_reps": len(seed_list),
                    "windows": int(out.windows[index]),
                },
            )
            for index in range(len(seed_list))
        ]

    # -------------------------------------------------------------- internals
    @staticmethod
    def _saturated(length: int, m_min: int) -> bool:
        """Whether every bin surely holds >= 2 balls (see :data:`_SATURATED_BOUND`).

        Evaluates the exact union bound over the ``length`` bins at the
        *smallest* live replication's ball count (the bound is decreasing in
        ``m``, so it covers every row).  ``length == 1`` with ``m >= 2`` is
        the degenerate certain collision.
        """
        if m_min < 2 * length:  # deliveries plainly possible; skip the math
            return False
        if length == 1:
            return m_min >= 2
        log_keep_out = math.log1p(-1.0 / length)  # log P(one ball misses a bin)
        p_empty = math.exp(m_min * log_keep_out)
        p_singleton = (m_min / length) * math.exp((m_min - 1) * log_keep_out)
        return length * (p_empty + p_singleton) < _SATURATED_BOUND

    @staticmethod
    def _occupancy(
        rng: np.random.Generator, remaining: np.ndarray, length: int
    ) -> np.ndarray:
        """Sample the (rows × length) multinomial occupancy matrix.

        Narrow windows (many balls per bin) sample each row's bin counts
        directly — O(length) binomial draws per replication; wide windows
        throw the balls explicitly — one bounded draw per ball in the
        narrowest sufficient dtype, offset per row so one ``bincount``
        builds the whole matrix.
        """
        live = remaining.size
        if length * _MULTINOMIAL_RATIO < int(remaining.mean()):
            _M_OCCUPANCY.labels(mode="multinomial").inc()
            return rng.multinomial(remaining, np.full(length, 1.0 / length))
        _M_OCCUPANCY.labels(mode="ball-throw").inc()
        if length <= np.iinfo(np.uint16).max:
            dtype = np.uint16
        elif length <= np.iinfo(np.uint32).max:
            dtype = np.uint32
        else:
            dtype = np.int64
        choices = rng.integers(0, length, size=int(remaining.sum()), dtype=dtype)
        if live * length <= np.iinfo(np.int32).max:
            rows = np.repeat(np.arange(live, dtype=np.int32), remaining)
            keys = rows * np.int32(length) + choices.astype(np.int32, copy=False)
        else:
            rows = np.repeat(np.arange(live, dtype=np.int64), remaining)
            keys = rows * length + choices
        return np.bincount(keys, minlength=live * length).reshape(live, length)

    def _window_outcomes(
        self,
        rng: np.random.Generator,
        remaining: np.ndarray,
        length: int,
        window_start: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Classify one window for every live replication, in bounded memory.

        Returns per-replication ``(delivered, collisions, silences,
        end_slot)``; ``end_slot`` is the truncated end of the window for the
        replications it finishes (their makespan) and the full window end for
        everyone else.  Rows are processed in chunks bounded both in
        occupancy cells (rows × window slots) and in thrown balls (rows ×
        remaining messages) by :data:`_MAX_WINDOW_CELLS`, so neither the
        occupancy matrix nor the ball-throw scratch arrays scale with the
        network size.
        """
        live = remaining.size
        delivered = np.empty(live, dtype=np.int64)
        collisions = np.empty(live, dtype=np.int64)
        silences = np.empty(live, dtype=np.int64)
        end_slot = np.full(live, window_start + length, dtype=np.int64)
        mean_balls = max(1, int(remaining.mean()))
        chunk = max(1, min(_MAX_WINDOW_CELLS // length, _MAX_WINDOW_CELLS // mean_balls))
        for start in range(0, live, chunk):
            stop = min(start + chunk, live)
            occupancy = self._occupancy(rng, remaining[start:stop], length)
            singles = occupancy == 1
            chunk_delivered = singles.sum(axis=1, dtype=np.int64)
            occupied = np.count_nonzero(occupancy, axis=1)
            chunk_collisions = occupied - chunk_delivered
            chunk_silences = length - occupied
            finishing = chunk_delivered == remaining[start:stop]
            if finishing.any():
                # Replications solved by this window stop at their final
                # delivery: truncate the trailing slots (mirroring the
                # per-run window engine) so counters agree with the
                # node-level reference.
                singles_f = singles[finishing]
                occ_f = occupancy[finishing]
                last = length - 1 - np.argmax(singles_f[:, ::-1], axis=1)
                pick = np.arange(occ_f.shape[0])
                chunk_collisions[finishing] = np.cumsum(occ_f >= 2, axis=1)[pick, last]
                chunk_silences[finishing] = np.cumsum(occ_f == 0, axis=1)[pick, last]
                end_slot[start:stop][finishing] = window_start + last + 1
            delivered[start:stop] = chunk_delivered
            collisions[start:stop] = chunk_collisions
            silences[start:stop] = chunk_silences
        return delivered, collisions, silences, end_slot

    def _run(
        self,
        protocol: WindowedProtocol,
        schedule,
        live: _LiveWindowBatch,
        out: _WindowBatchAccumulator,
        cap: int,
        rng: np.random.Generator,
    ) -> None:
        """Window-by-window lockstep: every live replication shares the window."""
        window_start = 0
        while live.size:
            if window_start >= cap:
                live.retire(
                    np.ones(live.size, dtype=bool),
                    out,
                    solved=False,
                    slots=np.full(live.size, window_start, dtype=np.int64),
                )
                break
            try:
                length = int(next(schedule))
            except StopIteration as error:
                raise RuntimeError(
                    f"{type(protocol).__name__}: window schedule exhausted with "
                    f"{live.size} replications unsolved"
                ) from error
            if length < 1:
                raise ValueError(f"window length must be >= 1, got {length}")

            if self._saturated(length, int(live.remaining.min())):
                # Saturated window: every bin holds >= 2 balls (probability
                # of anything else is below double-precision resolution), so
                # every slot is a collision, nothing is delivered, and no
                # replication can finish.
                _M_OCCUPANCY.labels(mode="saturated").inc()
                live.collisions += length
                live.windows += 1
                window_start += length
                continue

            delivered, collisions, silences, end_slot = self._window_outcomes(
                rng, live.remaining, length, window_start
            )
            finishing = delivered == live.remaining
            live.successes += delivered
            live.collisions += collisions
            live.silences += silences
            live.windows += 1
            live.remaining -= delivered
            if finishing.any():
                live.retire(finishing, out, solved=True, slots=end_slot)
            window_start += length
