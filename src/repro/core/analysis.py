"""Closed-form expressions from the paper's analysis.

These functions implement, verbatim, the quantities that appear in the
theorems and lemmas of the paper (and of the prior work it compares against),
so that

* the "Analysis" column of Table 1 can be generated rather than hard-coded,
* simulations can be checked against their high-probability bounds, and
* the property-based tests can assert the algebraic relations the proofs rely
  on (e.g. that the Lemma 1 threshold indeed makes the failure probability at
  most ``1/k^β``).

All logarithms follow the paper's conventions: ``log`` is base 2, ``ln`` is
natural.
"""

from __future__ import annotations

import math

from repro.core.constants import (
    EBB_DELTA_DEFAULT,
    EBB_DELTA_MAX,
    LFA_XI_BETA_DEFAULT,
    LFA_XI_DELTA_DEFAULT,
    OFA_DELTA_DEFAULT,
    OFA_DELTA_MAX,
    OFA_DELTA_MIN,
)
from repro.util.validation import check_in_range, check_positive, check_positive_int

__all__ = [
    "ofa_leading_constant",
    "ofa_makespan_bound",
    "ofa_success_probability",
    "ofa_round_threshold_tau",
    "ofa_bt_threshold_M",
    "ofa_gamma",
    "ebb_leading_constant",
    "ebb_makespan_bound",
    "ebb_lemma1_threshold",
    "ebb_lemma1_failure_probability",
    "lfa_leading_constant",
    "lfa_makespan_bound",
    "llib_ratio_estimate",
    "fair_protocol_optimal_ratio",
    "lower_bound_steps",
]


# --------------------------------------------------------------------------- OFA
def ofa_leading_constant(delta: float = OFA_DELTA_DEFAULT) -> float:
    """Multiplicative constant of Theorem 1: ``2(δ + 1)``.

    For the paper's ``δ = 2.72`` this is 7.44, the value reported in the
    "Analysis" column of Table 1 (rounded to 7.4).
    """
    check_in_range("delta", delta, OFA_DELTA_MIN, OFA_DELTA_MAX, low_inclusive=False)
    return 2.0 * (delta + 1.0)


def ofa_makespan_bound(
    k: int,
    delta: float = OFA_DELTA_DEFAULT,
    log_square_constant: float = 1.0,
) -> float:
    """Theorem 1 bound ``2(δ+1)k + O(log² k)``.

    The additive term's constant is not made explicit by the paper; it is
    exposed as ``log_square_constant`` so callers can study its effect (the
    paper observes that the additive term "is mainly relevant for moderate
    values of k").
    """
    check_positive_int("k", k)
    leading = ofa_leading_constant(delta) * k
    additive = log_square_constant * (math.log2(k) ** 2 if k > 1 else 0.0)
    return leading + additive


def ofa_success_probability(k: int) -> float:
    """Theorem 1 success probability: ``1 − 2/(1 + k)``."""
    check_positive_int("k", k)
    return 1.0 - 2.0 / (1.0 + k)


def ofa_round_threshold_tau(k: int, delta: float = OFA_DELTA_DEFAULT) -> float:
    """The round threshold ``τ = 300 δ ln(1 + k)`` used in the analysis of OFA.

    A new analysis round starts whenever the density estimator ``κ̃`` reaches
    or exceeds a multiple of ``τ`` for the first time (Appendix A).
    """
    check_positive_int("k", k)
    check_positive("delta", delta)
    return 300.0 * delta * math.log(1.0 + k)


def ofa_gamma(delta: float = OFA_DELTA_DEFAULT) -> float:
    """The constant ``γ = (δ−1)(3−δ)/(δ−2)`` of Lemmas 3 and 5."""
    check_positive("delta", delta)
    if delta == 2.0:
        raise ValueError("gamma is undefined for delta == 2")
    return (delta - 1.0) * (3.0 - delta) / (delta - 2.0)


def ofa_bt_threshold_M(k: int, delta: float = OFA_DELTA_DEFAULT) -> float:
    """The threshold ``M`` of Lemmas 5 and 6.

    ``M`` is the number of messages below which the BT rule takes over:

    ``M = ((δ+1)·lnδ − 1)/(lnδ − 1) · S + ((γ + 2τ + 1)·lnδ − 1)/(lnδ − 1)``

    with ``S = 2 Σ_{j=0..4} (5/6)^j τ`` and ``τ = 300 δ ln(1+k)``.
    ``M = Θ(log k)``, which is what makes the additive term of Theorem 1
    ``O(log² k)``.
    """
    check_positive_int("k", k)
    check_positive("delta", delta)
    if math.log(delta) <= 1.0:
        raise ValueError(
            f"M is only defined for delta > e (ln delta > 1), got delta={delta}"
        )
    tau = ofa_round_threshold_tau(k, delta)
    gamma = ofa_gamma(delta)
    s_term = 2.0 * sum((5.0 / 6.0) ** j for j in range(5)) * tau
    ln_delta = math.log(delta)
    first = ((delta + 1.0) * ln_delta - 1.0) / (ln_delta - 1.0) * s_term
    second = ((gamma + 2.0 * tau + 1.0) * ln_delta - 1.0) / (ln_delta - 1.0)
    return first + second


# --------------------------------------------------------------------------- EBB
def ebb_leading_constant(delta: float = EBB_DELTA_DEFAULT) -> float:
    """Multiplicative constant of Theorem 2: ``4(1 + 1/δ)``.

    For the paper's ``δ = 0.366`` this is ≈ 14.93, the value reported in the
    "Analysis" column of Table 1 (14.9).
    """
    check_in_range("delta", delta, 0.0, EBB_DELTA_MAX, low_inclusive=False, high_inclusive=False)
    return 4.0 * (1.0 + 1.0 / delta)


def ebb_makespan_bound(k: int, delta: float = EBB_DELTA_DEFAULT) -> float:
    """Theorem 2 bound ``4(1 + 1/δ)·k``."""
    check_positive_int("k", k)
    return ebb_leading_constant(delta) * k


def ebb_lemma1_threshold(k: int, delta: float = EBB_DELTA_DEFAULT, beta: float = 1.0) -> float:
    """Lemma 1 threshold ``τ = (2e/(1 − eδ)²)(1 + (β + 1/2) ln k)``.

    For ``m ≥ τ`` balls dropped uniformly into ``w ≥ m`` bins, fewer than
    ``δ m`` singleton bins occur with probability at most ``1/k^β``.
    """
    check_positive_int("k", k)
    check_in_range("delta", delta, 0.0, EBB_DELTA_MAX, low_inclusive=False, high_inclusive=False)
    check_positive("beta", beta)
    return (2.0 * math.e / (1.0 - math.e * delta) ** 2) * (1.0 + (beta + 0.5) * math.log(k))


def ebb_lemma1_failure_probability(m: int, delta: float = EBB_DELTA_DEFAULT) -> float:
    """The Poissonised tail bound used inside Lemma 1.

    ``Pr(X ≤ δ m) ≤ exp(−m(1 − eδ)²/(2e)) · e√m`` where ``X`` is the number of
    singleton bins when ``m`` balls are dropped into ``m`` bins; the ``e√m``
    factor converts from the Poisson approximation to the exact case.
    """
    check_positive_int("m", m)
    check_in_range("delta", delta, 0.0, EBB_DELTA_MAX, low_inclusive=False, high_inclusive=False)
    poisson_tail = math.exp(-m * (1.0 - math.e * delta) ** 2 / (2.0 * math.e))
    return min(1.0, poisson_tail * math.e * math.sqrt(m))


# --------------------------------------------------------------------------- LFA
def lfa_leading_constant(
    xi_t: float,
    xi_delta: float = LFA_XI_DELTA_DEFAULT,
    xi_beta: float = LFA_XI_BETA_DEFAULT,
) -> float:
    """Asymptotic steps/k constant of Log-fails Adaptive, ``(e+1+ξ)/(1−ξt)``.

    The published bound of reference [7] is ``(e + 1 + ξ)k + O(log²(1/ε))``
    counted over the protocol's adaptive steps, with ``ξ = ξδ + ξβ`` an
    arbitrarily small slack; with a fraction ``ξt`` of the schedule devoted to
    the fixed-probability rule, the overall constant becomes
    ``(e + 1 + ξ)/(1 − ξt)``.  For ``ξδ = ξβ = 0.1`` this gives 7.84 for
    ``ξt = 1/2`` and 4.35 for ``ξt = 1/10`` — the 7.8 and 4.4 of Table 1.
    """
    check_in_range("xi_t", xi_t, 0.0, 1.0, low_inclusive=False, high_inclusive=False)
    xi = check_positive("xi_delta", xi_delta) + check_positive("xi_beta", xi_beta)
    return (math.e + 1.0 + xi) / (1.0 - xi_t)


def lfa_makespan_bound(
    k: int,
    xi_t: float,
    xi_delta: float = LFA_XI_DELTA_DEFAULT,
    xi_beta: float = LFA_XI_BETA_DEFAULT,
    epsilon: float | None = None,
    log_square_constant: float = 1.0,
) -> float:
    """Reference [7] bound ``(e+1+ξ)k/(1−ξt) + O(log²(1/ε))`` (reconstruction).

    ``ε`` defaults to the value used in the paper's evaluation, ``1/(k+1)``.
    """
    check_positive_int("k", k)
    if epsilon is None:
        epsilon = 1.0 / (k + 1.0)
    check_in_range("epsilon", epsilon, 0.0, 1.0, low_inclusive=False)
    leading = lfa_leading_constant(xi_t, xi_delta, xi_beta) * k
    additive = log_square_constant * math.log2(1.0 / epsilon) ** 2
    return leading + additive


# -------------------------------------------------------------------------- LLIB
def llib_ratio_estimate(k: int, constant: float = 1.0) -> float:
    """Order-of-magnitude estimate of Loglog-iterated Back-off's steps/k ratio.

    Bender et al. prove a makespan of ``Θ(k·lglg k / lglglg k)``; the constant
    is not published, so this returns ``constant · lglg k / lglglg k`` (and 1
    below the range where the iterated logs are defined).  Table 1 of the
    paper observes an empirical ratio of roughly 10, effectively constant over
    the simulated range because the expression is so slowly growing.
    """
    check_positive_int("k", k)
    lg = math.log2(k) if k > 1 else 1.0
    lglg = math.log2(lg) if lg > 1 else 1.0
    lglglg = math.log2(lglg) if lglg > 1 else 1.0
    if lglglg <= 0:
        return constant
    return constant * lglg / lglglg


# ----------------------------------------------------------------------- generic
def fair_protocol_optimal_ratio() -> float:
    """Smallest steps/k ratio achievable by any fair protocol: ``e``.

    Section 5 of the paper: "the smallest ratio expected by any algorithm in
    which nodes use the same probability at any step is e".
    """
    return math.e


def lower_bound_steps(k: int) -> int:
    """Trivial lower bound: k slots are needed to deliver k messages."""
    check_positive_int("k", k)
    return k
