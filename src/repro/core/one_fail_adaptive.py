"""One-fail Adaptive (Algorithm 1 of the paper).

The protocol interleaves two transmission rules on alternating communication
steps (steps are numbered 1, 2, … in the paper; slot ``s`` of the simulator is
communication step ``s + 1``):

* **AT rule** (odd communication steps, i.e. ``step mod 2 == 1``): transmit
  with probability ``1/κ̃`` where ``κ̃`` is the *density estimator* — an
  estimate of the number of messages still to be delivered.  After the
  transmission decision of every AT step the estimator is incremented by one
  (this is the "one fail" of the name: a single step without progress is
  enough to revise the estimate upwards).
* **BT rule** (even communication steps): transmit with probability
  ``1/(1 + log₂(σ + 1))`` where ``σ`` counts the messages received so far;
  this rule takes over once only a poly-logarithmic number of messages is
  left.

Upon receiving a message from another station (which every active station
observes, since a successful slot delivers to everyone), the station
increments ``σ`` and decreases ``κ̃`` by ``δ`` on a BT step or by ``δ + 1`` on
an AT step, never letting it drop below ``δ + 1``.  Upon delivering its own
message a station stops (handled by the node/engine layer).

Theorem 1 of the paper: for ``e < δ ≤ Σ_{j=1..5}(5/6)^j``, One-fail Adaptive
solves static k-selection within ``2(δ+1)k + O(log² k)`` communication steps
with probability at least ``1 − 2/(1+k)``.  The protocol uses no knowledge of
``k`` or ``n``.

Fairness.  All active stations observe the same receptions and the same step
parities, so they hold identical ``(κ̃, σ)`` state and use the same
transmission probability in every slot; the protocol is therefore *fair* and
can be simulated by :class:`~repro.engine.fair_engine.FairEngine`.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import ClassVar

import numpy as np

from repro.channel.model import Observation
from repro.core.constants import OFA_DELTA_DEFAULT, OFA_DELTA_MAX, OFA_DELTA_MIN
from repro.protocols.base import FairBatchState, FairProtocol, register_protocol
from repro.util.validation import check_in_range

__all__ = ["OneFailAdaptive"]

#: Shared "no probability rows changed" return of observe_receptions.
_NO_ROWS = np.empty(0, dtype=np.int64)


class _OneFailBatchState(FairBatchState):
    """Vectorised ``(κ̃, σ)`` state of R lockstep One-fail Adaptive replications.

    Line-for-line mirror of the scalar :meth:`OneFailAdaptive.notify` /
    :meth:`OneFailAdaptive.transmission_probability` pair, with the per-slot
    branches turned into array expressions; the protocol's probability is
    *not* constant between receptions (κ̃ grows after every AT step), so the
    batch engine runs these replications strictly slot by slot.

    ``δ`` is carried as a *per-row* array so one state can serve rows fused
    from several cells with different parameterisations (the AT/BT parity is
    a pure function of the common slot index and stays scalar).
    """

    def __init__(self, deltas: np.ndarray) -> None:
        self._delta = np.asarray(deltas, dtype=float)
        self._floor = self._delta + 1.0
        self._kappa = self._delta + 1.0
        self._sigma = np.zeros(self._delta.size, dtype=np.int64)
        # σ changes only on receptions, so the BT-step probability is cached
        # (sparse receptions patch the affected rows in place); κ̃ grows every
        # AT step, so the AT probability is always recomputed and carries no
        # cache key — into a reusable buffer, valid only until the next call.
        self._bt_cache: np.ndarray | None = None
        self._at_buf = np.empty(self._delta.size)

    def probabilities(self, slot: int) -> np.ndarray:
        if OneFailAdaptive.is_bt_step(slot):
            # Line 8: transmit with probability 1/(1 + log2(σ + 1)).
            if self._bt_cache is None:
                self._bt_cache = 1.0 / (1.0 + np.log2(self._sigma + 1.0))
            return self._bt_cache
        # Line 10: transmit with probability 1/κ̃.
        return 1.0 / self._kappa

    def probabilities_cached(self, slot: int) -> tuple[np.ndarray, object]:
        if slot % 2 == 1:  # is_bt_step, inlined for the per-slot hot path
            return self.probabilities(slot), True
        return np.divide(1.0, self._kappa, out=self._at_buf), None

    def observe_receptions(
        self,
        slot: int,
        received: np.ndarray,
        received_any: bool | None = None,
        received_rows: np.ndarray | None = None,
    ) -> np.ndarray | None:
        bt_step = slot % 2 == 1  # is_bt_step, inlined for the per-slot hot path
        if not bt_step:
            # Line 11: κ̃ ← κ̃ + 1 at the end of every AT step (before the
            # reception adjustment, matching the scalar update order).  κ̃
            # feeds only the keyless AT probability, so cached-flavor content
            # is unaffected.
            self._kappa += 1.0
        if received_any is None:
            received_any = bool(received.any())
        if not received_any:
            return _NO_ROWS
        rows = received_rows if received_rows is not None else np.flatnonzero(received)
        if rows.size <= 8:
            # Receptions are sparse (usually one row); per-row scalar
            # arithmetic beats whole-array np.where passes.
            bt_cache = self._bt_cache
            for index in rows:
                i = int(index)
                self._sigma[i] += 1
                # Lines 16/18: κ̃ ← max{κ̃ − δ[, − 1]}, floored at δ + 1.
                decrement = self._delta[i] if bt_step else self._delta[i] + 1.0
                self._kappa[i] = max(self._kappa[i] - decrement, self._floor[i])
                if bt_cache is not None:
                    bt_cache[i] = 1.0 / (1.0 + np.log2(self._sigma[i] + 1.0))
            return rows
        self._sigma += received
        decrement = self._delta if bt_step else self._delta + 1.0
        self._kappa = np.where(
            received,
            np.maximum(self._kappa - decrement, self._floor),
            self._kappa,
        )
        self._bt_cache = None
        return None

    def compact(self, keep: np.ndarray) -> None:
        self._delta = self._delta[keep]
        self._floor = self._floor[keep]
        self._kappa = self._kappa[keep]
        self._sigma = self._sigma[keep]
        # The cache is per-row, so it stays current under the same slicing.
        if self._bt_cache is not None:
            self._bt_cache = self._bt_cache[keep]
        self._at_buf = np.empty(self._kappa.size)


@register_protocol
class OneFailAdaptive(FairProtocol):
    """Algorithm 1 of the paper: the One-fail Adaptive protocol.

    Parameters
    ----------
    delta:
        The constant ``δ`` of Algorithm 1.  Theorem 1 admits
        ``e < δ ≤ Σ_{j=1..5}(5/6)^j ≈ 2.9906``; the paper's evaluation uses
        2.72 (the default).
    enforce_theorem_range:
        When true (default), reject ``δ`` outside the admissible range of
        Theorem 1.  The ablation experiments set this to ``False`` to explore
        how sensitive the protocol is to the choice.
    """

    name: ClassVar[str] = "one-fail-adaptive"
    label: ClassVar[str] = "One-Fail Adaptive"
    requires_knowledge: ClassVar[frozenset[str]] = frozenset()

    def __init__(
        self,
        delta: float = OFA_DELTA_DEFAULT,
        enforce_theorem_range: bool = True,
    ) -> None:
        if enforce_theorem_range:
            self.delta = check_in_range(
                "delta",
                delta,
                OFA_DELTA_MIN,
                OFA_DELTA_MAX,
                low_inclusive=False,
                high_inclusive=True,
            )
        else:
            if delta <= 0:
                raise ValueError(f"delta must be positive, got {delta}")
            self.delta = float(delta)
        self.enforce_theorem_range = enforce_theorem_range
        self.reset()

    # ----------------------------------------------------------------- state
    def reset(self) -> None:
        """Re-initialise to the state of Algorithm 1 upon message arrival."""
        # Line 2: density estimator κ̃ ← δ + 1.
        self._kappa_estimate = self.delta + 1.0
        # Line 3: messages-received counter σ ← 0.
        self._messages_received = 0

    # ------------------------------------------------------------ inspection
    @property
    def density_estimate(self) -> float:
        """Current value of the density estimator ``κ̃``."""
        return self._kappa_estimate

    @property
    def messages_received(self) -> int:
        """Current value of the messages-received counter ``σ``."""
        return self._messages_received

    @staticmethod
    def is_bt_step(slot: int) -> bool:
        """True when slot ``slot`` (0-based) is a BT step.

        The paper numbers communication steps from 1 and makes the even ones
        BT steps, so 0-based slot ``s`` is a BT step iff ``s + 1`` is even.
        """
        return (slot + 1) % 2 == 0

    # ---------------------------------------------------------- transmission
    def transmission_probability(self, slot: int) -> float:
        """Lines 7-10 of Algorithm 1: the per-step transmission probability."""
        if self.is_bt_step(slot):
            # Line 8: transmit with probability 1/(1 + log2(σ + 1)).
            return 1.0 / (1.0 + math.log2(self._messages_received + 1))
        # Line 10: transmit with probability 1/κ̃.
        return 1.0 / self._kappa_estimate

    # -------------------------------------------------------------- feedback
    def notify(self, observation: Observation) -> None:
        """Apply the end-of-step updates of Tasks 1 and 2 of Algorithm 1.

        Task 1 increments ``κ̃`` after every AT step (line 11); Task 2 fires
        upon reception of a message from another station (lines 13-18).  Both
        may apply in the same step; the Task 1 increment is applied first, as
        it precedes the reception in the step's timeline.
        """
        bt_step = self.is_bt_step(observation.slot)
        if not bt_step:
            # Line 11: κ̃ ← κ̃ + 1 at the end of every AT step.
            self._kappa_estimate += 1.0
        if observation.received:
            # Line 14: σ ← σ + 1.
            self._messages_received += 1
            floor = self.delta + 1.0
            if bt_step:
                # Line 16: κ̃ ← max{κ̃ − δ, δ + 1}.
                self._kappa_estimate = max(self._kappa_estimate - self.delta, floor)
            else:
                # Line 18: κ̃ ← max{κ̃ − δ − 1, δ + 1}.
                self._kappa_estimate = max(self._kappa_estimate - self.delta - 1.0, floor)

    def make_batch_state(self, reps: int) -> _OneFailBatchState:
        return _OneFailBatchState(np.full(reps, self.delta))

    @classmethod
    def make_fused_batch_state(
        cls,
        protocols: "Sequence[FairProtocol]",
        counts: "Sequence[int]",
    ) -> _OneFailBatchState:
        deltas = np.repeat([protocol.delta for protocol in protocols], counts)
        return _OneFailBatchState(deltas)
