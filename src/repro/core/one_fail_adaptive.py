"""One-fail Adaptive (Algorithm 1 of the paper).

The protocol interleaves two transmission rules on alternating communication
steps (steps are numbered 1, 2, … in the paper; slot ``s`` of the simulator is
communication step ``s + 1``):

* **AT rule** (odd communication steps, i.e. ``step mod 2 == 1``): transmit
  with probability ``1/κ̃`` where ``κ̃`` is the *density estimator* — an
  estimate of the number of messages still to be delivered.  After the
  transmission decision of every AT step the estimator is incremented by one
  (this is the "one fail" of the name: a single step without progress is
  enough to revise the estimate upwards).
* **BT rule** (even communication steps): transmit with probability
  ``1/(1 + log₂(σ + 1))`` where ``σ`` counts the messages received so far;
  this rule takes over once only a poly-logarithmic number of messages is
  left.

Upon receiving a message from another station (which every active station
observes, since a successful slot delivers to everyone), the station
increments ``σ`` and decreases ``κ̃`` by ``δ`` on a BT step or by ``δ + 1`` on
an AT step, never letting it drop below ``δ + 1``.  Upon delivering its own
message a station stops (handled by the node/engine layer).

Theorem 1 of the paper: for ``e < δ ≤ Σ_{j=1..5}(5/6)^j``, One-fail Adaptive
solves static k-selection within ``2(δ+1)k + O(log² k)`` communication steps
with probability at least ``1 − 2/(1+k)``.  The protocol uses no knowledge of
``k`` or ``n``.

Fairness.  All active stations observe the same receptions and the same step
parities, so they hold identical ``(κ̃, σ)`` state and use the same
transmission probability in every slot; the protocol is therefore *fair* and
can be simulated by :class:`~repro.engine.fair_engine.FairEngine`.
"""

from __future__ import annotations

import math
from typing import ClassVar

import numpy as np

from repro.channel.model import Observation
from repro.core.constants import OFA_DELTA_DEFAULT, OFA_DELTA_MAX, OFA_DELTA_MIN
from repro.protocols.base import FairBatchState, FairProtocol, register_protocol
from repro.util.validation import check_in_range

__all__ = ["OneFailAdaptive"]


class _OneFailBatchState(FairBatchState):
    """Vectorised ``(κ̃, σ)`` state of R lockstep One-fail Adaptive replications.

    Line-for-line mirror of the scalar :meth:`OneFailAdaptive.notify` /
    :meth:`OneFailAdaptive.transmission_probability` pair, with the per-slot
    branches turned into array expressions; the protocol's probability is
    *not* constant between receptions (κ̃ grows after every AT step), so the
    batch engine runs these replications strictly slot by slot.
    """

    def __init__(self, delta: float, reps: int) -> None:
        self.delta = delta
        self._kappa = np.full(reps, delta + 1.0)
        self._sigma = np.zeros(reps, dtype=np.int64)

    def probabilities(self, slot: int) -> np.ndarray:
        if OneFailAdaptive.is_bt_step(slot):
            # Line 8: transmit with probability 1/(1 + log2(σ + 1)).
            return 1.0 / (1.0 + np.log2(self._sigma + 1.0))
        # Line 10: transmit with probability 1/κ̃.
        return 1.0 / self._kappa

    def observe_receptions(self, slot: int, received: np.ndarray) -> None:
        bt_step = OneFailAdaptive.is_bt_step(slot)
        if not bt_step:
            # Line 11: κ̃ ← κ̃ + 1 at the end of every AT step (before the
            # reception adjustment, matching the scalar update order).
            self._kappa += 1.0
        if received.any():
            self._sigma += received
            # Lines 16/18: κ̃ ← max{κ̃ − δ[, − 1]}, floored at δ + 1.
            decrement = self.delta if bt_step else self.delta + 1.0
            self._kappa = np.where(
                received,
                np.maximum(self._kappa - decrement, self.delta + 1.0),
                self._kappa,
            )

    def compact(self, keep: np.ndarray) -> None:
        self._kappa = self._kappa[keep]
        self._sigma = self._sigma[keep]


@register_protocol
class OneFailAdaptive(FairProtocol):
    """Algorithm 1 of the paper: the One-fail Adaptive protocol.

    Parameters
    ----------
    delta:
        The constant ``δ`` of Algorithm 1.  Theorem 1 admits
        ``e < δ ≤ Σ_{j=1..5}(5/6)^j ≈ 2.9906``; the paper's evaluation uses
        2.72 (the default).
    enforce_theorem_range:
        When true (default), reject ``δ`` outside the admissible range of
        Theorem 1.  The ablation experiments set this to ``False`` to explore
        how sensitive the protocol is to the choice.
    """

    name: ClassVar[str] = "one-fail-adaptive"
    label: ClassVar[str] = "One-Fail Adaptive"
    requires_knowledge: ClassVar[frozenset[str]] = frozenset()

    def __init__(
        self,
        delta: float = OFA_DELTA_DEFAULT,
        enforce_theorem_range: bool = True,
    ) -> None:
        if enforce_theorem_range:
            self.delta = check_in_range(
                "delta",
                delta,
                OFA_DELTA_MIN,
                OFA_DELTA_MAX,
                low_inclusive=False,
                high_inclusive=True,
            )
        else:
            if delta <= 0:
                raise ValueError(f"delta must be positive, got {delta}")
            self.delta = float(delta)
        self.enforce_theorem_range = enforce_theorem_range
        self.reset()

    # ----------------------------------------------------------------- state
    def reset(self) -> None:
        """Re-initialise to the state of Algorithm 1 upon message arrival."""
        # Line 2: density estimator κ̃ ← δ + 1.
        self._kappa_estimate = self.delta + 1.0
        # Line 3: messages-received counter σ ← 0.
        self._messages_received = 0

    # ------------------------------------------------------------ inspection
    @property
    def density_estimate(self) -> float:
        """Current value of the density estimator ``κ̃``."""
        return self._kappa_estimate

    @property
    def messages_received(self) -> int:
        """Current value of the messages-received counter ``σ``."""
        return self._messages_received

    @staticmethod
    def is_bt_step(slot: int) -> bool:
        """True when slot ``slot`` (0-based) is a BT step.

        The paper numbers communication steps from 1 and makes the even ones
        BT steps, so 0-based slot ``s`` is a BT step iff ``s + 1`` is even.
        """
        return (slot + 1) % 2 == 0

    # ---------------------------------------------------------- transmission
    def transmission_probability(self, slot: int) -> float:
        """Lines 7-10 of Algorithm 1: the per-step transmission probability."""
        if self.is_bt_step(slot):
            # Line 8: transmit with probability 1/(1 + log2(σ + 1)).
            return 1.0 / (1.0 + math.log2(self._messages_received + 1))
        # Line 10: transmit with probability 1/κ̃.
        return 1.0 / self._kappa_estimate

    # -------------------------------------------------------------- feedback
    def notify(self, observation: Observation) -> None:
        """Apply the end-of-step updates of Tasks 1 and 2 of Algorithm 1.

        Task 1 increments ``κ̃`` after every AT step (line 11); Task 2 fires
        upon reception of a message from another station (lines 13-18).  Both
        may apply in the same step; the Task 1 increment is applied first, as
        it precedes the reception in the step's timeline.
        """
        bt_step = self.is_bt_step(observation.slot)
        if not bt_step:
            # Line 11: κ̃ ← κ̃ + 1 at the end of every AT step.
            self._kappa_estimate += 1.0
        if observation.received:
            # Line 14: σ ← σ + 1.
            self._messages_received += 1
            floor = self.delta + 1.0
            if bt_step:
                # Line 16: κ̃ ← max{κ̃ − δ, δ + 1}.
                self._kappa_estimate = max(self._kappa_estimate - self.delta, floor)
            else:
                # Line 18: κ̃ ← max{κ̃ − δ − 1, δ + 1}.
                self._kappa_estimate = max(self._kappa_estimate - self.delta - 1.0, floor)

    def make_batch_state(self, reps: int) -> _OneFailBatchState:
        return _OneFailBatchState(self.delta, reps)
