"""The paper's contributions: One-fail Adaptive and Exp Back-on/Back-off.

* :mod:`repro.core.one_fail_adaptive` — Algorithm 1 of the paper, a fair
  adaptive protocol with a continuously-updated density estimator (AT rule on
  odd communication steps) interleaved with an inverse-logarithmic rule (BT
  rule on even steps).  Theorem 1: ``2(δ+1)k + O(log² k)`` slots with
  probability at least ``1 − 2/(1+k)``.
* :mod:`repro.core.exp_backon_backoff` — Algorithm 2 of the paper, a windowed
  sawtooth back-on/back-off protocol.  Theorem 2: ``4(1 + 1/δ)k`` slots with
  high probability.
* :mod:`repro.core.constants` — the admissible parameter ranges stated by the
  theorems and the concrete values used in the paper's evaluation.
* :mod:`repro.core.analysis` — closed-form expressions from the theorems and
  lemmas (leading constants, thresholds, success probabilities) used to fill
  the "Analysis" column of Table 1 and to cross-check simulations.
"""

from __future__ import annotations

from repro.core.constants import (
    EBB_DELTA_DEFAULT,
    EBB_DELTA_MAX,
    OFA_DELTA_DEFAULT,
    OFA_DELTA_MAX,
    OFA_DELTA_MIN,
)
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.core import analysis

__all__ = [
    "OneFailAdaptive",
    "ExpBackonBackoff",
    "analysis",
    "OFA_DELTA_DEFAULT",
    "OFA_DELTA_MIN",
    "OFA_DELTA_MAX",
    "EBB_DELTA_DEFAULT",
    "EBB_DELTA_MAX",
]
