"""Parameter ranges and defaults from the paper.

The two theorems constrain the protocols' single tunable constant ``δ``:

* **One-fail Adaptive** (Theorem 1): ``e < δ ≤ Σ_{j=1..5} (5/6)^j ≈ 2.9906``.
  The evaluation (Section 5) uses ``δ = 2.72``.
* **Exp Back-on/Back-off** (Theorem 2): ``0 < δ < 1/e ≈ 0.3679``.  The
  evaluation uses ``δ = 0.366``.

The evaluation's parameters for the two baselines are also recorded here so
the experiment harness has a single source of truth:

* **Log-fails Adaptive**: ``ξδ = ξβ = 0.1``, ``ε ≈ 1/(k+1)``, ``ξt ∈ {1/2, 1/10}``.
* **Loglog-iterated Back-off**: ``r = 2``.
"""

from __future__ import annotations

import math

__all__ = [
    "OFA_DELTA_MIN",
    "OFA_DELTA_MAX",
    "OFA_DELTA_DEFAULT",
    "EBB_DELTA_MAX",
    "EBB_DELTA_DEFAULT",
    "LFA_XI_DELTA_DEFAULT",
    "LFA_XI_BETA_DEFAULT",
    "LFA_XI_T_VALUES",
    "LLIB_R_DEFAULT",
    "ofa_delta_upper_bound",
]


def ofa_delta_upper_bound() -> float:
    """Upper end of the admissible range for One-fail Adaptive's ``δ``.

    Theorem 1 requires ``δ ≤ Σ_{j=1..5} (5/6)^j``; the sum evaluates to
    approximately 2.9906.
    """
    return sum((5.0 / 6.0) ** j for j in range(1, 6))


#: Lower bound (exclusive) for One-fail Adaptive's δ: Euler's number.
OFA_DELTA_MIN: float = math.e

#: Upper bound (inclusive) for One-fail Adaptive's δ: Σ_{j=1..5} (5/6)^j.
OFA_DELTA_MAX: float = ofa_delta_upper_bound()

#: δ used for One-fail Adaptive in the paper's simulations (Section 5).
OFA_DELTA_DEFAULT: float = 2.72

#: Upper bound (exclusive) for Exp Back-on/Back-off's δ: 1/e.
EBB_DELTA_MAX: float = 1.0 / math.e

#: δ used for Exp Back-on/Back-off in the paper's simulations (Section 5).
EBB_DELTA_DEFAULT: float = 0.366

#: Slack parameters of Log-fails Adaptive used in the paper's simulations.
LFA_XI_DELTA_DEFAULT: float = 0.1
LFA_XI_BETA_DEFAULT: float = 0.1

#: The two interleaving parameters of Log-fails Adaptive compared in Section 5.
LFA_XI_T_VALUES: tuple[float, float] = (0.5, 0.1)

#: Back-off base used for Loglog-iterated Back-off in the paper's simulations.
LLIB_R_DEFAULT: int = 2
