"""Experiment configuration and the paper's protocol suite.

The evaluation of Section 5 fixes the following parameters, all of which are
encoded here (values imported from :mod:`repro.core.constants`):

* One-fail Adaptive: ``δ = 2.72``;
* Exp Back-on/Back-off: ``δ = 0.366``;
* Log-fails Adaptive: ``ξδ = ξβ = 0.1``, ``ε ≈ 1/(k+1)``, and two variants
  ``ξt = 1/2`` ("Log-Fails Adaptive (2)") and ``ξt = 1/10``
  ("Log-Fails Adaptive (10)");
* Loglog-iterated Back-off: ``r = 2``;
* each (protocol, k) point is the average of 10 runs;
* k ranges over powers of ten from 10 to 10⁷.

The paper's largest sizes take a long while on a single CPU with the exact
per-slot fair engine, so the default configuration sweeps k up to ``10⁵`` and
the ceiling can be raised via the ``REPRO_MAX_K`` environment variable or the
``--max-k`` command-line flag of the figure/table scripts; EXPERIMENTS.md
records which points were measured.
"""

from __future__ import annotations

import math
import os
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core import analysis as core_analysis
from repro.core.constants import (
    EBB_DELTA_DEFAULT,
    LFA_XI_BETA_DEFAULT,
    LFA_XI_DELTA_DEFAULT,
    LLIB_R_DEFAULT,
    OFA_DELTA_DEFAULT,
)
# The protocol imports also populate the spec-string registry the suite's
# scenario specs resolve against.
from repro.core.exp_backon_backoff import ExpBackonBackoff  # noqa: F401
from repro.core.one_fail_adaptive import OneFailAdaptive  # noqa: F401
from repro.protocols.backoff import LogLogIteratedBackoff  # noqa: F401
from repro.protocols.base import Protocol
from repro.protocols.log_fails_adaptive import LogFailsAdaptive  # noqa: F401

__all__ = [
    "ProtocolSpec",
    "ExperimentConfig",
    "paper_k_values",
    "paper_protocol_suite",
    "DEFAULT_MAX_K",
    "PAPER_MAX_K",
    "DEFAULT_RUNS",
]

#: Number of runs averaged per (protocol, k) point in the paper.
DEFAULT_RUNS = 10

#: Largest k simulated by the paper (Figure 1 / Table 1).
PAPER_MAX_K = 10**7

#: Largest k swept by default in this reproduction (single-CPU budget).
DEFAULT_MAX_K = 10**5


@dataclass(frozen=True)
class ProtocolSpec:
    """One curve of the evaluation: a protocol family plus its parameters.

    Attributes
    ----------
    key:
        Short machine-friendly identifier (used in CSV columns and file names).
    label:
        The curve label used by the paper's figure/table.
    factory:
        Callable mapping ``k`` to a fresh protocol instance.  Protocols that
        use no knowledge of ``k`` ignore the argument.  Optional when
        ``spec`` is given (the factory is then derived from the registry).
    analysis_ratio:
        Callable mapping ``k`` to the steps/k constant predicted by the
        protocol's analysis, or ``None`` when the analysis only gives an
        asymptotic order (Loglog-iterated Back-off).
    analysis_note:
        Text used in the Analysis column when ``analysis_ratio`` is ``None``.
    spec:
        Protocol spec string (e.g. ``"one-fail-adaptive(delta=2.72)"``).
        When set, the sweep runner routes this curve through the declarative
        :class:`~repro.scenarios.session.Session` — content-hashed, cacheable
        and resumable; factory-only specs take the legacy in-memory path.
    """

    key: str
    label: str
    factory: Callable[[int], Protocol] | None = None
    analysis_ratio: Callable[[int], float] | None = None
    analysis_note: str = ""
    spec: str | None = None

    def __post_init__(self) -> None:
        if self.factory is None and self.spec is None:
            raise ValueError(f"ProtocolSpec {self.key!r} needs a factory or a spec string")

    def build(self, k: int) -> Protocol:
        """Instantiate the protocol for a network of ``k`` contenders."""
        if self.factory is not None:
            return self.factory(k)
        from repro.protocols.base import build_protocol

        assert self.spec is not None
        return build_protocol(self.spec, k)

    def analysis_text(self, k: int | None = None, float_format: str = ".1f") -> str:
        """Human-readable entry for the Analysis column of Table 1."""
        if self.analysis_ratio is not None:
            reference_k = k if k is not None else PAPER_MAX_K
            return format(self.analysis_ratio(reference_k), float_format)
        return self.analysis_note or "-"


def paper_k_values(max_k: int | None = None, min_k: int = 10) -> list[int]:
    """Powers of ten from ``min_k`` to ``max_k`` (defaults to the sweep ceiling).

    ``max_k`` defaults to the ``REPRO_MAX_K`` environment variable when set,
    otherwise to :data:`DEFAULT_MAX_K`.
    """
    if max_k is None:
        max_k = int(os.environ.get("REPRO_MAX_K", DEFAULT_MAX_K))
    if max_k < min_k:
        raise ValueError(f"max_k={max_k} is smaller than min_k={min_k}")
    values = []
    exponent = int(round(math.log10(min_k)))
    while 10**exponent <= max_k:
        values.append(10**exponent)
        exponent += 1
    return values


def paper_protocol_suite(
    include_lfa: bool = True,
    include_llib: bool = True,
) -> list[ProtocolSpec]:
    """The five curves of Figure 1, with the parameters of Section 5."""
    suite: list[ProtocolSpec] = []
    if include_lfa:
        suite.append(
            ProtocolSpec(
                key="lfa-xt2",
                label="Log-Fails Adaptive (2)",
                spec="log-fails-adaptive"
                f"(xi_t=0.5,xi_delta={LFA_XI_DELTA_DEFAULT},xi_beta={LFA_XI_BETA_DEFAULT})",
                analysis_ratio=lambda k: core_analysis.lfa_leading_constant(0.5),
            )
        )
        suite.append(
            ProtocolSpec(
                key="lfa-xt10",
                label="Log-Fails Adaptive (10)",
                spec="log-fails-adaptive"
                f"(xi_t=0.1,xi_delta={LFA_XI_DELTA_DEFAULT},xi_beta={LFA_XI_BETA_DEFAULT})",
                analysis_ratio=lambda k: core_analysis.lfa_leading_constant(0.1),
            )
        )
    suite.append(
        ProtocolSpec(
            key="ofa",
            label="One-Fail Adaptive",
            spec=f"one-fail-adaptive(delta={OFA_DELTA_DEFAULT})",
            analysis_ratio=lambda k: core_analysis.ofa_leading_constant(OFA_DELTA_DEFAULT),
        )
    )
    suite.append(
        ProtocolSpec(
            key="ebb",
            label="Exp Back-on/Back-off",
            spec=f"exp-backon-backoff(delta={EBB_DELTA_DEFAULT})",
            analysis_ratio=lambda k: core_analysis.ebb_leading_constant(EBB_DELTA_DEFAULT),
        )
    )
    if include_llib:
        suite.append(
            ProtocolSpec(
                key="llib",
                label="Loglog-Iterated Backoff",
                spec=f"loglog-iterated-backoff(r={float(LLIB_R_DEFAULT)})",
                analysis_ratio=None,
                analysis_note="Theta(lglg k / lglglg k)",
            )
        )
    return suite


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of a Figure 1 / Table 1 style sweep.

    ``workers`` is the default process count used by
    :func:`~repro.experiments.runner.run_sweep`: ``1`` keeps the historical
    serial behaviour, ``0`` means one worker per CPU.  Seeds are derived
    before dispatch, so the worker count never changes the results.

    ``batch`` (default True) lets the runner group each eligible cell's
    replications into one vectorised
    :class:`~repro.engine.batch_engine.BatchFairEngine` call.  Batched sweeps
    are deterministic in the seed but sample a *different* (distributionally
    identical) set of runs than ``batch=False``, which replays the historical
    per-run streams.

    ``fuse`` (default True) additionally stacks all fusable cells of the
    grid into cross-cell mega-batch kernels
    (:class:`~repro.engine.megabatch.MegaFairEngine` /
    :class:`~repro.engine.megabatch.MegaWindowEngine`) — one fused kernel
    pass per protocol family instead of one batch call per cell.  Requires
    ``batch``; fused sweeps sample yet another (distributionally identical)
    set of runs than per-cell batched ones, deterministic in the seed and
    independent of which cells happen to fuse together.
    """

    k_values: Sequence[int] = field(default_factory=paper_k_values)
    runs: int = DEFAULT_RUNS
    seed: int = 2011  # year of the paper; any fixed value works
    max_slots_factor: int = 10_000
    workers: int = 1
    batch: bool = True
    fuse: bool = True

    def __post_init__(self) -> None:
        if not self.k_values:
            raise ValueError("k_values must not be empty")
        if any(k < 1 for k in self.k_values):
            raise ValueError(f"all k values must be positive, got {list(self.k_values)}")
        if self.runs < 1:
            raise ValueError(f"runs must be positive, got {self.runs}")
        if self.max_slots_factor < 2:
            raise ValueError(f"max_slots_factor must be at least 2, got {self.max_slots_factor}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0 (0 = one per CPU), got {self.workers}")

    def describe(self) -> dict[str, object]:
        return {
            "k_values": list(self.k_values),
            "runs": self.runs,
            "seed": self.seed,
            "max_slots_factor": self.max_slots_factor,
            "workers": self.workers,
            "batch": self.batch,
            "fuse": self.fuse,
        }
