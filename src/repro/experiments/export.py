"""Exporters: CSV, gnuplot data files, Markdown and JSON.

The reproduced artefacts are *data*; these writers put that data in formats a
downstream user can plot or diff:

* ``write_sweep_csv`` — one row per individual run (long format);
* ``write_series_dat`` — one whitespace-separated file per curve, directly
  loadable by gnuplot (the tool the original figure appears to have been made
  with);
* ``write_markdown`` — a rendered table for EXPERIMENTS.md;
* ``write_json`` — the full sweep with per-cell statistics.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.experiments.runner import SweepResult
from repro.util.tables import format_markdown_table

__all__ = [
    "write_sweep_csv",
    "write_series_dat",
    "write_markdown",
    "write_json",
]


def write_sweep_csv(sweep: SweepResult, path: str | Path) -> Path:
    """Write every individual run of the sweep as one CSV row."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fieldnames = [
        "protocol_key",
        "label",
        "k",
        "seed",
        "solved",
        "makespan",
        "steps_per_node",
        "slots_simulated",
        "successes",
        "collisions",
        "silences",
        "engine",
    ]
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for (key, k), cell in sorted(sweep.cells.items()):
            for run in cell.results:
                writer.writerow(
                    {
                        "protocol_key": key,
                        "label": cell.label,
                        "k": k,
                        "seed": run.seed,
                        "solved": run.solved,
                        "makespan": run.makespan if run.makespan is not None else "",
                        "steps_per_node": (
                            f"{run.steps_per_node:.6f}" if run.solved else ""
                        ),
                        "slots_simulated": run.slots_simulated,
                        "successes": run.successes,
                        "collisions": run.collisions,
                        "silences": run.silences,
                        "engine": run.engine,
                    }
                )
    return target


def write_series_dat(sweep: SweepResult, directory: str | Path) -> list[Path]:
    """Write one gnuplot-ready ``<protocol>.dat`` file per curve.

    Each file has the columns ``k  mean_steps  std  min  max`` and can be
    plotted with ``plot 'ofa.dat' using 1:2 with linespoints``.
    """
    target_dir = Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    keys = sorted({key for key, _ in sweep.cells})
    for key in keys:
        ks = sorted(k for cell_key, k in sweep.cells if cell_key == key)
        path = target_dir / f"{key}.dat"
        with path.open("w") as handle:
            handle.write("# k  mean_steps  std  min  max\n")
            for k in ks:
                stats = sweep.cells[(key, k)].makespan_statistics()
                handle.write(
                    f"{k} {stats.mean:.3f} {stats.std:.3f} {stats.minimum:.0f} {stats.maximum:.0f}\n"
                )
        written.append(path)
    return written


def write_markdown(headers: list[str], rows: list[list[object]], path: str | Path) -> Path:
    """Write a Markdown table to ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(format_markdown_table(headers, rows) + "\n")
    return target


def write_json(sweep: SweepResult, path: str | Path) -> Path:
    """Write the sweep configuration and per-cell statistics as JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, object] = {
        "config": sweep.config.describe(),
        "cells": [
            {
                "protocol_key": key,
                "label": cell.label,
                "k": k,
                "runs": len(cell.results),
                "solved_runs": len(cell.solved_results),
                "elapsed_seconds": cell.elapsed_seconds,
                "makespan": cell.makespan_statistics().to_dict() if cell.makespans else None,
                "ratio": cell.ratio_statistics().to_dict() if cell.makespans else None,
            }
            for (key, k), cell in sorted(sweep.cells.items())
        ],
    }
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target
