"""Reproduction of Table 1: steps/nodes ratio as a function of k.

Table 1 of the paper divides the Figure 1 averages by k and appends the
constant predicted by each protocol's analysis.  The paper's reference values
(for its own simulation, averaged over 10 runs) are kept here verbatim so the
reproduction can be compared side by side; see EXPERIMENTS.md for the
measured-vs-paper discussion.

Run with::

    python -m repro.experiments.table1 --max-k 10000
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.config import (
    DEFAULT_RUNS,
    ExperimentConfig,
    ProtocolSpec,
    paper_k_values,
    paper_protocol_suite,
)
from repro.experiments.export import write_json, write_markdown, write_sweep_csv
from repro.experiments.runner import SweepResult, run_sweep
from repro.util.tables import format_markdown_table, format_text_table

__all__ = ["Table1Result", "reproduce_table1", "PAPER_TABLE1", "main"]

#: The ratios published in Table 1 of the paper (steps/nodes, 10-run averages),
#: keyed by protocol spec key and then by k.  "analysis" is the constant the
#: paper reports from each protocol's analysis.
PAPER_TABLE1: dict[str, dict[int | str, float | str]] = {
    "lfa-xt2": {
        10: 46.4, 100: 1292.4, 1_000: 181.9, 10_000: 26.6,
        100_000: 9.4, 1_000_000: 8.0, 10_000_000: 7.8, "analysis": 7.8,
    },
    "lfa-xt10": {
        10: 26.3, 100: 3289.2, 1_000: 593.8, 10_000: 50.3,
        100_000: 11.5, 1_000_000: 4.5, 10_000_000: 4.4, "analysis": 4.4,
    },
    "ofa": {
        10: 4.0, 100: 6.9, 1_000: 7.4, 10_000: 7.4,
        100_000: 7.4, 1_000_000: 7.4, 10_000_000: 7.4, "analysis": 7.4,
    },
    "ebb": {
        10: 4.0, 100: 5.5, 1_000: 5.2, 10_000: 7.2,
        100_000: 6.6, 1_000_000: 5.6, 10_000_000: 7.9, "analysis": 14.9,
    },
    "llib": {
        10: 5.6, 100: 8.6, 1_000: 9.6, 10_000: 9.2,
        100_000: 10.5, 1_000_000: 10.5, 10_000_000: 10.1,
        "analysis": "Theta(lglg k/lglglg k)",
    },
}


@dataclass
class Table1Result:
    """The reproduced Table 1 plus the paper's reference values."""

    sweep: SweepResult
    specs: list[ProtocolSpec]

    def measured_ratio(self, spec_key: str, k: int) -> float:
        return self.sweep.cell(spec_key, k).mean_ratio

    def rows(self, float_format: str = ".1f") -> tuple[list[str], list[list[object]]]:
        """Headers and rows of the reproduced table (measured ratios)."""
        k_values = list(self.sweep.config.k_values)
        headers = ["k"] + [str(k) for k in k_values] + ["Analysis"]
        body: list[list[object]] = []
        for spec in self.specs:
            row: list[object] = [spec.label]
            for k in k_values:
                row.append(format(self.measured_ratio(spec.key, k), float_format))
            row.append(spec.analysis_text())
            body.append(row)
        return headers, body

    def comparison_rows(self, float_format: str = ".1f") -> tuple[list[str], list[list[object]]]:
        """Measured ratios next to the paper's, for the k values swept."""
        k_values = list(self.sweep.config.k_values)
        headers = ["Protocol", "k", "measured steps/k", "paper steps/k"]
        body: list[list[object]] = []
        for spec in self.specs:
            reference = PAPER_TABLE1.get(spec.key, {})
            for k in k_values:
                paper_value = reference.get(k, "-")
                body.append(
                    [
                        spec.label,
                        k,
                        format(self.measured_ratio(spec.key, k), float_format),
                        paper_value if isinstance(paper_value, str) else format(paper_value, float_format),
                    ]
                )
        return headers, body

    def render(self, markdown: bool = False) -> str:
        headers, body = self.rows()
        if markdown:
            return format_markdown_table(headers, body)
        return format_text_table(headers, body)

    def render_comparison(self, markdown: bool = False) -> str:
        headers, body = self.comparison_rows()
        if markdown:
            return format_markdown_table(headers, body)
        return format_text_table(headers, body)


def reproduce_table1(
    config: ExperimentConfig | None = None,
    specs: list[ProtocolSpec] | None = None,
    engine: str = "auto",
    progress: bool = False,
    store_dir: "str | Path | None" = None,
) -> Table1Result:
    """Run the Table 1 sweep (same sweep as Figure 1) and return the ratios.

    ``store_dir`` names an optional Session result store (a directory, store
    spec string, or built backend); completed cells are persisted there and
    served from it on re-run (resumable sweeps).
    """
    if config is None:
        config = ExperimentConfig()
    if specs is None:
        specs = paper_protocol_suite()

    def progress_callback(spec: ProtocolSpec, k: int, done: int, total: int) -> None:
        if done == total:
            print(f"[table1] {spec.label}: k={k} ({total} runs done)", file=sys.stderr)  # repro: noqa[OBS001] - experiment stdout is the artefact

    sweep = run_sweep(
        specs,
        config,
        engine=engine,
        progress=progress_callback if progress else None,
        store_dir=store_dir,
    )
    return Table1Result(sweep=sweep, specs=list(specs))


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point (also installed as ``repro-table1``)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-k", type=int, default=None, help="largest network size to sweep")
    parser.add_argument("--runs", type=int, default=DEFAULT_RUNS, help="runs per (protocol, k)")
    parser.add_argument("--seed", type=int, default=2011, help="root seed of the sweep")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep (0 = one per CPU); results are identical for any value",
    )
    parser.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="vectorise each eligible cell's runs into one batch-engine call "
        "(--no-batch replays the historical per-run streams)",
    )
    parser.add_argument(
        "--fuse",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="fuse all same-kind cells of the sweep into cross-cell mega-batch "
        "kernels (--no-fuse falls back to one batch call per cell)",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory for CSV/Markdown/JSON artefacts (omit to skip writing)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="Session result store (directory or spec like sqlite:results.db): "
        "completed cells are persisted there and served from it on re-run "
        "(resumable sweeps)",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    args = parser.parse_args(argv)

    config = ExperimentConfig(
        k_values=paper_k_values(max_k=args.max_k),
        runs=args.runs,
        seed=args.seed,
        workers=args.workers,
        batch=args.batch,
        fuse=args.fuse,
    )
    table = reproduce_table1(config=config, progress=not args.quiet, store_dir=args.store)

    print("Table 1 — ratio steps/nodes as a function of the number of nodes k (measured)")  # repro: noqa[OBS001] - experiment stdout is the artefact
    print()  # repro: noqa[OBS001] - experiment stdout is the artefact
    print(table.render())  # repro: noqa[OBS001] - experiment stdout is the artefact
    print()  # repro: noqa[OBS001] - experiment stdout is the artefact
    print("Measured vs paper:")  # repro: noqa[OBS001] - experiment stdout is the artefact
    print()  # repro: noqa[OBS001] - experiment stdout is the artefact
    print(table.render_comparison())  # repro: noqa[OBS001] - experiment stdout is the artefact

    if args.output_dir is not None:
        headers, body = table.rows()
        write_markdown(headers, body, args.output_dir / "table1_measured.md")
        headers, body = table.comparison_rows()
        write_markdown(headers, body, args.output_dir / "table1_comparison.md")
        write_sweep_csv(table.sweep, args.output_dir / "table1_runs.csv")
        write_json(table.sweep, args.output_dir / "table1_summary.json")
        print()  # repro: noqa[OBS001] - experiment stdout is the artefact
        print(f"wrote artefacts to {args.output_dir}")  # repro: noqa[OBS001] - experiment stdout is the artefact
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
