"""Experiment harness: the sweeps behind Figure 1, Table 1 and the ablations.

* :mod:`repro.experiments.config` — experiment configuration, the paper's
  protocol suite (the five curves of Figure 1 with the parameters of
  Section 5), and environment-variable overrides for scale.
* :mod:`repro.experiments.runner` — generic (protocol × k × seeds) sweep
  runner returning per-cell statistics.
* :mod:`repro.experiments.parallel` — the process-pool execution layer the
  runner fans its independent work units out over (``workers=1`` falls back
  to a serial in-process loop).
* :mod:`repro.experiments.figure1` — reproduces Figure 1 (average steps vs k).
* :mod:`repro.experiments.table1` — reproduces Table 1 (steps/k ratios plus
  the analysis column).
* :mod:`repro.experiments.ablations` — δ-sensitivity sweeps for the paper's
  two protocols (experiments E3/E4 of DESIGN.md).
* :mod:`repro.experiments.dynamic` — the dynamic-arrivals extension
  (experiment E6).
* :mod:`repro.experiments.variance` — the makespan-dispersion (predictability)
  experiment (E7).
* :mod:`repro.experiments.export` — CSV / Markdown / gnuplot writers.
"""

from __future__ import annotations

from repro.experiments.config import (
    ExperimentConfig,
    ProtocolSpec,
    paper_k_values,
    paper_protocol_suite,
)
from repro.experiments.parallel import ParallelExecutor, SimulationUnit, UnitOutcome
from repro.experiments.runner import SweepCell, SweepResult, run_sweep
from repro.experiments.figure1 import Figure1Result, reproduce_figure1
from repro.experiments.table1 import Table1Result, reproduce_table1
from repro.experiments.ablations import AblationResult, run_ebb_delta_ablation, run_ofa_delta_ablation
from repro.experiments.dynamic import DynamicResult, run_dynamic_experiment
from repro.experiments.variance import VarianceResult, run_variance_experiment

__all__ = [
    "ExperimentConfig",
    "ProtocolSpec",
    "paper_k_values",
    "paper_protocol_suite",
    "ParallelExecutor",
    "SimulationUnit",
    "UnitOutcome",
    "SweepCell",
    "SweepResult",
    "run_sweep",
    "Figure1Result",
    "reproduce_figure1",
    "Table1Result",
    "reproduce_table1",
    "AblationResult",
    "run_ebb_delta_ablation",
    "run_ofa_delta_ablation",
    "DynamicResult",
    "run_dynamic_experiment",
    "VarianceResult",
    "run_variance_experiment",
]
