"""Generic (protocol × network size × repetitions) sweep runner.

Every experiment in this repository — Figure 1, Table 1, the ablations — is a
sweep of the same shape: for each protocol specification and each network size
``k``, run a number of independently seeded simulations and aggregate their
makespans.  :func:`run_sweep` implements that shape once; the experiment
modules wrap it with the paper's specific protocol suites and presentation.

Since the declarative scenario API landed, :func:`run_sweep` is a thin
*scenario-preset builder*: each (protocol, k) cell whose
:class:`~repro.experiments.config.ProtocolSpec` carries a spec string becomes
one frozen :class:`~repro.scenarios.scenario.Scenario`, and the whole grid is
executed by a :class:`~repro.scenarios.session.Session` — which *fuses* all
same-kind cells of the grid into cross-cell mega-batch kernels by default
(the registry's :func:`~repro.engine.registry.fused_engine_for` picks
:class:`~repro.engine.megabatch.MegaFairEngine` /
:class:`~repro.engine.megabatch.MegaWindowEngine`; ``fuse=False`` opts out),
groups the remaining batch-eligible cells into one vectorised
batch-engine call each
(:func:`~repro.engine.registry.batch_engine_for` picks
:class:`~repro.engine.batch_engine.BatchFairEngine` for fair cells and
:class:`~repro.engine.batch_window_engine.BatchWindowEngine` for windowed
ones), and (when ``store_dir`` is given) persists every replication to a
JSONL store so an interrupted sweep resumes with only the missing cells
executed.

Cell seeds are derived *before* dispatch, exactly as the serial path always
derived them, so ``workers=N`` produces bit-identical cells to ``workers=1``,
and the Session path produces bit-identical cells to the historical direct
path.  Batched cells are deterministic but sample a *different*
(distributionally identical) set of runs than ``batch=False``, which replays
the historical per-run streams.

Protocol specifications that only provide a ``factory`` callable (no spec
string) cannot be content-hashed; their cells take a legacy in-memory unit
path with the same seeds, engine selection and batching rules.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.statistics import RunStatistics, summarize_makespans
from repro.channel.arrivals import ArrivalProcess
from repro.engine.registry import batch_engine_for
from repro.engine.result import SimulationResult
from repro.experiments.config import ExperimentConfig, ProtocolSpec
from repro.experiments.parallel import ParallelExecutor, SimulationUnit, UnitOutcome
from repro.scenarios.scenario import Scenario
from repro.scenarios.session import Session
from repro.util.rng import derive_seeds

__all__ = ["SweepCell", "SweepResult", "run_sweep", "cell_seed_root"]

#: Signature of the optional progress callback: (spec, k, completed_runs, total_runs).
ProgressCallback = Callable[[ProtocolSpec, int, int, int], None]


def cell_seed_root(config: ExperimentConfig, spec_index: int, k_index: int) -> int:
    """Root seed of one (protocol, k) cell — the sweep's historical derivation.

    Depends only on the sweep seed and the cell's position in the grid, so
    every execution path (serial, parallel, batched, Session-cached) sees the
    same per-replication seeds.
    """
    return config.seed + 1_000_003 * spec_index + 7_919 * k_index


@dataclass(frozen=True)
class SweepCell:
    """All runs of one (protocol, k) cell, plus their aggregates.

    ``elapsed_seconds`` is the *aggregate simulation time* of the cell's runs
    (the sum of per-run durations), not wall-clock time: with ``workers > 1``
    the runs execute concurrently and interleaved with other cells, so the
    sum is the only definition that is comparable across worker counts.
    Replications served from a Session store contribute their recorded
    durations.
    """

    spec_key: str
    label: str
    k: int
    results: tuple[SimulationResult, ...]
    elapsed_seconds: float  # batched cells count their single vectorised call once

    @property
    def solved_results(self) -> tuple[SimulationResult, ...]:
        return tuple(result for result in self.results if result.solved)

    @property
    def all_solved(self) -> bool:
        return len(self.solved_results) == len(self.results)

    @property
    def makespans(self) -> list[int]:
        return [result.makespan for result in self.solved_results if result.makespan is not None]

    def makespan_statistics(self) -> RunStatistics:
        return summarize_makespans(self.makespans)

    def ratio_statistics(self) -> RunStatistics:
        return summarize_makespans([makespan / self.k for makespan in self.makespans])

    @property
    def mean_makespan(self) -> float:
        return self.makespan_statistics().mean

    @property
    def mean_ratio(self) -> float:
        return self.ratio_statistics().mean


@dataclass
class SweepResult:
    """All cells of a sweep, indexed by (protocol key, k)."""

    config: ExperimentConfig
    specs: Sequence[ProtocolSpec]
    cells: dict[tuple[str, int], SweepCell] = field(default_factory=dict)

    def cell(self, spec_key: str, k: int) -> SweepCell:
        try:
            return self.cells[(spec_key, k)]
        except KeyError:
            known = sorted({key for key, _ in self.cells})
            raise KeyError(
                f"no cell for protocol {spec_key!r} and k={k}; swept protocols: {known}"
            ) from None

    def series(self, spec_key: str) -> tuple[list[int], list[float]]:
        """Return (k values, mean makespans) for one protocol — a Figure 1 curve."""
        ks = sorted(k for key, k in self.cells if key == spec_key)
        return ks, [self.cells[(spec_key, k)].mean_makespan for k in ks]

    def ratio_series(self, spec_key: str) -> tuple[list[int], list[float]]:
        """Return (k values, mean steps/k ratios) for one protocol — a Table 1 row."""
        ks = sorted(k for key, k in self.cells if key == spec_key)
        return ks, [self.cells[(spec_key, k)].mean_ratio for k in ks]

    def total_runs(self) -> int:
        return sum(len(cell.results) for cell in self.cells.values())

    def total_elapsed_seconds(self) -> float:
        return sum(cell.elapsed_seconds for cell in self.cells.values())


def run_sweep(
    specs: Sequence[ProtocolSpec],
    config: ExperimentConfig,
    engine: str = "auto",
    progress: ProgressCallback | None = None,
    workers: int | None = None,
    arrivals_factory: Callable[[int], ArrivalProcess] | None = None,
    batch: bool | None = None,
    fuse: bool | None = None,
    store_dir: str | Path | None = None,
) -> SweepResult:
    """Run every (protocol, k, repetition) combination of the sweep.

    Seeds are derived deterministically from ``config.seed`` so that the whole
    sweep is reproducible, and so that two protocols at the same (k, run
    index) face statistically independent randomness (they are different
    stochastic processes; sharing seeds would not make them comparable anyway).
    Because every seed is fixed before any run starts, the results do not
    depend on ``workers``: a parallel sweep is bit-identical to a serial one.

    Parameters
    ----------
    specs:
        Protocol specifications (one per curve).
    config:
        Sizes, repetition count, root seed, safety caps and default worker
        count.
    engine:
        Engine selector forwarded to :func:`repro.engine.dispatch.simulate`.
    progress:
        Optional callback invoked after every completed run.  With
        ``workers > 1`` the callback fires in completion order; its
        ``completed`` argument is always the number of runs done *in that
        cell* so far.  Replications served from the store are reported
        immediately, so ``completed`` reaches the total either way.
    workers:
        Worker processes for the sweep; defaults to ``config.workers``.
        ``1`` runs serially in-process, ``0``/``None`` at config level means
        one worker per CPU.
    arrivals_factory:
        Optional mapping from ``k`` to an
        :class:`~repro.channel.arrivals.ArrivalProcess`; when given, every
        run goes through the node-level engine under that arrival process
        (the dynamic workloads of the paper's Section 6) and batching is
        disabled — the batch reduction assumes batched slot-0 arrivals.
        Cells with an arrivals factory take the legacy path (a factory is
        not serializable; use scenario arrival spec strings for cacheable
        dynamic cells).
    batch:
        Whether eligible cells run as one vectorised batch; defaults to
        ``config.batch``.  Eligibility is the registry's
        :func:`~repro.engine.registry.batch_engine_for`; ineligible cells
        (protocols without a vectorised kernel, custom arrivals, explicit
        per-run ``engine`` selectors) silently take the per-run path either
        way.
    fuse:
        Whether fusable cells of the grid are stacked into cross-cell
        mega-batch kernels — one fused kernel pass per (engine, fuse key)
        group instead of one batch call per cell; defaults to
        ``config.fuse`` and requires batching.  Eligibility is the
        registry's :func:`~repro.engine.registry.fused_engine_for`;
        unfusable cells (constant-probability protocols like slotted ALOHA,
        custom channels or arrivals, factory-only specs on the legacy path)
        silently fall back to the per-cell batch or per-run path.
    store_dir:
        Optional Session store directory.  When given, every replication is
        persisted there and completed cells are served from the store on
        re-run — an interrupted sweep resumes with only missing cells
        executed.
    """
    if not specs:
        raise ValueError("run_sweep needs at least one protocol specification")
    effective_workers = config.workers if workers is None else workers
    effective_batch = config.batch if batch is None else batch
    effective_fuse = config.fuse if fuse is None else fuse
    result = SweepResult(config=config, specs=list(specs))

    scenario_cells: list[tuple[ProtocolSpec, int]] = []
    scenarios: list[Scenario] = []
    legacy_units: list[SimulationUnit] = []
    legacy_cells: list[tuple[ProtocolSpec, int]] = []
    cell_order: list[tuple[ProtocolSpec, int]] = []
    for spec_index, spec in enumerate(specs):
        for k_index, k in enumerate(config.k_values):
            seed_root = cell_seed_root(config, spec_index, k_index)
            cell_order.append((spec, k))
            if spec.spec is not None and arrivals_factory is None:
                scenario_cells.append((spec, k))
                scenarios.append(
                    Scenario(
                        protocol=spec.spec,
                        k=k,
                        engine=engine,
                        replications=config.runs,
                        seed=seed_root,
                        max_slots_factor=config.max_slots_factor,
                    )
                )
                continue
            legacy_cells.append((spec, k))
            legacy_units.extend(
                _legacy_cell_units(spec, k, seed_root, config, engine, effective_batch,
                                   arrivals_factory)
            )

    staged: dict[tuple[str, int], SweepCell] = {}

    if scenarios:
        session = Session(
            store_dir=store_dir,
            workers=effective_workers,
            batch=effective_batch,
            fuse=effective_fuse,
        )

        def session_progress(index: int, _scenario: Scenario, done: int, total: int) -> None:
            spec, k = scenario_cells[index]
            assert progress is not None
            progress(spec, k, done, total)

        result_sets = session.run_all(
            scenarios, progress=session_progress if progress is not None else None
        )
        for (spec, k), result_set in zip(scenario_cells, result_sets):
            staged[(spec.key, k)] = SweepCell(
                spec_key=spec.key,
                label=spec.label,
                k=k,
                results=result_set.results,
                elapsed_seconds=result_set.elapsed_seconds,
            )

    if legacy_units:
        staged.update(
            _run_legacy_units(legacy_units, legacy_cells, config, effective_workers, progress)
        )

    for spec, k in cell_order:
        result.cells[(spec.key, k)] = staged[(spec.key, k)]
    return result


def _legacy_cell_units(
    spec: ProtocolSpec,
    k: int,
    seed_root: int,
    config: ExperimentConfig,
    engine: str,
    effective_batch: bool,
    arrivals_factory: Callable[[int], ArrivalProcess] | None,
) -> list[SimulationUnit]:
    """Work units for one factory-only (or arrivals-factory) cell.

    Batch eligibility is the registry's
    :func:`~repro.engine.registry.batch_engine_for` — the same single
    predicate the scenario layer uses — so factory-only cells batch exactly
    when their spec-string siblings would.
    """
    seeds = derive_seeds(seed_root, config.runs)
    arrivals = arrivals_factory(k) if arrivals_factory is not None else None
    protocol = spec.build(k)
    batch_engine = batch_engine_for(protocol, engine=engine, arrivals=arrivals)
    batch_cell = batch_engine is not None and (effective_batch or engine == batch_engine)
    if batch_cell:
        return [
            SimulationUnit(
                protocol=protocol,
                k=k,
                engine=engine,
                max_slots=config.max_slots_factor * k,
                tag=(spec.key, k),
                seeds=tuple(seeds),
            )
        ]
    return [
        SimulationUnit(
            protocol=protocol,
            k=k,
            seed=seed,
            engine=engine,
            max_slots=config.max_slots_factor * k,
            arrivals=arrivals,
            tag=(spec.key, k),
        )
        for seed in seeds
    ]


def _run_legacy_units(
    units: list[SimulationUnit],
    cells: list[tuple[ProtocolSpec, int]],
    config: ExperimentConfig,
    workers: int | None,
    progress: ProgressCallback | None,
) -> dict[tuple[str, int], SweepCell]:
    """Execute factory-only cells exactly as the pre-scenario runner did."""
    completed_per_cell: dict[tuple[str, int], int] = {}
    spec_by_key = {spec.key: spec for spec, _ in cells}

    def unit_progress(outcome: UnitOutcome) -> None:
        assert progress is not None
        spec_key, k = outcome.tag
        for _ in outcome.results:
            done = completed_per_cell.get((spec_key, k), 0) + 1
            completed_per_cell[(spec_key, k)] = done
            progress(spec_by_key[spec_key], k, done, config.runs)

    outcomes = ParallelExecutor(workers=workers).run(
        units, progress=unit_progress if progress is not None else None
    )

    cell_results: dict[tuple[str, int], list[SimulationResult]] = {
        (spec.key, k): [] for spec, k in cells
    }
    cell_elapsed: dict[tuple[str, int], float] = {key: 0.0 for key in cell_results}
    for outcome in outcomes:
        cell_results[outcome.tag].extend(outcome.results)
        cell_elapsed[outcome.tag] += outcome.elapsed_seconds

    return {
        (spec.key, k): SweepCell(
            spec_key=spec.key,
            label=spec.label,
            k=k,
            results=tuple(cell_results[(spec.key, k)]),
            elapsed_seconds=cell_elapsed[(spec.key, k)],
        )
        for spec, k in cells
    }
