"""Generic (protocol × network size × repetitions) sweep runner.

Every experiment in this repository — Figure 1, Table 1, the ablations — is a
sweep of the same shape: for each protocol specification and each network size
``k``, run a number of independently seeded simulations and aggregate their
makespans.  :func:`run_sweep` implements that shape once; the experiment
modules wrap it with the paper's specific protocol suites and presentation.

The sweep's repetitions are mutually independent, so :func:`run_sweep`
flattens the whole sweep into ``(protocol, k, seed)`` work units and hands
them to a :class:`~repro.experiments.parallel.ParallelExecutor`.  Seeds are
derived *before* dispatch, exactly as the serial path always derived them, so
``workers=N`` produces bit-identical cells to ``workers=1``.

Cells whose protocol is batch-eligible (see
:meth:`~repro.engine.batch_engine.BatchFairEngine.supports`) are grouped into
**one vectorised work unit per cell** — all of the cell's replications run in
lockstep inside a single :class:`BatchFairEngine` call — unless batching is
disabled (``batch=False`` / ``config.batch``), an explicit per-run engine is
requested, or an arrival process is in play.  Batching composes with the
executor: cells fan out across worker processes while replications vectorise
within each.  Batched cells are deterministic and independent of the worker
count, but their makespans are a *different* (distributionally identical)
sample than the per-run path's, since the whole batch consumes one
interleaved random stream.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.analysis.statistics import RunStatistics, summarize_makespans
from repro.channel.arrivals import ArrivalProcess
from repro.engine.batch_engine import BatchFairEngine
from repro.engine.result import SimulationResult
from repro.experiments.config import ExperimentConfig, ProtocolSpec
from repro.experiments.parallel import ParallelExecutor, SimulationUnit, UnitOutcome
from repro.util.rng import derive_seeds

__all__ = ["SweepCell", "SweepResult", "run_sweep"]

#: Signature of the optional progress callback: (spec, k, completed_runs, total_runs).
ProgressCallback = Callable[[ProtocolSpec, int, int, int], None]


@dataclass(frozen=True)
class SweepCell:
    """All runs of one (protocol, k) cell, plus their aggregates.

    ``elapsed_seconds`` is the *aggregate simulation time* of the cell's runs
    (the sum of per-run durations), not wall-clock time: with ``workers > 1``
    the runs execute concurrently and interleaved with other cells, so the
    sum is the only definition that is comparable across worker counts.
    """

    spec_key: str
    label: str
    k: int
    results: tuple[SimulationResult, ...]
    elapsed_seconds: float  # batched cells count their single vectorised call once

    @property
    def solved_results(self) -> tuple[SimulationResult, ...]:
        return tuple(result for result in self.results if result.solved)

    @property
    def all_solved(self) -> bool:
        return len(self.solved_results) == len(self.results)

    @property
    def makespans(self) -> list[int]:
        return [result.makespan for result in self.solved_results if result.makespan is not None]

    def makespan_statistics(self) -> RunStatistics:
        return summarize_makespans(self.makespans)

    def ratio_statistics(self) -> RunStatistics:
        return summarize_makespans([makespan / self.k for makespan in self.makespans])

    @property
    def mean_makespan(self) -> float:
        return self.makespan_statistics().mean

    @property
    def mean_ratio(self) -> float:
        return self.ratio_statistics().mean


@dataclass
class SweepResult:
    """All cells of a sweep, indexed by (protocol key, k)."""

    config: ExperimentConfig
    specs: Sequence[ProtocolSpec]
    cells: dict[tuple[str, int], SweepCell] = field(default_factory=dict)

    def cell(self, spec_key: str, k: int) -> SweepCell:
        try:
            return self.cells[(spec_key, k)]
        except KeyError:
            known = sorted({key for key, _ in self.cells})
            raise KeyError(
                f"no cell for protocol {spec_key!r} and k={k}; swept protocols: {known}"
            ) from None

    def series(self, spec_key: str) -> tuple[list[int], list[float]]:
        """Return (k values, mean makespans) for one protocol — a Figure 1 curve."""
        ks = sorted(k for key, k in self.cells if key == spec_key)
        return ks, [self.cells[(spec_key, k)].mean_makespan for k in ks]

    def ratio_series(self, spec_key: str) -> tuple[list[int], list[float]]:
        """Return (k values, mean steps/k ratios) for one protocol — a Table 1 row."""
        ks = sorted(k for key, k in self.cells if key == spec_key)
        return ks, [self.cells[(spec_key, k)].mean_ratio for k in ks]

    def total_runs(self) -> int:
        return sum(len(cell.results) for cell in self.cells.values())

    def total_elapsed_seconds(self) -> float:
        return sum(cell.elapsed_seconds for cell in self.cells.values())


def run_sweep(
    specs: Sequence[ProtocolSpec],
    config: ExperimentConfig,
    engine: str = "auto",
    progress: ProgressCallback | None = None,
    workers: int | None = None,
    arrivals_factory: Callable[[int], ArrivalProcess] | None = None,
    batch: bool | None = None,
) -> SweepResult:
    """Run every (protocol, k, repetition) combination of the sweep.

    Seeds are derived deterministically from ``config.seed`` so that the whole
    sweep is reproducible, and so that two protocols at the same (k, run
    index) face statistically independent randomness (they are different
    stochastic processes; sharing seeds would not make them comparable anyway).
    Because every seed is fixed before any run starts, the results do not
    depend on ``workers``: a parallel sweep is bit-identical to a serial one.

    Parameters
    ----------
    specs:
        Protocol specifications (one per curve).
    config:
        Sizes, repetition count, root seed, safety caps and default worker
        count.
    engine:
        Engine selector forwarded to :func:`repro.engine.dispatch.simulate`.
    progress:
        Optional callback invoked after every completed run.  With
        ``workers > 1`` the callback fires in completion order; its
        ``completed`` argument is always the number of runs done *in that
        cell* so far.
    workers:
        Worker processes for the sweep; defaults to ``config.workers``.
        ``1`` runs serially in-process, ``0``/``None`` at config level means
        one worker per CPU.
    arrivals_factory:
        Optional mapping from ``k`` to an
        :class:`~repro.channel.arrivals.ArrivalProcess`; when given, every
        run goes through the node-level engine under that arrival process
        (the dynamic workloads of the paper's Section 6) and batching is
        disabled — the batch reduction assumes batched slot-0 arrivals.
    batch:
        Whether eligible cells run as one vectorised batch; defaults to
        ``config.batch``.  Ineligible cells (non-fair protocols, protocols
        without a vectorised state, custom arrivals, explicit per-run
        ``engine`` selectors) silently take the per-run path either way.
    """
    if not specs:
        raise ValueError("run_sweep needs at least one protocol specification")
    effective_workers = config.workers if workers is None else workers
    effective_batch = config.batch if batch is None else batch
    result = SweepResult(config=config, specs=list(specs))

    units: list[SimulationUnit] = []
    cell_order: list[tuple[ProtocolSpec, int]] = []
    for spec_index, spec in enumerate(specs):
        for k_index, k in enumerate(config.k_values):
            cell_seed_root = config.seed + 1_000_003 * spec_index + 7_919 * k_index
            seeds = derive_seeds(cell_seed_root, config.runs)
            cell_order.append((spec, k))
            arrivals = arrivals_factory(k) if arrivals_factory is not None else None
            protocol = spec.build(k)
            batch_cell = (
                (effective_batch or engine == "batch")
                and engine in ("auto", "batch")
                and arrivals is None
                and BatchFairEngine.supports(protocol)
            )
            if batch_cell:
                units.append(
                    SimulationUnit(
                        protocol=protocol,
                        k=k,
                        engine=engine,
                        max_slots=config.max_slots_factor * k,
                        tag=(spec.key, k),
                        seeds=tuple(seeds),
                    )
                )
                continue
            for seed in seeds:
                units.append(
                    SimulationUnit(
                        protocol=protocol,
                        k=k,
                        seed=seed,
                        engine=engine,
                        max_slots=config.max_slots_factor * k,
                        arrivals=arrivals,
                        tag=(spec.key, k),
                    )
                )

    completed_per_cell: dict[tuple[str, int], int] = {}
    spec_by_key = {spec.key: spec for spec in specs}

    def unit_progress(outcome: UnitOutcome) -> None:
        if progress is None:
            return
        spec_key, k = outcome.tag
        for _ in outcome.results:
            done = completed_per_cell.get((spec_key, k), 0) + 1
            completed_per_cell[(spec_key, k)] = done
            progress(spec_by_key[spec_key], k, done, config.runs)

    outcomes = ParallelExecutor(workers=effective_workers).run(
        units, progress=unit_progress if progress is not None else None
    )

    cell_results: dict[tuple[str, int], list[SimulationResult]] = {
        (spec.key, k): [] for spec, k in cell_order
    }
    cell_elapsed: dict[tuple[str, int], float] = {key: 0.0 for key in cell_results}
    for outcome in outcomes:
        cell_results[outcome.tag].extend(outcome.results)
        cell_elapsed[outcome.tag] += outcome.elapsed_seconds

    for spec, k in cell_order:
        result.cells[(spec.key, k)] = SweepCell(
            spec_key=spec.key,
            label=spec.label,
            k=k,
            results=tuple(cell_results[(spec.key, k)]),
            elapsed_seconds=cell_elapsed[(spec.key, k)],
        )
    return result
