"""Ablation sweeps over the protocols' δ parameter (experiments E3 and E4).

The paper fixes ``δ = 2.72`` for One-fail Adaptive and ``δ = 0.366`` for Exp
Back-on/Back-off without exploring the sensitivity of the makespan to those
choices (the theorems admit ranges ``(e, 2.99]`` and ``(0, 1/e)``
respectively).  These ablations quantify that sensitivity: for each admissible
δ on a grid and each network size, they measure the mean steps/k ratio, which
is how the design choice recorded in DESIGN.md is justified empirically.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.statistics import RunStatistics, summarize_makespans
from repro.core import analysis as core_analysis
from repro.core.constants import EBB_DELTA_MAX, OFA_DELTA_MAX, OFA_DELTA_MIN
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.dispatch import simulate
from repro.util.rng import derive_seeds
from repro.util.tables import format_text_table

__all__ = ["AblationResult", "run_ofa_delta_ablation", "run_ebb_delta_ablation"]


@dataclass(frozen=True)
class AblationCell:
    """Measured ratios for one (δ, k) combination."""

    delta: float
    k: int
    ratio: RunStatistics
    analysis_constant: float


@dataclass
class AblationResult:
    """Result of a δ-sweep for one protocol."""

    protocol_label: str
    cells: list[AblationCell]

    def render(self) -> str:
        headers = ["delta", "k", "mean steps/k", "std", "analysis constant"]
        rows = [
            [
                f"{cell.delta:.3f}",
                cell.k,
                f"{cell.ratio.mean:.2f}",
                f"{cell.ratio.std:.2f}",
                f"{cell.analysis_constant:.2f}",
            ]
            for cell in self.cells
        ]
        return format_text_table(headers, rows)

    def best_delta(self, k: int) -> float:
        """The δ with the smallest mean ratio at network size ``k``."""
        candidates = [cell for cell in self.cells if cell.k == k]
        if not candidates:
            raise ValueError(f"no ablation cells for k={k}")
        return min(candidates, key=lambda cell: cell.ratio.mean).delta


def _run_delta_grid(
    protocol_factory,
    analysis_constant,
    deltas: Sequence[float],
    k_values: Sequence[int],
    runs: int,
    seed: int,
    label: str,
) -> AblationResult:
    cells: list[AblationCell] = []
    for delta_index, delta in enumerate(deltas):
        for k_index, k in enumerate(k_values):
            seeds = derive_seeds(seed + 131 * delta_index + 17 * k_index, runs)
            makespans = []
            for run_seed in seeds:
                result = simulate(protocol_factory(delta), k, seed=run_seed)
                if result.solved and result.makespan is not None:
                    makespans.append(result.makespan / k)
            if not makespans:
                raise RuntimeError(f"{label}: no solved runs for delta={delta}, k={k}")
            cells.append(
                AblationCell(
                    delta=float(delta),
                    k=int(k),
                    ratio=summarize_makespans(makespans),
                    analysis_constant=analysis_constant(delta),
                )
            )
    return AblationResult(protocol_label=label, cells=cells)


def run_ofa_delta_ablation(
    deltas: Sequence[float] | None = None,
    k_values: Sequence[int] = (100, 1_000, 10_000),
    runs: int = 5,
    seed: int = 7,
) -> AblationResult:
    """Sweep One-fail Adaptive's δ over (e, 2.99] (experiment E4)."""
    if deltas is None:
        low = OFA_DELTA_MIN + 0.002
        high = OFA_DELTA_MAX
        deltas = [low, 2.72, 2.8, 2.9, high]
    return _run_delta_grid(
        protocol_factory=lambda delta: OneFailAdaptive(delta=delta),
        analysis_constant=core_analysis.ofa_leading_constant,
        deltas=deltas,
        k_values=k_values,
        runs=runs,
        seed=seed,
        label="One-Fail Adaptive",
    )


def run_ebb_delta_ablation(
    deltas: Sequence[float] | None = None,
    k_values: Sequence[int] = (100, 1_000, 10_000),
    runs: int = 5,
    seed: int = 11,
) -> AblationResult:
    """Sweep Exp Back-on/Back-off's δ over (0, 1/e) (experiment E3)."""
    if deltas is None:
        deltas = [0.05, 0.15, 0.25, 0.33, 0.366, EBB_DELTA_MAX - 0.001]
    return _run_delta_grid(
        protocol_factory=lambda delta: ExpBackonBackoff(delta=delta),
        analysis_constant=core_analysis.ebb_leading_constant,
        deltas=deltas,
        k_values=k_values,
        runs=runs,
        seed=seed,
        label="Exp Back-on/Back-off",
    )
