"""Parallel execution of independent simulation work units.

Every experiment in this repository decomposes into *work units* — one
``(protocol, k, seed)`` simulation each — that share no state: the per-unit
seed is derived deterministically by the caller, so the units can run in any
order, on any worker, and still produce bit-identical results.

:class:`ParallelExecutor` exploits that: it fans a sequence of
:class:`SimulationUnit` out over a :class:`concurrent.futures.ProcessPoolExecutor`
and returns the results *in submission order*, so callers that assemble cells
from slices of the output cannot tell the difference from the serial path
(except for the wall clock).  ``workers=1`` short-circuits to a plain
in-process loop with no pickling or process-pool overhead, which keeps the
serial path exactly as cheap — and exactly as debuggable — as before.

Work units carry materialised protocol and arrival-process *instances* (not
the factories of :class:`~repro.experiments.config.ProtocolSpec`, which are
often lambdas and therefore unpicklable); all of the repository's protocol
and arrival classes are plain attribute holders that pickle cleanly.

A unit may also be a *batch*: one vectorised
:func:`~repro.engine.dispatch.simulate_batch` call covering many replications
of the same (protocol, k) cell (``seeds`` set instead of ``seed``).  Batch
units compose with the process pool exactly like single-run units — cells fan
out across workers while each cell's replications run vectorised within one —
and their outcome carries one result per seed.

The largest unit is a *fused group*: one
:func:`~repro.engine.dispatch.simulate_megabatch` call covering many whole
(protocol, k) cells (``cells`` set instead of ``seeds``/``seed``).  The fused
kernel's wall clock is one measurement for the whole group, so the outcome
apportions it back to the member cells in proportion to the rows × slots each
cell actually kept live inside the kernel — the best available estimate of
each cell's share of the fused work.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from repro.channel.arrivals import ArrivalProcess
from repro.channel.model import ChannelModel
from repro.engine.dispatch import FusedCell, simulate, simulate_batch, simulate_megabatch
from repro.engine.result import SimulationResult
from repro.protocols.base import Protocol

__all__ = [
    "FusedCell",
    "FusedCellOutcome",
    "SimulationUnit",
    "UnitOutcome",
    "ParallelExecutor",
    "resolve_workers",
]

#: Cap on in-flight futures per worker; bounds parent-side memory for huge
#: sweeps without starving the pool.
_MAX_INFLIGHT_PER_WORKER = 4


@dataclass(frozen=True)
class SimulationUnit:
    """One independent simulation: everything :func:`simulate` needs.

    Attributes
    ----------
    protocol:
        Materialised protocol instance (spawned fresh inside the engine, so
        sharing one instance across units is safe).
    k:
        Number of messages.
    seed:
        Root seed of the run (derived by the caller; determinism lives here).
    engine:
        Engine selector forwarded to :func:`repro.engine.dispatch.simulate`.
    max_slots:
        Safety cap forwarded to the engine.
    arrivals:
        Optional arrival process (routes the unit to the node-level engine).
    channel:
        Optional non-default channel model, forwarded to the engine
        (``None`` is the paper's channel).
    tag:
        Opaque caller marker (e.g. a ``(spec_key, k)`` cell id); carried
        through to :class:`UnitOutcome` untouched.
    seeds:
        When set, the unit is a *batch*: all listed replications run in one
        :func:`~repro.engine.dispatch.simulate_batch` call (``seed`` and
        ``arrivals`` are ignored; the protocol must be batch-eligible, and
        ``engine`` selects among the batched engines — ``"auto"`` resolves
        through the registry's batch-eligibility query).
    cells:
        When set, the unit is a *fused group*: every listed
        :class:`~repro.engine.megabatch.FusedCell` runs in one
        :func:`~repro.engine.dispatch.simulate_megabatch` kernel pass
        (``protocol``/``k``/``seed``/``seeds``/``arrivals``/``max_slots``
        are ignored — each cell carries its own; ``protocol`` and ``k``
        should mirror the first cell for display purposes).  The outcome
        carries one :class:`FusedCellOutcome` per cell, tagged with the
        cell's own ``tag``.
    """

    protocol: Protocol
    k: int
    seed: int = 0
    engine: str = "auto"
    max_slots: int | None = None
    arrivals: ArrivalProcess | None = None
    channel: ChannelModel | None = None
    tag: object = None
    seeds: tuple[int, ...] | None = None
    cells: tuple[FusedCell, ...] | None = None


@dataclass(frozen=True)
class FusedCellOutcome:
    """One cell's slice of a fused-group execution.

    ``elapsed_seconds`` is the cell's apportioned share of the fused
    kernel's wall clock, weighted by the slots its rows actually simulated
    (cells that retire early cost — and are charged — less).
    """

    tag: object
    results: tuple[SimulationResult, ...]
    elapsed_seconds: float


@dataclass(frozen=True)
class UnitOutcome:
    """Result(s) of one executed unit plus its execution cost.

    Single-run units populate both ``result`` and the one-element
    ``results``; batch units populate ``results`` (one entry per seed, in
    seed order) and leave ``result`` ``None``; fused-group units populate
    ``cells`` (one :class:`FusedCellOutcome` per fused cell, in cell order)
    plus the flattened ``results``.
    """

    index: int
    result: SimulationResult | None
    elapsed_seconds: float
    tag: object = None
    results: tuple[SimulationResult, ...] = field(default=())
    cells: tuple[FusedCellOutcome, ...] | None = None

    def __post_init__(self) -> None:
        if not self.results and self.result is not None:
            object.__setattr__(self, "results", (self.result,))


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` request: ``None``/``0`` means "all CPUs"."""
    if workers is None or workers == 0:
        return max(os.cpu_count() or 1, 1)
    if workers < 0:
        raise ValueError(f"workers must be positive (or 0/None for all CPUs), got {workers}")
    return workers


def _execute_unit(index: int, unit: SimulationUnit) -> UnitOutcome:
    """Run one unit (module-level so process pools can pickle it)."""
    started = time.perf_counter()
    if unit.cells is not None:
        per_cell = simulate_megabatch(
            unit.cells,
            engine=unit.engine,
            channel=unit.channel,
        )
        elapsed = time.perf_counter() - started
        # The kernel's cost is one number for the whole group; attribute it
        # to cells by the rows × slots they kept live (retired rows stop
        # contributing), so per-cell elapsed_seconds stays meaningful for
        # sweep reporting even though the cells ran fused.
        weights = [
            sum(result.slots_simulated for result in cell_results)
            for cell_results in per_cell
        ]
        total_weight = sum(weights) or len(per_cell)
        cell_outcomes = tuple(
            FusedCellOutcome(
                tag=cell.tag,
                results=tuple(cell_results),
                elapsed_seconds=elapsed * (weight if sum(weights) else 1) / total_weight,
            )
            for cell, cell_results, weight in zip(unit.cells, per_cell, weights)
        )
        return UnitOutcome(
            index=index,
            result=None,
            elapsed_seconds=elapsed,
            tag=unit.tag,
            results=tuple(
                result for cell_results in per_cell for result in cell_results
            ),
            cells=cell_outcomes,
        )
    if unit.seeds is not None:
        results = simulate_batch(
            unit.protocol,
            unit.k,
            unit.seeds,
            engine=unit.engine,
            channel=unit.channel,
            max_slots=unit.max_slots,
        )
        return UnitOutcome(
            index=index,
            result=None,
            elapsed_seconds=time.perf_counter() - started,
            tag=unit.tag,
            results=tuple(results),
        )
    result = simulate(
        unit.protocol,
        unit.k,
        seed=unit.seed,
        engine=unit.engine,
        channel=unit.channel,
        max_slots=unit.max_slots,
        arrivals=unit.arrivals,
    )
    return UnitOutcome(
        index=index,
        result=result,
        elapsed_seconds=time.perf_counter() - started,
        tag=unit.tag,
    )


@dataclass
class ParallelExecutor:
    """Run simulation units serially or across a process pool.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (the default) runs everything in
        the calling process; ``None`` or ``0`` uses every CPU.

    Results are returned in submission order regardless of completion order,
    and per-unit seeds travel with the units, so a ``workers=N`` execution is
    bit-identical to ``workers=1`` — the test suite asserts this.
    """

    workers: int | None = 1

    def __post_init__(self) -> None:
        self.workers = resolve_workers(self.workers)

    def run(
        self,
        units: Sequence[SimulationUnit],
        progress: Callable[[UnitOutcome], None] | None = None,
    ) -> list[UnitOutcome]:
        """Execute every unit and return their outcomes in submission order.

        ``progress`` (if given) is called once per completed unit — in
        submission order on the serial path, in completion order on the
        parallel path.
        """
        if self.workers == 1 or len(units) <= 1:
            return self._run_serial(units, progress)
        return self._run_pool(units, progress)

    def _run_serial(
        self,
        units: Sequence[SimulationUnit],
        progress: Callable[[UnitOutcome], None] | None,
    ) -> list[UnitOutcome]:
        outcomes = []
        for index, unit in enumerate(units):
            outcome = _execute_unit(index, unit)
            if progress is not None:
                progress(outcome)
            outcomes.append(outcome)
        return outcomes

    def _run_pool(
        self,
        units: Sequence[SimulationUnit],
        progress: Callable[[UnitOutcome], None] | None,
    ) -> list[UnitOutcome]:
        max_inflight = self.workers * _MAX_INFLIGHT_PER_WORKER
        outcomes: list[UnitOutcome | None] = [None] * len(units)
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            pending = set()
            queued = enumerate(units)
            exhausted = False
            while pending or not exhausted:
                while not exhausted and len(pending) < max_inflight:
                    try:
                        index, unit = next(queued)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.add(pool.submit(_execute_unit, index, unit))
                if not pending:
                    break
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    outcome = future.result()
                    outcomes[outcome.index] = outcome
                    if progress is not None:
                        progress(outcome)
        # Callers assemble cells from the outcome list (relying on submission
        # order), so a lost unit must be an error, never a silently shorter
        # list.
        missing = [index for index, outcome in enumerate(outcomes) if outcome is None]
        if missing:
            raise RuntimeError(f"process pool returned no outcome for units {missing}")
        return outcomes
