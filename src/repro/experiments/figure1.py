"""Reproduction of Figure 1: average steps to solve static k-selection vs k.

The paper's Figure 1 is a log-log plot with one curve per protocol (the five
of Section 5) and one point per power-of-ten network size, each point being
the average of 10 independent runs.  :func:`reproduce_figure1` runs that sweep
and returns the curves; the module's ``main`` renders them as an ASCII log-log
plot and writes CSV / gnuplot / JSON artefacts.

Run it with::

    python -m repro.experiments.figure1 --max-k 10000 --runs 10 --output-dir results/

or, for the full paper range (slow on one CPU)::

    REPRO_MAX_K=10000000 python -m repro.experiments.figure1
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.config import (
    DEFAULT_RUNS,
    ExperimentConfig,
    ProtocolSpec,
    paper_k_values,
    paper_protocol_suite,
)
from repro.experiments.export import write_json, write_series_dat, write_sweep_csv
from repro.experiments.runner import SweepResult, run_sweep
from repro.util.tables import format_text_table
from repro.util.textplot import LogLogPlot

__all__ = ["Figure1Result", "reproduce_figure1", "main"]


@dataclass
class Figure1Result:
    """The reproduced Figure 1: one (k values, mean steps) series per curve."""

    sweep: SweepResult
    series: dict[str, tuple[list[int], list[float]]]
    labels: dict[str, str]

    def render_plot(self, width: int = 72, height: int = 24) -> str:
        """ASCII rendering of the log-log figure."""
        plot = LogLogPlot(width=width, height=height, x_label="Nodes (k)", y_label="Steps")
        for key, (ks, means) in self.series.items():
            plot.add_series(self.labels.get(key, key), ks, means)
        return plot.render()

    def render_table(self) -> str:
        """Mean steps per (protocol, k) as an aligned text table."""
        keys = list(self.series)
        ks = sorted({k for key in keys for k in self.series[key][0]})
        headers = ["k"] + [self.labels.get(key, key) for key in keys]
        rows = []
        for k in ks:
            row: list[object] = [k]
            for key in keys:
                k_values, means = self.series[key]
                if k in k_values:
                    row.append(means[k_values.index(k)])
                else:
                    row.append("-")
            rows.append(row)
        return format_text_table(headers, rows, float_format=".1f")


def reproduce_figure1(
    config: ExperimentConfig | None = None,
    specs: list[ProtocolSpec] | None = None,
    engine: str = "auto",
    progress: bool = False,
    store_dir: "str | Path | None" = None,
) -> Figure1Result:
    """Run the Figure 1 sweep and return the curves.

    Parameters
    ----------
    config:
        Sweep configuration; defaults to the paper's (10 runs per point,
        powers of ten up to the ``REPRO_MAX_K`` ceiling).
    specs:
        Protocol curves; defaults to the paper's five.
    engine:
        Engine selector (``"auto"`` picks the cheapest exact engine).
    progress:
        When true, prints one line per completed (protocol, k) cell to stderr.
    store_dir:
        Optional Session result store (a directory, store spec string, or
        built backend): completed cells are persisted there and served from
        it on re-run (resumable sweeps).
    """
    if config is None:
        config = ExperimentConfig()
    if specs is None:
        specs = paper_protocol_suite()

    def progress_callback(spec: ProtocolSpec, k: int, done: int, total: int) -> None:
        if done == total:
            print(f"[figure1] {spec.label}: k={k} ({total} runs done)", file=sys.stderr)  # repro: noqa[OBS001] - experiment stdout is the artefact

    sweep = run_sweep(
        specs,
        config,
        engine=engine,
        progress=progress_callback if progress else None,
        store_dir=store_dir,
    )
    series = {spec.key: sweep.series(spec.key) for spec in specs}
    labels = {spec.key: spec.label for spec in specs}
    return Figure1Result(sweep=sweep, series=series, labels=labels)


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point (also installed as ``repro-figure1``)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-k", type=int, default=None, help="largest network size to sweep")
    parser.add_argument("--runs", type=int, default=DEFAULT_RUNS, help="runs per (protocol, k)")
    parser.add_argument("--seed", type=int, default=2011, help="root seed of the sweep")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep (0 = one per CPU); results are identical for any value",
    )
    parser.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="vectorise each eligible cell's runs into one batch-engine call "
        "(--no-batch replays the historical per-run streams)",
    )
    parser.add_argument(
        "--fuse",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="fuse all same-kind cells of the sweep into cross-cell mega-batch "
        "kernels (--no-fuse falls back to one batch call per cell)",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory for CSV/gnuplot/JSON artefacts (omit to skip writing)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="Session result store (directory or spec like sqlite:results.db): "
        "completed cells are persisted there and served from it on re-run "
        "(resumable sweeps)",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    args = parser.parse_args(argv)

    config = ExperimentConfig(
        k_values=paper_k_values(max_k=args.max_k),
        runs=args.runs,
        seed=args.seed,
        workers=args.workers,
        batch=args.batch,
        fuse=args.fuse,
    )
    figure = reproduce_figure1(config=config, progress=not args.quiet, store_dir=args.store)

    print("Figure 1 — number of steps to solve static k-selection, per number of nodes k")  # repro: noqa[OBS001] - experiment stdout is the artefact
    print()  # repro: noqa[OBS001] - experiment stdout is the artefact
    print(figure.render_table())  # repro: noqa[OBS001] - experiment stdout is the artefact
    print()  # repro: noqa[OBS001] - experiment stdout is the artefact
    print(figure.render_plot())  # repro: noqa[OBS001] - experiment stdout is the artefact

    if args.output_dir is not None:
        csv_path = write_sweep_csv(figure.sweep, args.output_dir / "figure1_runs.csv")
        dat_paths = write_series_dat(figure.sweep, args.output_dir / "figure1_series")
        json_path = write_json(figure.sweep, args.output_dir / "figure1_summary.json")
        print()  # repro: noqa[OBS001] - experiment stdout is the artefact
        print(f"wrote {csv_path}, {json_path} and {len(dat_paths)} gnuplot series files")  # repro: noqa[OBS001] - experiment stdout is the artefact
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
