"""Dynamic k-selection extension (experiment E6).

The paper analyses the *static* problem (all messages arrive in one batch) and
names the *dynamic* problem — messages arriving over time, statistically or
adversarially — as the main open direction (Section 6).  This experiment
exercises the same protocols under the two dynamic arrival processes of
:mod:`repro.channel.arrivals`:

* Poisson arrivals at a configurable per-slot rate, and
* bursty arrivals (batches of ``burst_size`` every ``gap`` slots).

Every run goes through the ordinary :func:`repro.engine.dispatch.simulate`
front door with an explicit ``arrivals=`` process, which routes it to the
exact node-level engine (the fair and window reductions assume batched
arrivals); the runs of a cell are independent, so they fan out over a
:class:`~repro.experiments.parallel.ParallelExecutor` exactly like the static
sweeps.  The reported metrics are the makespan (slot of the last delivery)
and the per-message delivery latency (delivery slot − arrival slot), which is
the quantity a dynamic analysis would bound.

Run from the command line with::

    python -m repro dynamic --k 64 --runs 5 --workers 0
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.statistics import RunStatistics, summarize_makespans
from repro.channel.arrivals import ArrivalProcess, BurstyArrival, PoissonArrival
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.experiments.parallel import ParallelExecutor, SimulationUnit
from repro.protocols.base import Protocol
from repro.util.rng import derive_seeds
from repro.util.tables import format_text_table

__all__ = ["DynamicResult", "run_dynamic_experiment", "main"]


@dataclass(frozen=True)
class DynamicCell:
    """Aggregated metrics for one (protocol, arrival process) combination."""

    protocol_label: str
    arrivals_description: str
    k: int
    makespan: RunStatistics
    latency: RunStatistics
    unsolved_runs: int


@dataclass
class DynamicResult:
    """Result of the dynamic-arrivals experiment."""

    cells: list[DynamicCell]

    def render(self) -> str:
        headers = [
            "protocol",
            "arrivals",
            "k",
            "mean makespan",
            "mean latency",
            "p90 latency",
            "unsolved",
        ]
        rows = [
            [
                cell.protocol_label,
                cell.arrivals_description,
                cell.k,
                f"{cell.makespan.mean:.1f}",
                f"{cell.latency.mean:.1f}",
                f"{cell.latency.p90:.1f}",
                cell.unsolved_runs,
            ]
            for cell in self.cells
        ]
        return format_text_table(headers, rows)


def _default_protocols() -> list[tuple[str, Protocol]]:
    return [
        ("One-Fail Adaptive", OneFailAdaptive()),
        ("Exp Back-on/Back-off", ExpBackonBackoff()),
    ]


def _default_arrivals(k: int) -> list[tuple[str, ArrivalProcess]]:
    return [
        ("poisson rate=0.05", PoissonArrival(k=k, rate=0.05)),
        ("poisson rate=0.2", PoissonArrival(k=k, rate=0.2)),
        ("bursty 4x" + str(k // 4), BurstyArrival(bursts=4, burst_size=max(k // 4, 1), gap=max(k, 1))),
    ]


def run_dynamic_experiment(
    k: int = 64,
    runs: int = 5,
    seed: int = 23,
    protocols: Sequence[tuple[str, Protocol]] | None = None,
    arrival_factories: Sequence[tuple[str, ArrivalProcess]] | None = None,
    workers: int = 1,
) -> DynamicResult:
    """Measure makespan and delivery latency under dynamic arrivals.

    Parameters
    ----------
    k:
        Total number of messages injected per run (kept small: the node-level
        engine is O(active nodes) per slot).
    runs:
        Independent repetitions per cell.
    seed:
        Root seed.
    protocols, arrival_factories:
        Optional overrides of the default protocol and arrival-process sets.
    workers:
        Worker processes (``1`` = serial, ``0`` = one per CPU); per-run seeds
        are derived up front, so the results do not depend on this.
    """
    if k < 2:
        raise ValueError(f"k must be at least 2, got {k}")
    protocol_set = list(protocols) if protocols is not None else _default_protocols()
    arrival_set = (
        list(arrival_factories) if arrival_factories is not None else _default_arrivals(k)
    )

    units: list[SimulationUnit] = []
    cell_order: list[tuple[str, str, ArrivalProcess]] = []
    for protocol_index, (protocol_label, protocol) in enumerate(protocol_set):
        for arrival_index, (arrival_label, arrivals) in enumerate(arrival_set):
            seeds = derive_seeds(seed + 101 * protocol_index + 13 * arrival_index, runs)
            cell_order.append((protocol_label, arrival_label, arrivals))
            for run_seed in seeds:
                units.append(
                    SimulationUnit(
                        protocol=protocol,
                        k=arrivals.total_messages,
                        seed=run_seed,
                        arrivals=arrivals,
                        tag=(protocol_label, arrival_label),
                    )
                )

    outcomes = ParallelExecutor(workers=workers).run(units)

    cells: list[DynamicCell] = []
    for cell_index, (protocol_label, arrival_label, arrivals) in enumerate(cell_order):
        cell_outcomes = outcomes[cell_index * runs : (cell_index + 1) * runs]
        makespans: list[float] = []
        latencies: list[float] = []
        unsolved = 0
        for outcome in cell_outcomes:
            result = outcome.result
            if not result.solved or result.makespan is None:
                unsolved += 1
                continue
            makespans.append(float(result.makespan))
            latencies.extend(float(latency) for latency in result.metadata["latencies"])
        if not makespans:
            raise RuntimeError(
                f"dynamic experiment: no solved runs for {protocol_label} / {arrival_label}"
            )
        cells.append(
            DynamicCell(
                protocol_label=protocol_label,
                arrivals_description=arrival_label,
                k=arrivals.total_messages,
                makespan=summarize_makespans(makespans),
                latency=summarize_makespans(latencies),
                unsolved_runs=unsolved,
            )
        )
    return DynamicResult(cells=cells)


def main(argv: Sequence[str] | None = None) -> int:
    """Command-line entry point (``python -m repro dynamic``)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--k", type=int, default=64, help="messages injected per run")
    parser.add_argument("--runs", type=int, default=5, help="repetitions per cell")
    parser.add_argument("--seed", type=int, default=23, help="root seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (0 = one per CPU); results are identical for any value",
    )
    args = parser.parse_args(argv)

    print(f"Dynamic k-selection with k = {args.k} messages, {args.runs} runs per cell")
    print("(node-level simulation; latency = delivery slot - arrival slot)")
    print()
    result = run_dynamic_experiment(k=args.k, runs=args.runs, seed=args.seed, workers=args.workers)
    print(result.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
