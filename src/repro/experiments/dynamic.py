"""Dynamic k-selection extension (experiment E6).

The paper analyses the *static* problem (all messages arrive in one batch) and
names the *dynamic* problem — messages arriving over time, statistically or
adversarially — as the main open direction (Section 6).  This experiment
exercises the same protocols under the two dynamic arrival processes of
:mod:`repro.channel.arrivals`:

* Poisson arrivals at a configurable per-slot rate, and
* bursty arrivals (batches of ``burst_size`` every ``gap`` slots).

Each (protocol, arrival process) cell is described by one declarative
:class:`~repro.scenarios.scenario.Scenario` built from spec strings
(``"one-fail-adaptive"`` × ``"poisson(rate=0.05)"`` …) and executed by a
:class:`~repro.scenarios.session.Session`, which routes the runs through the
exact node-level engine (the fair and window reductions assume batched
arrivals) and fans the cells out over a
:class:`~repro.experiments.parallel.ParallelExecutor`; a ``store_dir`` makes
the experiment resumable like any other scenario workload.  Callers may still
pass materialised protocol/arrival *instances*; those cells run through the
same executor without the scenario cache.  The reported metrics are the
makespan (slot of the last delivery) and the per-message delivery latency
(delivery slot − arrival slot), which is the quantity a dynamic analysis
would bound.

Run from the command line with::

    python -m repro dynamic --k 64 --runs 5 --workers 0
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.statistics import RunStatistics, summarize_makespans
from repro.channel.arrivals import ArrivalProcess
from repro.engine.result import SimulationResult
from repro.experiments.parallel import ParallelExecutor, SimulationUnit
from repro.protocols.base import Protocol
from repro.scenarios.scenario import Scenario
from repro.scenarios.session import Session
from repro.util.rng import derive_seeds
from repro.util.tables import format_text_table

__all__ = ["DynamicResult", "run_dynamic_experiment", "main"]


@dataclass(frozen=True)
class DynamicCell:
    """Aggregated metrics for one (protocol, arrival process) combination."""

    protocol_label: str
    arrivals_description: str
    k: int
    makespan: RunStatistics
    latency: RunStatistics
    unsolved_runs: int


@dataclass
class DynamicResult:
    """Result of the dynamic-arrivals experiment."""

    cells: list[DynamicCell]

    def render(self) -> str:
        headers = [
            "protocol",
            "arrivals",
            "k",
            "mean makespan",
            "mean latency",
            "p90 latency",
            "unsolved",
        ]
        rows = [
            [
                cell.protocol_label,
                cell.arrivals_description,
                cell.k,
                f"{cell.makespan.mean:.1f}",
                f"{cell.latency.mean:.1f}",
                f"{cell.latency.p90:.1f}",
                cell.unsolved_runs,
            ]
            for cell in self.cells
        ]
        return format_text_table(headers, rows)


def _default_protocols() -> list[tuple[str, str]]:
    return [
        ("One-Fail Adaptive", "one-fail-adaptive"),
        ("Exp Back-on/Back-off", "exp-backon-backoff"),
    ]


def _default_arrivals(k: int) -> list[tuple[str, str]]:
    burst_size = max(k // 4, 1)
    return [
        ("poisson rate=0.05", "poisson(rate=0.05)"),
        ("poisson rate=0.2", "poisson(rate=0.2)"),
        (
            "bursty 4x" + str(burst_size),
            f"bursty(bursts=4,burst_size={burst_size},gap={max(k, 1)})",
        ),
    ]


def _arrival_total(spec: str, k: int) -> int:
    """Messages actually injected by ``spec`` built for a nominal ``k``."""
    from repro.channel.arrivals import get_arrival_class
    from repro.scenarios.spec import parse_spec

    name, params = parse_spec(spec)
    process = get_arrival_class(name).from_spec(k, **params)
    return process.total_messages


def _aggregate_cell(
    protocol_label: str,
    arrival_label: str,
    k: int,
    results: Sequence[SimulationResult],
) -> DynamicCell:
    makespans: list[float] = []
    latencies: list[float] = []
    unsolved = 0
    for result in results:
        if not result.solved or result.makespan is None:
            unsolved += 1
            continue
        makespans.append(float(result.makespan))
        latencies.extend(float(latency) for latency in result.metadata["latencies"])
    if not makespans:
        raise RuntimeError(
            f"dynamic experiment: no solved runs for {protocol_label} / {arrival_label}"
        )
    return DynamicCell(
        protocol_label=protocol_label,
        arrivals_description=arrival_label,
        k=k,
        makespan=summarize_makespans(makespans),
        latency=summarize_makespans(latencies),
        unsolved_runs=unsolved,
    )


def run_dynamic_experiment(
    k: int = 64,
    runs: int = 5,
    seed: int = 23,
    protocols: Sequence[tuple[str, Protocol | str]] | None = None,
    arrival_factories: Sequence[tuple[str, ArrivalProcess | str]] | None = None,
    workers: int = 1,
    store_dir: str | Path | None = None,
) -> DynamicResult:
    """Measure makespan and delivery latency under dynamic arrivals.

    Parameters
    ----------
    k:
        Total number of messages injected per run (kept small: the node-level
        engine is O(active nodes) per slot).
    runs:
        Independent repetitions per cell.
    seed:
        Root seed.
    protocols, arrival_factories:
        Optional overrides of the default protocol and arrival-process sets.
        Entries may be spec strings (cacheable scenario path) or materialised
        instances (direct executor path).
    workers:
        Worker processes (``1`` = serial, ``0`` = one per CPU); per-run seeds
        are derived up front, so the results do not depend on this.
    store_dir:
        Optional Session store directory; spec-string cells completed on a
        previous run are served from it.
    """
    if k < 2:
        raise ValueError(f"k must be at least 2, got {k}")
    protocol_set = list(protocols) if protocols is not None else _default_protocols()
    arrival_set = (
        list(arrival_factories) if arrival_factories is not None else _default_arrivals(k)
    )

    scenario_cells: list[tuple[int, Scenario]] = []
    unit_cells: list[tuple[int, list[SimulationUnit], int]] = []
    labels: list[tuple[str, str, int]] = []
    for protocol_index, (protocol_label, protocol) in enumerate(protocol_set):
        for arrival_index, (arrival_label, arrivals) in enumerate(arrival_set):
            cell_index = len(labels)
            cell_seed = seed + 101 * protocol_index + 13 * arrival_index
            if isinstance(protocol, str) and isinstance(arrivals, str):
                # The arrival spec rules the cell's message count (an explicit
                # burst shape may round k down, as the instance path always did).
                cell_k = _arrival_total(arrivals, k)
                scenario = Scenario(
                    protocol=protocol,
                    k=cell_k,
                    arrivals=arrivals,
                    replications=runs,
                    seed=cell_seed,
                )
                scenario_cells.append((cell_index, scenario))
            else:
                if isinstance(protocol, str):
                    from repro.protocols.base import build_protocol

                    built_protocol = build_protocol(protocol, k)
                else:
                    built_protocol = protocol
                if isinstance(arrivals, str):
                    from repro.channel.arrivals import build_arrivals

                    arrivals = build_arrivals(arrivals, k)
                cell_k = arrivals.total_messages if arrivals is not None else k
                units = [
                    SimulationUnit(
                        protocol=built_protocol,
                        k=cell_k,
                        seed=run_seed,
                        arrivals=arrivals,
                        tag=cell_index,
                    )
                    for run_seed in derive_seeds(cell_seed, runs)
                ]
                unit_cells.append((cell_index, units, cell_k))
            labels.append((protocol_label, arrival_label, cell_k))

    results_by_cell: dict[int, list[SimulationResult]] = {}
    if scenario_cells:
        session = Session(store_dir=store_dir, workers=workers)
        result_sets = session.run_all([scenario for _, scenario in scenario_cells])
        for (cell_index, _), result_set in zip(scenario_cells, result_sets):
            results_by_cell[cell_index] = list(result_set.results)
    if unit_cells:
        flat_units = [unit for _, units, _ in unit_cells for unit in units]
        outcomes = ParallelExecutor(workers=workers).run(flat_units)
        for outcome in outcomes:
            results_by_cell.setdefault(outcome.tag, []).extend(outcome.results)

    cells = [
        _aggregate_cell(protocol_label, arrival_label, cell_k, results_by_cell[cell_index])
        for cell_index, (protocol_label, arrival_label, cell_k) in enumerate(labels)
    ]
    return DynamicResult(cells=cells)


def main(argv: Sequence[str] | None = None) -> int:
    """Command-line entry point (``python -m repro dynamic``)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--k", type=int, default=64, help="messages injected per run")
    parser.add_argument("--runs", type=int, default=5, help="repetitions per cell")
    parser.add_argument("--seed", type=int, default=23, help="root seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (0 = one per CPU); results are identical for any value",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="Session result store (directory or spec like sqlite:results.db); "
        "completed cells are reused on re-run",
    )
    args = parser.parse_args(argv)

    print(f"Dynamic k-selection with k = {args.k} messages, {args.runs} runs per cell")  # repro: noqa[OBS001] - experiment stdout is the artefact
    print("(node-level simulation; latency = delivery slot - arrival slot)")  # repro: noqa[OBS001] - experiment stdout is the artefact
    print()  # repro: noqa[OBS001] - experiment stdout is the artefact
    result = run_dynamic_experiment(
        k=args.k, runs=args.runs, seed=args.seed, workers=args.workers, store_dir=args.store
    )
    print(result.render())  # repro: noqa[OBS001] - experiment stdout is the artefact
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
