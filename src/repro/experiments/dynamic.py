"""Dynamic k-selection extension (experiment E6).

The paper analyses the *static* problem (all messages arrive in one batch) and
names the *dynamic* problem — messages arriving over time, statistically or
adversarially — as the main open direction (Section 6).  This experiment
exercises the same protocols under the two dynamic arrival processes of
:mod:`repro.channel.arrivals`:

* Poisson arrivals at a configurable per-slot rate, and
* bursty arrivals (batches of ``burst_size`` every ``gap`` slots).

Because arrival times differ per node, the fair-protocol reduction no longer
applies and the exact node-level engine is used; sizes are therefore kept
moderate.  The reported metrics are the makespan (slot of the last delivery)
and the mean per-message delivery latency (delivery slot − arrival slot),
which is the quantity a dynamic analysis would bound.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.statistics import RunStatistics, summarize_makespans
from repro.channel.arrivals import ArrivalProcess, BurstyArrival, PoissonArrival
from repro.channel.radio_network import RadioNetwork
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.protocols.base import Protocol
from repro.util.rng import derive_seeds
from repro.util.tables import format_text_table

__all__ = ["DynamicResult", "run_dynamic_experiment"]


@dataclass(frozen=True)
class DynamicCell:
    """Aggregated metrics for one (protocol, arrival process) combination."""

    protocol_label: str
    arrivals_description: str
    k: int
    makespan: RunStatistics
    latency: RunStatistics
    unsolved_runs: int


@dataclass
class DynamicResult:
    """Result of the dynamic-arrivals experiment."""

    cells: list[DynamicCell]

    def render(self) -> str:
        headers = [
            "protocol",
            "arrivals",
            "k",
            "mean makespan",
            "mean latency",
            "p90 latency",
            "unsolved",
        ]
        rows = [
            [
                cell.protocol_label,
                cell.arrivals_description,
                cell.k,
                f"{cell.makespan.mean:.1f}",
                f"{cell.latency.mean:.1f}",
                f"{cell.latency.p90:.1f}",
                cell.unsolved_runs,
            ]
            for cell in self.cells
        ]
        return format_text_table(headers, rows)


def _default_protocols() -> list[tuple[str, Protocol]]:
    return [
        ("One-Fail Adaptive", OneFailAdaptive()),
        ("Exp Back-on/Back-off", ExpBackonBackoff()),
    ]


def _default_arrivals(k: int) -> list[tuple[str, ArrivalProcess]]:
    return [
        ("poisson rate=0.05", PoissonArrival(k=k, rate=0.05)),
        ("poisson rate=0.2", PoissonArrival(k=k, rate=0.2)),
        ("bursty 4x" + str(k // 4), BurstyArrival(bursts=4, burst_size=max(k // 4, 1), gap=max(k, 1))),
    ]


def run_dynamic_experiment(
    k: int = 64,
    runs: int = 5,
    seed: int = 23,
    protocols: Sequence[tuple[str, Protocol]] | None = None,
    arrival_factories: Sequence[tuple[str, ArrivalProcess]] | None = None,
) -> DynamicResult:
    """Measure makespan and delivery latency under dynamic arrivals.

    Parameters
    ----------
    k:
        Total number of messages injected per run (kept small: the node-level
        engine is O(active nodes) per slot).
    runs:
        Independent repetitions per cell.
    seed:
        Root seed.
    protocols, arrival_factories:
        Optional overrides of the default protocol and arrival-process sets.
    """
    if k < 2:
        raise ValueError(f"k must be at least 2, got {k}")
    protocol_set = list(protocols) if protocols is not None else _default_protocols()
    arrival_set = (
        list(arrival_factories) if arrival_factories is not None else _default_arrivals(k)
    )
    cells: list[DynamicCell] = []
    for protocol_index, (protocol_label, protocol) in enumerate(protocol_set):
        for arrival_index, (arrival_label, arrivals) in enumerate(arrival_set):
            seeds = derive_seeds(seed + 101 * protocol_index + 13 * arrival_index, runs)
            makespans: list[float] = []
            latencies: list[float] = []
            unsolved = 0
            for run_seed in seeds:
                network = RadioNetwork(
                    protocol=protocol,
                    arrivals=arrivals,
                    seed=run_seed,
                )
                outcome = network.run(collect_node_summaries=True)
                if not outcome.solved or outcome.makespan is None:
                    unsolved += 1
                    continue
                makespans.append(float(outcome.makespan))
                for summary in outcome.node_summaries:
                    delivery = summary["delivery_slot"]
                    activation = summary["activation_slot"]
                    if delivery is not None and activation is not None:
                        latencies.append(float(delivery) - float(activation))
            if not makespans:
                raise RuntimeError(
                    f"dynamic experiment: no solved runs for {protocol_label} / {arrival_label}"
                )
            cells.append(
                DynamicCell(
                    protocol_label=protocol_label,
                    arrivals_description=arrival_label,
                    k=arrivals.total_messages,
                    makespan=summarize_makespans(makespans),
                    latency=summarize_makespans(latencies),
                    unsolved_runs=unsolved,
                )
            )
    return DynamicResult(cells=cells)
