"""Determinism rules: seeded randomness and clock discipline.

The repository's headline claims — bit-identical parallel sweeps,
prefix-stable seeds, distributional parity between batch and per-run engines
— all rest on one convention: *no simulation code draws from global,
unseeded randomness*.  ``RND001`` enforces it inside the simulation packages.
``CLK001`` enforces the companion timing convention: durations, deadlines and
backoff arithmetic use the monotonic clock (``time.time()`` jumps with NTP
corrections and DST; ``time.monotonic()`` does not), with wall-clock reads
allowed only at explicitly marked metadata sites.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import import_aliases, resolve_call
from repro.analysis.core import AstRule, Finding, ModuleInfo, register_rule

__all__ = ["GlobalRandomnessRule", "ClockDisciplineRule"]

#: Legacy ``numpy.random`` module-level API: all of it draws from (or mutates)
#: the hidden global ``RandomState`` — exactly the state the seeding
#: discipline exists to avoid.
_NUMPY_LEGACY = frozenset(
    {
        "seed",
        "get_state",
        "set_state",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "rand",
        "randn",
        "randint",
        "random_integers",
        "choice",
        "shuffle",
        "permutation",
        "bytes",
        "uniform",
        "normal",
        "standard_normal",
        "binomial",
        "poisson",
        "exponential",
        "geometric",
        "multinomial",
    }
)


@register_rule
class GlobalRandomnessRule(AstRule):
    """No global-state randomness inside the simulation packages."""

    id = "RND001"
    name = "no-global-randomness"
    description = (
        "engine/protocol/channel code must draw randomness from a seeded "
        "RandomSource or an injected numpy Generator, never from the stdlib "
        "`random` module, the legacy `np.random.*` global API, or an argless "
        "`default_rng()`"
    )
    scope = ("repro.engine", "repro.protocols", "repro.channel", "repro.core")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call(node, aliases)
            if target is None:
                continue
            if target == "random" or target.startswith("random."):
                yield Finding(
                    module.relpath,
                    node.lineno,
                    self.id,
                    f"call to stdlib `{target}` — route randomness through a "
                    "seeded RandomSource or an injected numpy Generator",
                )
            elif target == "numpy.random.default_rng" and not (node.args or node.keywords):
                yield Finding(
                    module.relpath,
                    node.lineno,
                    self.id,
                    "argless `default_rng()` seeds from the OS — pass an "
                    "explicit seed or SeedSequence",
                )
            elif target.startswith("numpy.random.") and target.rsplit(".", 1)[1] in _NUMPY_LEGACY:
                yield Finding(
                    module.relpath,
                    node.lineno,
                    self.id,
                    f"legacy global-state `{target.replace('numpy', 'np', 1)}` — use an "
                    "injected numpy Generator instead",
                )


@register_rule
class ClockDisciplineRule(AstRule):
    """Durations and deadlines use the monotonic clock."""

    id = "CLK001"
    name = "monotonic-clock-discipline"
    description = (
        "`time.time()` jumps under NTP/DST corrections, so elapsed-time, "
        "deadline and backoff arithmetic must use `time.monotonic()`; "
        "wall-clock *metadata* sites (journal timestamps, persisted "
        "created_at fields) are allowed when marked `# repro: noqa[CLK001]`"
    )
    scope = None  # every linted module

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if resolve_call(node, aliases) == "time.time":
                yield Finding(
                    module.relpath,
                    node.lineno,
                    self.id,
                    "`time.time()` is not monotonic — use `time.monotonic()` for "
                    "durations/deadlines, or mark a wall-clock metadata site "
                    "with `# repro: noqa[CLK001]`",
                )
