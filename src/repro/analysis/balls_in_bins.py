"""Balls-in-bins occupancy statistics (the combinatorial heart of Lemma 1).

Exp Back-on/Back-off is analysed by viewing a contention window of ``w`` slots
with ``m`` active stations as ``m`` balls dropped uniformly at random into
``w`` bins; a station is delivered exactly when its ball is alone in its bin.
Lemma 1 of the paper lower-bounds the number of singleton bins.  The functions
here provide the exact and asymptotic quantities involved, plus a Monte-Carlo
sampler used by the property-based tests to confirm the analytical formulas.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.validation import check_positive_int

__all__ = [
    "singleton_probability",
    "expected_singletons",
    "singleton_fraction_lower_tail",
    "collision_probability_upper_bound",
    "sample_singletons",
]


def singleton_probability(m: int, w: int) -> float:
    """Probability that a *given* ball is alone in its bin.

    With ``m`` balls and ``w`` bins this is ``(1 - 1/w)^(m-1)``: the ball
    lands somewhere, and each of the other ``m − 1`` balls must avoid that
    bin.  For ``w = m`` the paper lower-bounds it by ``1/e``.
    """
    check_positive_int("m", m)
    check_positive_int("w", w)
    if m == 1:
        return 1.0
    return (1.0 - 1.0 / w) ** (m - 1)


def expected_singletons(m: int, w: int) -> float:
    """Expected number of singleton bins: ``m (1 - 1/w)^(m-1)``.

    For ``w = m`` and large ``m`` this tends to ``m/e``, the quantity the
    paper calls ``µ = E[X] = m/e`` (in its Poissonised form).
    """
    return m * singleton_probability(m, w)


def singleton_fraction_lower_tail(m: int, delta: float, w: int | None = None) -> float:
    """Upper bound on ``P(singletons ≤ δ·m)`` following the proof of Lemma 1.

    The proof Poissonises the occupancy (independent Poisson(m/w) loads),
    applies a Chernoff–Hoeffding lower-tail bound to the number of singleton
    bins, and transfers back to the exact model at the cost of a factor
    ``e·sqrt(m)``.  For ``w = m`` (the worst case used in the lemma) the bound
    reads::

        P(X ≤ δ m) ≤ exp(-m (1 - eδ)² / (2e)) · e·sqrt(m)

    The returned value is clipped to 1.
    """
    check_positive_int("m", m)
    if w is None:
        w = m
    check_positive_int("w", w)
    if w < m:
        raise ValueError(f"Lemma 1 requires w >= m, got w={w} < m={m}")
    if not 0.0 < delta < 1.0 / math.e:
        raise ValueError(f"delta must lie in (0, 1/e), got {delta}")
    poisson_tail = math.exp(-m * (1.0 - math.e * delta) ** 2 / (2.0 * math.e))
    return min(1.0, poisson_tail * math.e * math.sqrt(m))


def collision_probability_upper_bound(m: int, w: int) -> float:
    """Union bound of Theorem 2: ``P(any slot gets ≥ 2 balls) ≤ C(m, 2)/w``.

    Used in the analysis of the phase after the contention has dropped to at
    most ``τ`` messages: with a window much larger than the residual
    contention, with high probability every remaining station transmits alone.
    """
    check_positive_int("m", m)
    check_positive_int("w", w)
    if m < 2:
        return 0.0
    return min(1.0, m * (m - 1) / 2.0 / w)


def sample_singletons(
    m: int,
    w: int,
    runs: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Monte-Carlo sample of the number of singleton bins.

    Returns an integer array of length ``runs``; each entry is the number of
    bins containing exactly one ball after dropping ``m`` balls uniformly into
    ``w`` bins.  Used by tests to confirm :func:`expected_singletons` and the
    direction of :func:`singleton_fraction_lower_tail`.
    """
    check_positive_int("m", m)
    check_positive_int("w", w)
    check_positive_int("runs", runs)
    generator = rng if rng is not None else np.random.default_rng()
    counts = np.empty(runs, dtype=np.int64)
    for index in range(runs):
        occupancy = np.bincount(generator.integers(0, w, size=m), minlength=w)
        counts[index] = int(np.count_nonzero(occupancy == 1))
    return counts
