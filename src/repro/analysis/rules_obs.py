"""Observability rules: library output goes through the obs layer.

PR 9 gave the library a structured observability stack (:mod:`repro.obs`):
JSON logs that carry trace ids, metrics, and span traces.  A stray
``print()`` in library code bypasses all of it — the line has no level, no
trace id, can't be silenced by ``--quiet``/log level, and corrupts
machine-readable stdout (the ``--json`` modes, the service's wire format).
``OBS001`` keeps library modules print-free.

Exempt by design: :mod:`repro.cli` (stdout *is* its interface) and
:mod:`repro.util.textplot` (renders terminal plots).  The experiment
scripts' report printing — where stdout is the reproduced artefact itself —
stays, justified line-by-line with ``# repro: noqa[OBS001]``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import AstRule, Finding, ModuleInfo, register_rule

__all__ = ["NoPrintInLibraryRule"]

#: Modules whose stdout is their user interface, exempt from OBS001.
_EXEMPT_MODULES = frozenset({"repro.cli", "repro.util.textplot"})


@register_rule
class NoPrintInLibraryRule(AstRule):
    """Library code logs through :mod:`repro.obs`, never ``print()``."""

    id = "OBS001"
    name = "no-print-in-library"
    description = (
        "library code under repro/ must not call print() — use "
        "repro.obs.get_logger() (structured, levelled, trace-id aware); "
        "only repro.cli and repro.util.textplot own stdout"
    )
    #: Only the installed package: tests and scripts print freely.
    scope = ("repro",)

    def applies_to(self, module: ModuleInfo) -> bool:
        if module.module in _EXEMPT_MODULES:
            return False
        return super().applies_to(module)

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield Finding(
                    module.relpath,
                    node.lineno,
                    self.id,
                    "print() in library code — use repro.obs.get_logger() "
                    "or justify with `# repro: noqa[OBS001] - <reason>`",
                )
