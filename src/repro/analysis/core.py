"""The invariant-linting framework behind ``repro lint``.

Every PR has added invariants that, until now, held only by convention:
engine/protocol randomness must flow through seeded
:class:`~repro.util.rng.RandomSource`/``numpy.random.Generator`` streams,
durations and deadlines must be measured on the monotonic clock, shared
:class:`~repro.service.jobs.JobManager` state must only be written under its
lock, no handler may swallow the chaos layer's
:class:`~repro.service.reliability.SimulatedCrash`, and every engine /
protocol / store backend must honour its registry contract.  This module
turns those conventions into machine-checked rules:

* :class:`Finding` — one violation: file, line, rule id, message.
* :class:`Rule` — the rule interface, refined into :class:`AstRule`
  (per-module AST walk, with an optional cross-module :meth:`AstRule.finish`
  pass) and :class:`ProjectRule` (import-time contract checks that inspect
  the live registries instead of source text).
* :class:`RuleRegistry` / :func:`register_rule` — rules register themselves
  exactly like engines do in :mod:`repro.engine.registry`; the CLI, the
  docs table and the test suite all enumerate :func:`available_rules`.
* :func:`load_module` — a per-file AST cache keyed by ``(mtime, size)`` so
  repeated lint runs (and multi-rule runs) parse each file once.
* Suppression — a ``# repro: noqa[rule-id]`` comment on the flagged line
  silences that rule there (``# repro: noqa`` silences every rule); a
  committed :class:`Baseline` file grandfathers known findings without
  letting new ones in.
* :func:`run_lint` — the one entry point: collect files, run rules, apply
  suppressions and the baseline, return a deterministic :class:`LintReport`
  (two runs over the same tree produce byte-identical JSON).
"""

from __future__ import annotations

import ast
import json
import re
import threading
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar

__all__ = [
    "Finding",
    "ModuleInfo",
    "Rule",
    "AstRule",
    "ProjectRule",
    "RuleRegistry",
    "register_rule",
    "available_rules",
    "rule_class",
    "rule_classes",
    "load_module",
    "Baseline",
    "LintReport",
    "run_lint",
]

#: ``# repro: noqa`` or ``# repro: noqa[RULE-1,RULE-2]`` on the flagged line.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_\-,\s]+)\])?")


# --------------------------------------------------------------------------
# Findings
# --------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific location.

    Ordering is ``(path, line, rule, message)`` so reports are deterministic.
    The :attr:`fingerprint` deliberately excludes the line number: baselined
    findings survive unrelated edits that shift code up or down.
    """

    path: str
    line: int
    rule: str
    message: str

    @property
    def fingerprint(self) -> str:
        return f"{self.rule}::{self.path}::{self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


# --------------------------------------------------------------------------
# Parsed modules + AST cache
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file, shared by every AST rule via the cache."""

    path: Path  #: absolute path on disk
    relpath: str  #: deterministic posix path used in findings
    module: str  #: dotted module name (``repro.…`` when under a repro tree)
    source: str
    tree: ast.Module
    noqa: dict[int, frozenset[str] | None]  #: line -> suppressed ids (None = all)

    def suppressed(self, line: int, rule_id: str) -> bool:
        """Whether ``# repro: noqa`` on ``line`` silences ``rule_id``."""
        ids = self.noqa.get(line, frozenset())
        if ids is None:
            return True
        return rule_id in ids

    def line_text(self, line: int) -> str:
        """The raw source line (1-based), or ``""`` past the end."""
        lines = self.source.splitlines()
        return lines[line - 1] if 1 <= line <= len(lines) else ""


def _module_name(path: Path) -> str:
    """Dotted module name: from the last ``repro`` path component when there
    is one (so rule scopes like ``repro.engine`` match files wherever the
    tree is checked out), the bare stem otherwise."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return ".".join(parts[index:])
    return parts[-1] if parts else ""


def _parse_noqa(source: str) -> dict[int, frozenset[str] | None]:
    table: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        ids = match.group(1)
        if ids is None:
            table[lineno] = None
        else:
            table[lineno] = frozenset(
                part.strip() for part in ids.split(",") if part.strip()
            )
    return table


#: path -> ((mtime_ns, size), ModuleInfo); repeated runs parse each file once.
_AST_CACHE: dict[Path, tuple[tuple[int, int], ModuleInfo]] = {}
_AST_CACHE_LOCK = threading.Lock()


def load_module(path: str | Path, relpath: str | None = None) -> ModuleInfo:
    """Parse a source file through the ``(mtime, size)``-keyed AST cache.

    Raises :class:`SyntaxError` for unparseable files (reported by
    :func:`run_lint` as a ``parse-error`` finding) and :class:`OSError` for
    unreadable ones.
    """
    path = Path(path).resolve()
    stat = path.stat()
    key = (stat.st_mtime_ns, stat.st_size)
    with _AST_CACHE_LOCK:
        hit = _AST_CACHE.get(path)
        if hit is not None and hit[0] == key:
            return hit[1]
    source = path.read_text(encoding="utf-8")
    info = ModuleInfo(
        path=path,
        relpath=relpath if relpath is not None else path.as_posix(),
        module=_module_name(path),
        source=source,
        tree=ast.parse(source, filename=str(path)),
        noqa=_parse_noqa(source),
    )
    with _AST_CACHE_LOCK:
        _AST_CACHE[path] = (key, info)
    return info


# --------------------------------------------------------------------------
# Rule interface + registry (mirrors the engine-registry idiom)
# --------------------------------------------------------------------------


class Rule(ABC):
    """One invariant check.  Subclasses declare ``id``/``name``/``description``
    class attributes and register themselves with :func:`register_rule`;
    ``scope`` restricts an AST rule to dotted-module prefixes (``None`` means
    every linted file)."""

    id: ClassVar[str]
    name: ClassVar[str]
    description: ClassVar[str]
    scope: ClassVar[tuple[str, ...] | None] = None

    def applies_to(self, module: ModuleInfo) -> bool:
        if self.scope is None:
            return True
        return any(
            module.module == prefix or module.module.startswith(prefix + ".")
            for prefix in self.scope
        )


class AstRule(Rule):
    """A rule that walks one module's AST at a time.

    :meth:`finish` runs once after every module has been checked — rules that
    need cross-module aggregation (the lock-order graph) accumulate state in
    :meth:`check_module` and report from :meth:`finish`.
    """

    @abstractmethod
    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield findings for one parsed module."""

    def finish(self) -> Iterator[Finding]:
        """Cross-module findings, after every module was checked."""
        return iter(())


class ProjectRule(Rule):
    """An import-time contract check against the live registries.

    These rules import :mod:`repro` and interrogate the engine / protocol /
    store registries directly — declarations that parse but violate their
    contract are caught here, not by text matching.
    """

    @abstractmethod
    def check_project(self) -> Iterator[Finding]:
        """Yield findings for the imported ``repro`` package."""


class RuleRegistry:
    """Rule-id -> rule-class mapping with the engine registry's query API."""

    def __init__(self) -> None:
        self._rules: dict[str, type[Rule]] = {}

    def register(self, cls: type[Rule]) -> type[Rule]:
        rule_id = getattr(cls, "id", None)
        if not isinstance(rule_id, str) or not rule_id:
            raise ValueError(f"{cls.__name__} must define a non-empty 'id' attribute")
        for attr in ("name", "description"):
            if not isinstance(getattr(cls, attr, None), str):
                raise ValueError(f"{cls.__name__} must define a '{attr}' string attribute")
        existing = self._rules.get(rule_id)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"rule id {rule_id!r} already registered by {existing.__name__}"
            )
        self._rules[rule_id] = cls
        return cls

    def ids(self) -> list[str]:
        return sorted(self._rules)

    def rule_class(self, rule_id: str) -> type[Rule]:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise ValueError(
                f"unknown rule {rule_id!r}; choose from {self.ids()}"
            ) from None


_REGISTRY = RuleRegistry()


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Register a rule class with the process-wide registry (decorator)."""
    return _REGISTRY.register(cls)


def _loaded() -> RuleRegistry:
    # Importing the rule modules registers every built-in rule; after the
    # first call this is a no-op.
    import repro.analysis.rules_concurrency  # noqa: F401
    import repro.analysis.rules_determinism  # noqa: F401
    import repro.analysis.rules_hygiene  # noqa: F401
    import repro.analysis.rules_obs  # noqa: F401
    import repro.analysis.rules_registry  # noqa: F401

    return _REGISTRY


def available_rules() -> list[str]:
    """Sorted ids of every registered rule."""
    return _loaded().ids()


def rule_class(rule_id: str) -> type[Rule]:
    """Look up a registered rule class by id."""
    return _loaded().rule_class(rule_id)


def rule_classes(rule_ids: Sequence[str] | None = None) -> list[type[Rule]]:
    """The rule classes for ``rule_ids`` (default: every registered rule)."""
    registry = _loaded()
    ids = registry.ids() if rule_ids is None else list(rule_ids)
    return [registry.rule_class(rule_id) for rule_id in ids]


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------


@dataclass
class Baseline:
    """Grandfathered findings, keyed by :attr:`Finding.fingerprint`.

    The committed file is a budget, not a blanket: each baselined fingerprint
    absorbs at most its recorded count of findings, so *new* occurrences of
    an old problem still fail the lint.  Fixing a baselined finding leaves a
    stale entry behind — regenerate with ``repro lint --write-baseline``.
    """

    counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path | None) -> "Baseline":
        """Read a baseline file; a missing/``None`` path is an empty baseline."""
        if path is None:
            return cls()
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        counts: dict[str, int] = {}
        for entry in payload.get("findings", []):
            fingerprint = f"{entry['rule']}::{entry['path']}::{entry['message']}"
            counts[fingerprint] = counts.get(fingerprint, 0) + int(entry.get("count", 1))
        return cls(counts)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: dict[str, int] = {}
        for finding in findings:
            counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
        return cls(counts)

    def to_json(self) -> str:
        findings = []
        for fingerprint in sorted(self.counts):
            rule, path, message = fingerprint.split("::", 2)
            findings.append(
                {"rule": rule, "path": path, "message": message, "count": self.counts[fingerprint]}
            )
        return json.dumps({"version": 1, "findings": findings}, indent=2, sort_keys=True) + "\n"

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    def filter(self, findings: Sequence[Finding]) -> tuple[list[Finding], int]:
        """Split findings into (new, baselined-count)."""
        budget = dict(self.counts)
        kept: list[Finding] = []
        absorbed = 0
        for finding in findings:
            remaining = budget.get(finding.fingerprint, 0)
            if remaining > 0:
                budget[finding.fingerprint] = remaining - 1
                absorbed += 1
            else:
                kept.append(finding)
        return kept, absorbed


# --------------------------------------------------------------------------
# Running
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run; :attr:`findings` are the *actionable*
    ones (noqa-suppressed and baselined findings are only counted)."""

    findings: tuple[Finding, ...]
    files: int
    rules: tuple[str, ...]
    suppressed: int = 0
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, object]:
        return {
            "findings": [finding.to_dict() for finding in self.findings],
            "files": self.files,
            "rules": list(self.rules),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "clean": self.clean,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _collect_files(paths: Sequence[str | Path]) -> list[Path]:
    files: set[Path] = set()
    for target in paths:
        target = Path(target)
        if target.is_dir():
            files.update(p for p in target.rglob("*.py") if "__pycache__" not in p.parts)
        elif target.suffix == ".py":
            files.add(target)
        else:
            raise ValueError(f"lint target {target} is neither a directory nor a .py file")
    return sorted(files)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Sequence[str | Path],
    rules: Sequence[str] | None = None,
    baseline: Baseline | str | Path | None = None,
    root: str | Path | None = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) with the selected rules.

    ``rules`` filters by id (default: every registered rule — AST rules walk
    the collected files, project rules interrogate the live registries once).
    ``baseline`` absorbs grandfathered findings; ``root`` anchors the
    deterministic relative paths in findings (default: the current working
    directory).  Unparseable files surface as ``parse-error`` findings rather
    than aborting the run.
    """
    root = Path(root) if root is not None else Path.cwd()
    selected = [cls() for cls in rule_classes(rules)]
    ast_rules = [rule for rule in selected if isinstance(rule, AstRule)]
    project_rules = [rule for rule in selected if isinstance(rule, ProjectRule)]

    raw: list[Finding] = []
    suppressed = 0
    files = _collect_files(paths)
    for path in files:
        relpath = _relpath(path, root)
        try:
            module = load_module(path, relpath=relpath)
        except SyntaxError as error:
            raw.append(
                Finding(relpath, error.lineno or 1, "parse-error", f"cannot parse: {error.msg}")
            )
            continue
        for rule in ast_rules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check_module(module):
                if module.suppressed(finding.line, finding.rule):
                    suppressed += 1
                else:
                    raw.append(finding)
    for rule in ast_rules:
        raw.extend(rule.finish())
    for rule in project_rules:
        for finding in rule.check_project():
            raw.append(
                Finding(_relpath(Path(finding.path), root), finding.line, finding.rule, finding.message)
            )

    raw.sort()
    if not isinstance(baseline, Baseline):
        baseline = Baseline.load(baseline)
    kept, absorbed = baseline.filter(raw)
    return LintReport(
        findings=tuple(kept),
        files=len(files),
        rules=tuple(sorted(rule.id for rule in selected)),
        suppressed=suppressed,
        baselined=absorbed,
    )
