"""Descriptive statistics of simulation runs.

The paper's Figure 1 plots the *average* of 10 runs per point and Table 1
reports the average divided by k.  This module computes those aggregates plus
the dispersion measures (standard deviation, normal-approximation confidence
interval, percentiles) that EXPERIMENTS.md reports alongside, since one of the
paper's qualitative claims — Log-fails Adaptive is "less predictable" than the
new protocols — is a claim about dispersion, not just about means.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["RunStatistics", "summarize_makespans", "summarize_ratios"]

#: Two-sided 95% normal quantile used for the confidence interval.
_Z_95 = 1.959963984540054


@dataclass(frozen=True)
class RunStatistics:
    """Aggregate of a sample of makespans (or ratios) for one (protocol, k) cell."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    p90: float
    ci_half_width: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_half_width

    @property
    def coefficient_of_variation(self) -> float:
        """Relative dispersion (std/mean); 0 when the mean is 0."""
        if self.mean == 0:
            return 0.0
        return self.std / self.mean

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "p90": self.p90,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of an already sorted sequence."""
    if not ordered:
        raise ValueError("cannot take the percentile of an empty sample")
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return float(ordered[lower])
    weight = position - lower
    return float(ordered[lower] * (1.0 - weight) + ordered[upper] * weight)


def summarize_makespans(samples: Sequence[float]) -> RunStatistics:
    """Summarise a sample of makespans (or any positive metric)."""
    if not samples:
        raise ValueError("cannot summarise an empty sample")
    values = sorted(float(value) for value in samples)
    count = len(values)
    mean = sum(values) / count
    if count > 1:
        variance = sum((value - mean) ** 2 for value in values) / (count - 1)
        std = math.sqrt(variance)
        ci_half_width = _Z_95 * std / math.sqrt(count)
    else:
        std = 0.0
        ci_half_width = 0.0
    return RunStatistics(
        count=count,
        mean=mean,
        std=std,
        minimum=values[0],
        maximum=values[-1],
        median=_percentile(values, 0.5),
        p90=_percentile(values, 0.9),
        ci_half_width=ci_half_width,
    )


def summarize_ratios(makespans: Sequence[float], k: int) -> RunStatistics:
    """Summarise the steps/k ratios of a sample of makespans (Table 1's metric)."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return summarize_makespans([value / k for value in makespans])
