"""Concurrency rules: lock discipline and lock-acquisition ordering.

``LCK001`` machine-checks the convention stated in
:class:`~repro.service.jobs.Job`'s docstring: mutable state shared between
the submitting threads and the worker pool is only written under the owning
manager's lock.  A class opts in by *declaring* its guarded fields::

    class JobManager:
        _lock_guarded = frozenset({"_queue", "_jobs", ...})

The rule then flags every write (assignment, augmented assignment, ``del``,
subscript store, or mutating method call like ``.append``/``.pop``) to a
guarded ``self.<field>`` that is not lexically inside a ``with self.<lock>``
block, where the lock attributes are inferred from ``__init__``
(``self.X = threading.Lock()/RLock()/Condition(...)``; a condition built on
an existing lock aliases it).  Escapes, in order of preference: run the write
under the lock, move it into a helper whose name ends in ``_locked`` or whose
docstring says the "lock must be held", or (last resort) a
``# repro: noqa[LCK001]``.  ``__init__`` is exempt (no sharing before
construction completes); nested functions are *not* assumed to run under the
enclosing lock (callbacks usually fire later, on another thread).

``LCK002`` builds a cross-module lock-acquisition-order graph from lexically
nested ``with`` blocks on inferred lock attributes (and module-level locks)
and reports (a) nested acquisition of the same non-reentrant lock and (b)
order inversions — lock pairs acquired in both orders anywhere in the tree,
the classic deadlock shape.  The analysis is lexical, not interprocedural:
it proves the *absence* of inversions only among directly nested
acquisitions, which is exactly the pattern the codebase allows.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import dotted_name, import_aliases, resolve_call
from repro.analysis.core import AstRule, Finding, ModuleInfo, register_rule

__all__ = ["LockDisciplineRule", "LockOrderRule"]

#: Method calls that mutate their receiver (dict/list/deque/set vocabulary).
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "rotate",
        "sort",
        "reverse",
    }
)

_LOCK_FACTORIES = frozenset({"threading.Lock", "threading.RLock", "threading.Condition"})

#: Docstring phrases that mark a helper as called-with-lock-held by contract.
_HELD_PHRASES = ("lock must be held", "lock held", "caller holds the lock")


def _lock_attrs(cls: ast.ClassDef, aliases: dict[str, str]) -> dict[str, str]:
    """Lock attribute -> canonical lock attribute (conditions alias their lock).

    Inferred from ``__init__``: ``self._lock = threading.Lock()`` maps
    ``_lock -> _lock``; ``self._cond = threading.Condition(self._lock)`` maps
    ``_cond -> _lock`` (same underlying lock).
    """
    locks: dict[str, str] = {}
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            for node in ast.walk(item):
                if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                    continue
                factory = resolve_call(node.value, aliases)
                if factory not in _LOCK_FACTORIES:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        canonical = target.attr
                        if factory == "threading.Condition" and node.value.args:
                            inner = node.value.args[0]
                            if (
                                isinstance(inner, ast.Attribute)
                                and isinstance(inner.value, ast.Name)
                                and inner.value.id == "self"
                            ):
                                canonical = inner.attr
                        locks[target.attr] = locks.get(canonical, canonical)
    return locks


def _guarded_fields(cls: ast.ClassDef) -> frozenset[str] | None:
    """The class's declared ``_lock_guarded`` field set, or ``None``."""
    for item in cls.body:
        value = None
        if isinstance(item, ast.Assign):
            names = [t.id for t in item.targets if isinstance(t, ast.Name)]
            if "_lock_guarded" in names:
                value = item.value
        elif isinstance(item, ast.AnnAssign):
            if isinstance(item.target, ast.Name) and item.target.id == "_lock_guarded":
                value = item.value
        if value is None:
            continue
        if isinstance(value, ast.Call):  # frozenset({...}) / set([...]) / tuple(...)
            value = value.args[0] if value.args else None
        if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            fields = [
                element.value
                for element in value.elts
                if isinstance(element, ast.Constant) and isinstance(element.value, str)
            ]
            return frozenset(fields)
        return frozenset()
    return None


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _guarded_root(node: ast.expr, guarded: frozenset[str]) -> str | None:
    """The guarded field a store-target/receiver is rooted at, if any.

    Handles ``self._jobs`` (direct), ``self._jobs[x]`` (subscript store) and
    deeper chains like ``self._totals[key]``.
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    attr = _self_attr(node)
    if attr is not None and attr in guarded:
        return attr
    return None


def _with_locks(node: ast.With, locks: dict[str, str]) -> list[str]:
    """Canonical lock attrs acquired by one ``with`` statement."""
    acquired = []
    for item in node.items:
        expr = item.context_expr
        # ``with self._lock:`` and ``with self._cond:`` both hold the lock.
        attr = _self_attr(expr)
        if attr is None and isinstance(expr, ast.Call):
            # e.g. ``with self._lock_for(key):`` — not a plain attribute;
            # conservatively not treated as a class lock.
            continue
        if attr is not None and attr in locks:
            acquired.append(locks[attr])
    return acquired


def _expr_nodes(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Expression nodes *owned* by one statement: header expressions and
    simple-statement bodies, but not nested statements (those are walked
    separately with their own held-lock state) and not deferred bodies
    (lambdas/nested defs run later, possibly without the lock)."""
    stack: list[ast.AST] = []
    for _, value in ast.iter_fields(stmt):
        values = value if isinstance(value, list) else [value]
        for node in values:
            if isinstance(node, ast.AST) and not isinstance(node, (ast.stmt, ast.ExceptHandler)):
                stack.append(node)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, (ast.stmt, ast.ExceptHandler)):
                stack.append(child)


def _docstring_marks_held(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    docstring = ast.get_docstring(func) or ""
    lowered = docstring.lower()
    return any(phrase in lowered for phrase in _HELD_PHRASES)


@register_rule
class LockDisciplineRule(AstRule):
    """Writes to declared-guarded fields happen under the class lock."""

    id = "LCK001"
    name = "lock-discipline"
    description = (
        "attribute writes to a class's declared `_lock_guarded` fields must "
        "be lexically inside `with self.<lock>` (or in a `*_locked` / "
        "'lock must be held' helper); `__init__` is exempt"
    )
    scope = None

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            guarded = _guarded_fields(cls)
            if not guarded:
                continue
            locks = _lock_attrs(cls, aliases)
            for func in cls.body:
                if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if func.name == "__init__" or func.name.endswith("_locked"):
                    continue
                if _docstring_marks_held(func):
                    continue
                yield from self._check_body(
                    func.body, held=False, module=module, cls=cls, func=func,
                    guarded=guarded, locks=locks,
                )

    # ------------------------------------------------------------------ walk
    def _check_body(
        self,
        stmts: list[ast.stmt],
        held: bool,
        module: ModuleInfo,
        cls: ast.ClassDef,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        guarded: frozenset[str],
        locks: dict[str, str],
    ) -> Iterator[Finding]:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested function runs later, possibly on another thread:
                # never assume the enclosing lock is still held.
                yield from self._check_body(
                    stmt.body, held=False, module=module, cls=cls, func=func,
                    guarded=guarded, locks=locks,
                )
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquires = isinstance(stmt, ast.With) and bool(_with_locks(stmt, locks))
                yield from self._check_body(
                    stmt.body, held=held or acquires, module=module, cls=cls,
                    func=func, guarded=guarded, locks=locks,
                )
                continue
            if not held:
                yield from self._check_stmt(stmt, module, cls, func, guarded)
            # Descend into compound statements (if/for/while/try...).
            for field_name in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, field_name, None)
                if nested:
                    yield from self._check_body(
                        nested, held=held, module=module, cls=cls, func=func,
                        guarded=guarded, locks=locks,
                    )
            for handler in getattr(stmt, "handlers", []) or []:
                yield from self._check_body(
                    handler.body, held=held, module=module, cls=cls, func=func,
                    guarded=guarded, locks=locks,
                )

    def _check_stmt(
        self,
        stmt: ast.stmt,
        module: ModuleInfo,
        cls: ast.ClassDef,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        guarded: frozenset[str],
    ) -> Iterator[Finding]:
        hits: list[tuple[int, str, str]] = []  # (line, field, how)
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target] if getattr(stmt, "value", None) is not None else []
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            field = _guarded_root(target, guarded)
            if field is not None:
                hits.append((target.lineno, field, "write to"))
        # Mutating method calls in the statement's own expressions.
        for node in _expr_nodes(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                field = _guarded_root(node.func.value, guarded)
                if field is not None:
                    hits.append((node.lineno, field, f"`.{node.func.attr}()` on"))
        for line, field, how in hits:
            yield Finding(
                module.relpath,
                line,
                self.id,
                f"{how} guarded field `self.{field}` of {cls.name} outside "
                f"`with self.<lock>` (in {func.name}); declared in "
                f"{cls.name}._lock_guarded",
            )


@register_rule
class LockOrderRule(AstRule):
    """Cross-module lock-acquisition-order graph: report inversions."""

    id = "LCK002"
    name = "lock-acquisition-order"
    description = (
        "nested `with <lock>` blocks define a lock ordering; acquiring two "
        "locks in both orders anywhere in the tree (or re-acquiring a "
        "non-reentrant lock) is a potential deadlock"
    )
    scope = None

    def __init__(self) -> None:
        #: (outer key, inner key) -> first (path, line) that acquires in that order
        self._edges: dict[tuple[str, str], tuple[str, int]] = {}
        self._reentrant: list[Finding] = []

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        module_locks = self._module_locks(module.tree, aliases)
        for cls in module.tree.body:
            if isinstance(cls, ast.ClassDef):
                locks = _lock_attrs(cls, aliases)
                for func in cls.body:
                    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._walk(
                            func.body, [], module, f"{cls.name}.", locks, module_locks
                        )
            elif isinstance(cls, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk(cls.body, [], module, "", {}, module_locks)
        return iter(self._reentrant_drain())

    def _reentrant_drain(self) -> list[Finding]:
        found, self._reentrant = self._reentrant, []
        return found

    @staticmethod
    def _module_locks(tree: ast.Module, aliases: dict[str, str]) -> frozenset[str]:
        names = set()
        for node in tree.body:
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if resolve_call(node.value, aliases) in _LOCK_FACTORIES:
                    names.update(t.id for t in node.targets if isinstance(t, ast.Name))
        return frozenset(names)

    def _walk(
        self,
        stmts: list[ast.stmt],
        held: list[str],
        module: ModuleInfo,
        prefix: str,
        locks: dict[str, str],
        module_locks: frozenset[str],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk(stmt.body, [], module, prefix, locks, module_locks)
                continue
            acquired: list[str] = []
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    expr = item.context_expr
                    attr = _self_attr(expr)
                    if attr is not None and attr in locks:
                        acquired.append(f"{prefix}{locks[attr]}")
                    elif isinstance(expr, ast.Name) and expr.id in module_locks:
                        acquired.append(f"{module.module}.{expr.id}")
                for key in acquired:
                    if key in held and not module.suppressed(stmt.lineno, self.id):
                        self._reentrant.append(
                            Finding(
                                module.relpath,
                                stmt.lineno,
                                self.id,
                                f"nested re-acquisition of non-reentrant lock `{key}`"
                                " — deadlocks at runtime",
                            )
                        )
                    for outer in held:
                        if outer != key:
                            self._edges.setdefault(
                                (outer, key), (module.relpath, stmt.lineno)
                            )
            for field_name in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, field_name, None)
                if nested:
                    self._walk(
                        nested, held + acquired, module, prefix, locks, module_locks
                    )
            for handler in getattr(stmt, "handlers", []) or []:
                self._walk(
                    handler.body, held + acquired, module, prefix, locks, module_locks
                )

    def finish(self) -> Iterator[Finding]:
        for (outer, inner), (path, line) in sorted(self._edges.items()):
            # Report each inverted pair once, from its lexically first edge.
            if (inner, outer) in self._edges and outer < inner:
                other_path, other_line = self._edges[(inner, outer)]
                yield Finding(
                    path,
                    line,
                    self.id,
                    f"lock-order inversion: `{outer}` -> `{inner}` here, but "
                    f"`{inner}` -> `{outer}` at {other_path}:{other_line}",
                )
