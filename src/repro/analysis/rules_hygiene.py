"""Hygiene rules: exception discipline and annotation coverage.

The fault-injection layer (PR 7) deliberately made
:class:`~repro.service.reliability.SimulatedCrash` a ``BaseException`` so
that ``except Exception`` recovery paths cannot swallow a simulated process
death.  That guarantee only holds while nobody writes a *bare* ``except:`` or
an ``except BaseException:`` that fails to re-raise — ``EXC001``/``EXC002``
enforce exactly that, everywhere.  ``EXC003`` additionally flags broad
``except Exception`` handlers in the modules the fault injector reaches
(the service layer and the store/session/federation paths), where swallowing
an unexpected error usually means swallowing an injected fault: each
surviving site must either re-raise or carry an explicit justification
(``# repro: noqa[EXC003]`` or the pre-existing ``# noqa: BLE001`` markers).

``ANN001``/``ANN002`` enforce the typing floor: every module that defines
functions or classes imports ``from __future__ import annotations``, and
every *public* function signature is fully annotated.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.core import AstRule, Finding, ModuleInfo, register_rule

__all__ = [
    "BareExceptRule",
    "BaseExceptionSwallowRule",
    "BroadExceptRule",
    "FutureAnnotationsRule",
    "PublicApiAnnotationsRule",
]

#: The flake8-bugbear marker the codebase already uses for justified broad
#: handlers; honoured as an EXC003 suppression so history stays green.
_BLE_NOQA_RE = re.compile(r"#\s*noqa:\s*[A-Z0-9, ]*\bBLE001\b")


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a ``raise`` — the common
    cleanup-then-propagate shape.  Lexical: a ``raise`` inside a nested
    function does not count (a callback's raise does not propagate this
    handler's exception)."""
    for node in _walk_body(handler.body):
        if isinstance(node, ast.Raise):
            return True
    return False


def _walk_body(stmts: list[ast.stmt]) -> Iterator[ast.AST]:
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
                continue
            yield child
            yield from _walk_child(child)


def _walk_child(node: ast.AST) -> Iterator[ast.AST]:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        yield child
        yield from _walk_child(child)


def _names_in_type(node: ast.expr | None) -> set[str]:
    """Exception-class names matched by an ``except <type>`` clause."""
    if node is None:
        return set()
    if isinstance(node, ast.Tuple):
        names: set[str] = set()
        for element in node.elts:
            names |= _names_in_type(element)
        return names
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Attribute):
        return {node.attr}
    return set()


@register_rule
class BareExceptRule(AstRule):
    """No bare ``except:`` — it swallows ``SimulatedCrash`` and ``KeyboardInterrupt``."""

    id = "EXC001"
    name = "no-bare-except"
    description = (
        "a bare `except:` catches BaseException, so it swallows the chaos "
        "layer's SimulatedCrash (and Ctrl-C); name the exceptions instead"
    )
    scope = None

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield Finding(
                    module.relpath,
                    node.lineno,
                    self.id,
                    "bare `except:` swallows BaseException (including "
                    "SimulatedCrash) — catch specific exception types",
                )


@register_rule
class BaseExceptionSwallowRule(AstRule):
    """``except BaseException`` must re-raise."""

    id = "EXC002"
    name = "no-baseexception-swallow"
    description = (
        "`except BaseException` may only be used for cleanup that re-raises; "
        "a handler that swallows it also swallows SimulatedCrash"
    )
    scope = None

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if "BaseException" in _names_in_type(node.type) and not _handler_reraises(node):
                yield Finding(
                    module.relpath,
                    node.lineno,
                    self.id,
                    "`except BaseException` without a re-raise swallows "
                    "SimulatedCrash — add `raise` or narrow the handler",
                )


@register_rule
class BroadExceptRule(AstRule):
    """Broad ``except Exception`` in fault-injected modules needs justification."""

    id = "EXC003"
    name = "no-unjustified-broad-except"
    description = (
        "in modules the fault injector reaches, `except Exception` must "
        "re-raise or carry an explicit justification "
        "(`# repro: noqa[EXC003]` or `# noqa: BLE001`)"
    )
    #: Modules reachable from the chaos hooks: the whole service layer plus
    #: the session/store/federation paths the ``chaos:`` backend wraps.
    scope = (
        "repro.service",
        "repro.scenarios.session",
        "repro.scenarios.store",
        "repro.scenarios.store_sqlite",
        "repro.scenarios.store_chaos",
        "repro.scenarios.federation",
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if "Exception" not in _names_in_type(node.type):
                continue
            if _handler_reraises(node):
                continue
            if _BLE_NOQA_RE.search(module.line_text(node.lineno)):
                continue
            yield Finding(
                module.relpath,
                node.lineno,
                self.id,
                "broad `except Exception` in a fault-injected module — "
                "narrow the types, re-raise, or justify with "
                "`# noqa: BLE001 - <reason>`",
            )


@register_rule
class FutureAnnotationsRule(AstRule):
    """Modules that define anything import ``from __future__ import annotations``."""

    id = "ANN001"
    name = "future-annotations"
    description = (
        "every module defining functions or classes must start with "
        "`from __future__ import annotations` (lazy annotations keep "
        "import-time cheap and forward references legal)"
    )
    scope = None

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        defines = any(
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            for node in ast.walk(module.tree)
        )
        if not defines:
            return
        for node in module.tree.body:
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "__future__"
                and any(alias.name == "annotations" for alias in node.names)
            ):
                return
        yield Finding(
            module.relpath,
            1,
            self.id,
            "module defines functions/classes but lacks "
            "`from __future__ import annotations`",
        )


@register_rule
class PublicApiAnnotationsRule(AstRule):
    """Public functions and methods carry full type annotations."""

    id = "ANN002"
    name = "public-api-annotations"
    description = (
        "public (non-underscore) module-level functions and class methods "
        "must annotate every parameter and the return type"
    )
    scope = None

    #: Dunders whose signatures are fixed by the object protocol anyway.
    _EXEMPT_DUNDERS = frozenset(
        {"__repr__", "__str__", "__hash__", "__len__", "__iter__", "__next__",
         "__enter__", "__exit__", "__eq__", "__lt__", "__le__", "__gt__",
         "__ge__", "__contains__", "__bool__", "__del__", "__copy__",
         "__deepcopy__", "__getstate__", "__setstate__", "__post_init__"}
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        yield from self._check_scope(module, module.tree.body, in_class=False)

    def _check_scope(
        self, module: ModuleInfo, stmts: list[ast.stmt], in_class: bool
    ) -> Iterator[Finding]:
        for stmt in stmts:
            if isinstance(stmt, ast.ClassDef):
                if not stmt.name.startswith("_"):
                    yield from self._check_scope(module, stmt.body, in_class=True)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, stmt, in_class)

    def _check_function(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        in_class: bool,
    ) -> Iterator[Finding]:
        name = func.name
        if name.startswith("_") and not (name.startswith("__") and name.endswith("__")):
            return
        if name in self._EXEMPT_DUNDERS:
            return
        args = func.args
        positional = list(args.posonlyargs) + list(args.args)
        if in_class and positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        missing = [arg.arg for arg in positional + list(args.kwonlyargs) if arg.annotation is None]
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                missing.append(f"*{star.arg}")
        if missing:
            yield Finding(
                module.relpath,
                func.lineno,
                self.id,
                f"public {'method' if in_class else 'function'} `{name}` has "
                f"unannotated parameter(s): {', '.join(missing)}",
            )
        if func.returns is None:
            yield Finding(
                module.relpath,
                func.lineno,
                self.id,
                f"public {'method' if in_class else 'function'} `{name}` lacks "
                "a return annotation",
            )
