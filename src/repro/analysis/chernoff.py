"""Concentration inequalities used by the paper's proofs.

Two flavours appear in the paper:

* the multiplicative Chernoff–Hoeffding lower/upper tails for sums of
  independent indicator (or Poisson) variables — used in Lemma 1 (singleton
  bins) and Lemma 5 (messages delivered per sub-round), and
* the *Poissonisation* transfer principle (Mitzenmacher & Upfal, Theorem
  5.10): any event with probability ``p`` in the Poissonised balls-in-bins
  model has probability at most ``p·e·sqrt(m)`` in the exact model.

These are small formulas, but having them as named, tested functions keeps the
analysis code in :mod:`repro.core.analysis` readable and lets property-based
tests check them against brute-force computation.
"""

from __future__ import annotations

import math

from repro.util.validation import check_positive

__all__ = [
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "hoeffding_bound",
    "poissonisation_factor",
]


def chernoff_lower_tail(mu: float, phi: float) -> float:
    """Bound ``P(X ≤ (1 − φ)µ) ≤ exp(−φ²µ/2)`` for ``0 < φ < 1``.

    This is the form used in Lemma 5 of the paper (with ``φ = 1/6``) to show
    each analysis sub-round delivers enough messages.
    """
    check_positive("mu", mu)
    if not 0.0 < phi < 1.0:
        raise ValueError(f"phi must lie in (0, 1), got {phi}")
    return math.exp(-phi * phi * mu / 2.0)


def chernoff_upper_tail(mu: float, phi: float) -> float:
    """Bound ``P(X ≥ (1 + φ)µ) ≤ exp(−φ²µ/3)`` for ``0 < φ ≤ 1``."""
    check_positive("mu", mu)
    if not 0.0 < phi <= 1.0:
        raise ValueError(f"phi must lie in (0, 1], got {phi}")
    return math.exp(-phi * phi * mu / 3.0)


def hoeffding_bound(n: int, t: float) -> float:
    """Hoeffding's inequality for ``n`` independent variables in [0, 1].

    ``P(|X − E[X]| ≥ t·n) ≤ 2·exp(−2 t² n)``.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    check_positive("t", t)
    return min(1.0, 2.0 * math.exp(-2.0 * t * t * n))


def poissonisation_factor(m: int) -> float:
    """The transfer factor ``e·sqrt(m)`` from the Poissonised to the exact model.

    "any event that takes place with probability p in the Poisson case takes
    place with probability at most p·e·sqrt(m) in the exact case" (proof of
    Lemma 1, citing Mitzenmacher & Upfal).
    """
    if m < 1:
        raise ValueError(f"m must be positive, got {m}")
    return math.e * math.sqrt(m)
