"""Probabilistic analysis toolkit.

The paper's proofs rest on two standard tools — balls-in-bins occupancy
arguments (Lemma 1) and Chernoff–Hoeffding concentration bounds (Lemmas 1 and
5).  This package implements those tools as reusable, tested functions, both
so the theoretical quantities can be checked numerically against simulation
(see ``tests/analysis``) and so the experiment harness can annotate its output
with the bounds the paper predicts.

* :mod:`repro.analysis.balls_in_bins` — singleton-occupancy statistics of
  dropping m balls into w bins.
* :mod:`repro.analysis.chernoff` — the concentration inequalities used in the
  proofs, including the Poissonisation transfer factor.
* :mod:`repro.analysis.statistics` — descriptive statistics of makespan
  samples (the quantities reported in Figure 1 / Table 1).

Protocol-specific closed forms (Theorem 1, Theorem 2, the Table 1 "Analysis"
column) live next to the protocols in :mod:`repro.core.analysis`.
"""

from __future__ import annotations

from repro.analysis.balls_in_bins import (
    collision_probability_upper_bound,
    expected_singletons,
    sample_singletons,
    singleton_fraction_lower_tail,
    singleton_probability,
)
from repro.analysis.chernoff import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    hoeffding_bound,
    poissonisation_factor,
)
from repro.analysis.statistics import RunStatistics, summarize_makespans, summarize_ratios

__all__ = [
    "expected_singletons",
    "singleton_probability",
    "sample_singletons",
    "singleton_fraction_lower_tail",
    "collision_probability_upper_bound",
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "hoeffding_bound",
    "poissonisation_factor",
    "RunStatistics",
    "summarize_makespans",
    "summarize_ratios",
]
