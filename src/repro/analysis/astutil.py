"""Small AST helpers shared by the lint rules.

The rules need one recurring capability: resolving a call like
``np.random.default_rng()`` or ``time()`` back to the *canonical* dotted name
of what is being called (``numpy.random.default_rng``, ``time.time``),
whatever import aliases the module uses.  :func:`import_aliases` builds the
alias table from the module's import statements and :func:`resolve_call`
applies it to a call's function expression.
"""

from __future__ import annotations

import ast

__all__ = ["dotted_name", "import_aliases", "resolve_call"]


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted name, from the module's imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random import
    default_rng as rng`` maps ``rng -> numpy.random.default_rng``; relative
    imports are ignored (they cannot shadow the stdlib/numpy names the rules
    care about).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                canonical = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def resolve_call(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of a call target, alias-resolved.

    ``np.random.rand(...)`` with ``np -> numpy`` resolves to
    ``numpy.random.rand``; a call whose target is not a plain Name/Attribute
    chain (subscripts, calls of calls) resolves to ``None``.
    """
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    canonical = aliases.get(head, head)
    return f"{canonical}.{rest}" if rest else canonical
