"""Import-time contract rules: the registries' promises, machine-checked.

PRs 5–6 made every dispatch decision a registry query; these rules verify
the *other* direction of that contract — that everything which should be in
a registry actually is, with a conforming declaration:

* ``REG001`` — every engine class in the :mod:`repro.engine` package
  declares an :class:`~repro.engine.registry.EngineCapabilities` and is
  registered under its ``name`` (batched engines additionally expose the
  ``supports`` kernel check).
* ``REG002`` — every registered protocol declares a valid
  ``protocol_kind`` and round-trips through
  :func:`~repro.protocols.base.build_protocol` back to its own class.
* ``REG003`` — every registered store backend is concrete and implements
  the full :class:`~repro.scenarios.store.StoreBackend` ABC with
  call-compatible signatures.
* ``REG004`` — every registered protocol that declares a per-cell batch
  kernel also declares the per-row hooks the cross-cell mega-batch engines
  need (``make_fused_batch_state`` for fair kernels,
  ``fused_schedule_key`` for windowed ones), so a protocol cannot silently
  fall out of sweep fusion.

Unlike the AST rules these import :mod:`repro` and inspect the live
registries, so a declaration that parses but lies (an engine that forgot to
register, a protocol whose ``from_spec`` cannot rebuild it) is caught here.
Findings point at the defining class's source location.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from collections.abc import Iterator

from repro.analysis.core import Finding, ModuleInfo, ProjectRule, register_rule

__all__ = [
    "EngineContractRule",
    "FusedKernelContractRule",
    "ProtocolContractRule",
    "StoreContractRule",
]

#: The protocol kinds the engine registry dispatches on.
_VALID_KINDS = frozenset({"fair", "windowed", "generic"})


def _location(obj: object) -> tuple[str, int]:
    """(source path, line) of a class/function, for finding placement."""
    try:
        path = inspect.getsourcefile(obj) or "<unknown>"
        line = inspect.getsourcelines(obj)[1]
    except (OSError, TypeError):
        return "<unknown>", 1
    return path, line


def _iter_package_classes(package_name: str) -> Iterator[type]:
    """Every class *defined* in a package's modules (imported, recursive)."""
    package = importlib.import_module(package_name)
    module_names = [package_name]
    for info in pkgutil.iter_modules(package.__path__, prefix=f"{package_name}."):
        module_names.append(info.name)
    # Include dynamically injected submodules (the test suite uses these to
    # exercise the violating side of each contract).
    module_names.extend(
        name
        for name in sys.modules
        if name.startswith(f"{package_name}.") and name not in module_names
    )
    seen: set[int] = set()
    for module_name in sorted(module_names):
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            continue
        for _, cls in sorted(inspect.getmembers(module, inspect.isclass)):
            if cls.__module__ != module_name or id(cls) in seen:
                continue
            seen.add(id(cls))
            yield cls


class _ImportContractRule(ProjectRule):
    """Shared plumbing: project rules ignore per-module AST state."""

    def applies_to(self, module: ModuleInfo) -> bool:  # pragma: no cover - unused
        return False


@register_rule
class EngineContractRule(_ImportContractRule):
    """Engines declare capabilities and register themselves."""

    id = "REG001"
    name = "engine-registry-contract"
    description = (
        "every engine class in repro.engine declares EngineCapabilities and "
        "is registered under its `name`; batched engines expose "
        "`supports(protocol)`"
    )

    def check_project(self) -> Iterator[Finding]:
        from repro.engine.registry import EngineCapabilities, engine_class, engine_names

        registered = {name: engine_class(name) for name in engine_names()}
        for cls in _iter_package_classes("repro.engine"):
            if not cls.__name__.endswith("Engine") or cls.__name__.startswith("_"):
                continue
            if inspect.isabstract(cls):
                continue
            path, line = _location(cls)
            capabilities = getattr(cls, "capabilities", None)
            if not isinstance(capabilities, EngineCapabilities):
                yield Finding(
                    path, line, self.id,
                    f"engine class {cls.__name__} does not declare an "
                    "EngineCapabilities `capabilities` attribute",
                )
                continue
            name = getattr(cls, "name", None)
            if not isinstance(name, str) or not name:
                yield Finding(
                    path, line, self.id,
                    f"engine class {cls.__name__} does not declare a non-empty "
                    "`name` attribute",
                )
                continue
            if registered.get(name) is not cls:
                yield Finding(
                    path, line, self.id,
                    f"engine class {cls.__name__} (name {name!r}) is not "
                    "registered with register_engine",
                )
            if capabilities.batched and not callable(getattr(cls, "supports", None)):
                yield Finding(
                    path, line, self.id,
                    f"batched engine {cls.__name__} must provide a "
                    "supports(protocol) classmethod",
                )


@register_rule
class ProtocolContractRule(_ImportContractRule):
    """Registered protocols declare a kind and round-trip through build_protocol."""

    id = "REG002"
    name = "protocol-registry-contract"
    description = (
        "every registered protocol declares protocol_kind in "
        "{fair, windowed, generic} and `build_protocol(name, k)` rebuilds an "
        "instance of the registered class"
    )

    #: Contention size used for the round-trip probe (any small k works:
    #: protocols requiring knowledge of k derive their parameters from it).
    probe_k = 8

    def check_project(self) -> Iterator[Finding]:
        from repro.protocols import available_protocols, build_protocol, get_protocol_class

        for name in available_protocols():
            cls = get_protocol_class(name)
            path, line = _location(cls)
            kind = getattr(cls, "protocol_kind", None)
            if kind not in _VALID_KINDS:
                yield Finding(
                    path, line, self.id,
                    f"protocol {name!r} ({cls.__name__}) declares invalid "
                    f"protocol_kind {kind!r}; expected one of {sorted(_VALID_KINDS)}",
                )
            if inspect.isabstract(cls):
                yield Finding(
                    path, line, self.id,
                    f"registered protocol {name!r} ({cls.__name__}) is abstract "
                    "— it can never be instantiated from a spec",
                )
                continue
            try:
                instance = build_protocol(name, self.probe_k)
            except Exception as error:  # noqa: BLE001 - any failure is the finding
                yield Finding(
                    path, line, self.id,
                    f"protocol {name!r} does not round-trip through "
                    f"build_protocol(k={self.probe_k}): {type(error).__name__}: {error}",
                )
                continue
            if not isinstance(instance, cls):
                yield Finding(
                    path, line, self.id,
                    f"build_protocol({name!r}, k={self.probe_k}) returned "
                    f"{type(instance).__name__}, not {cls.__name__}",
                )


@register_rule
class StoreContractRule(_ImportContractRule):
    """Registered store backends fully implement the StoreBackend ABC."""

    id = "REG003"
    name = "store-backend-contract"
    description = (
        "every registered store backend is concrete and implements every "
        "StoreBackend abstract method with a call-compatible signature"
    )

    def check_project(self) -> Iterator[Finding]:
        from repro.scenarios.store import (
            StoreBackend,
            available_store_backends,
            store_backend_class,
        )

        base_methods = sorted(getattr(StoreBackend, "__abstractmethods__", ()))
        for name in available_store_backends():
            cls = store_backend_class(name)
            path, line = _location(cls)
            if not issubclass(cls, StoreBackend):
                yield Finding(
                    path, line, self.id,
                    f"store backend {name!r} ({cls.__name__}) is not a "
                    "StoreBackend subclass",
                )
                continue
            if inspect.isabstract(cls):
                missing = sorted(getattr(cls, "__abstractmethods__", ()))
                yield Finding(
                    path, line, self.id,
                    f"store backend {name!r} ({cls.__name__}) is abstract — "
                    f"unimplemented: {', '.join(missing)}",
                )
                continue
            if not callable(getattr(cls, "from_spec", None)):
                yield Finding(
                    path, line, self.id,
                    f"store backend {name!r} ({cls.__name__}) lacks the "
                    "from_spec(location) constructor classmethod",
                )
            for method_name in base_methods:
                impl = getattr(cls, method_name, None)
                base = getattr(StoreBackend, method_name)
                if impl is None or impl is base:
                    continue  # abstractness already checked above
                problem = _signature_mismatch(base, impl)
                if problem is not None:
                    yield Finding(
                        path, line, self.id,
                        f"store backend {name!r}: `{method_name}` signature is "
                        f"not call-compatible with StoreBackend.{method_name} "
                        f"({problem})",
                    )


@register_rule
class FusedKernelContractRule(_ImportContractRule):
    """Protocols with a batch kernel also declare the per-row fusion hooks."""

    id = "REG004"
    name = "fused-kernel-contract"
    description = (
        "every registered protocol declaring a per-cell batch kernel "
        "(make_batch_state / make_window_batch_state) also provides the "
        "per-row hooks the mega-batch engines fuse on "
        "(make_fused_batch_state / fused_schedule_key)"
    )

    #: Contention size used for the probe instances (mirrors REG002).
    probe_k = 8

    def check_project(self) -> Iterator[Finding]:
        from repro.protocols import available_protocols, build_protocol, get_protocol_class

        for name in available_protocols():
            cls = get_protocol_class(name)
            if inspect.isabstract(cls):
                continue  # REG002's finding; nothing to probe here
            path, line = _location(cls)
            try:
                instance = build_protocol(name, self.probe_k)
            except Exception:  # noqa: BLE001 - REG002 reports broken round-trips
                continue
            kind = getattr(instance, "protocol_kind", "generic")
            if kind == "fair" and instance.make_batch_state(1) is not None:
                try:
                    fused = type(instance).make_fused_batch_state([instance.spawn()], [1])
                except Exception as error:  # noqa: BLE001 - any failure is the finding
                    yield Finding(
                        path, line, self.id,
                        f"protocol {name!r} ({cls.__name__}) declares a fair batch "
                        f"kernel but make_fused_batch_state raises "
                        f"{type(error).__name__}: {error}",
                    )
                    continue
                if fused is None:
                    yield Finding(
                        path, line, self.id,
                        f"protocol {name!r} ({cls.__name__}) declares a fair batch "
                        "kernel (make_batch_state) without the per-row "
                        "make_fused_batch_state hook — its cells cannot fuse",
                    )
            elif kind == "windowed" and instance.make_window_batch_state(1) is not None:
                try:
                    key = instance.fused_schedule_key()
                except Exception as error:  # noqa: BLE001 - any failure is the finding
                    yield Finding(
                        path, line, self.id,
                        f"protocol {name!r} ({cls.__name__}) declares a window batch "
                        f"kernel but fused_schedule_key raises "
                        f"{type(error).__name__}: {error}",
                    )
                    continue
                if key is None:
                    yield Finding(
                        path, line, self.id,
                        f"protocol {name!r} ({cls.__name__}) declares a window batch "
                        "kernel (make_window_batch_state) without a "
                        "fused_schedule_key schedule identity — its cells cannot fuse",
                    )


def _signature_mismatch(base: object, impl: object) -> str | None:
    """Why ``impl`` cannot be called like ``base``, or ``None`` if it can.

    Positional parameters must match in name and order (extras allowed only
    with defaults); every base keyword must be accepted (directly or via
    ``**kwargs``).
    """
    try:
        base_sig = inspect.signature(base)
        impl_sig = inspect.signature(impl)
    except (TypeError, ValueError):  # pragma: no cover - builtins
        return None
    base_params = list(base_sig.parameters.values())
    impl_params = list(impl_sig.parameters.values())
    impl_has_varkw = any(p.kind is p.VAR_KEYWORD for p in impl_params)
    impl_positional = [
        p for p in impl_params if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    base_positional = [
        p for p in base_params if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    for index, param in enumerate(base_positional):
        if index >= len(impl_positional):
            if any(p.kind is p.VAR_POSITIONAL for p in impl_params):
                continue
            return f"missing positional parameter {param.name!r}"
        if impl_positional[index].name != param.name:
            return (
                f"positional parameter {index} is "
                f"{impl_positional[index].name!r}, expected {param.name!r}"
            )
    for extra in impl_positional[len(base_positional):]:
        if extra.default is inspect.Parameter.empty:
            return f"extra required parameter {extra.name!r}"
    impl_names = {p.name for p in impl_params}
    for param in base_params:
        if param.kind is param.KEYWORD_ONLY and param.name not in impl_names and not impl_has_varkw:
            return f"missing keyword parameter {param.name!r}"
    return None
