"""Parameter-validation helpers shared by protocols and experiment configs.

Protocols in this repository validate their parameters eagerly at construction
time so that an invalid configuration (a probability outside (0, 1], a
non-positive network size, a delta outside the range admitted by the paper's
theorems) fails with a clear message instead of silently producing meaningless
simulation results.
"""

from __future__ import annotations

import math

__all__ = [
    "check_in_range",
    "check_positive",
    "check_positive_int",
    "check_probability",
]


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number strictly greater than zero."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def check_positive_int(name: str, value: int) -> int:
    """Return ``value`` if it is an integer strictly greater than zero."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_probability(name: str, value: float, allow_zero: bool = False) -> float:
    """Return ``value`` if it is a valid probability.

    Probabilities must lie in ``(0, 1]`` (or ``[0, 1]`` when ``allow_zero``),
    which matches how transmission probabilities are used by the channel: a
    probability of exactly 1 is legal (the node transmits for sure), a
    probability above 1 is a bug.
    """
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    lower_ok = value >= 0 if allow_zero else value > 0
    if not lower_ok or value > 1:
        bound = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValueError(f"{name} must be a probability in {bound}, got {value!r}")
    return float(value)


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Return ``value`` if it lies in the requested interval.

    Used for the admissible ranges stated by the paper's theorems, e.g.
    ``e < delta <= sum((5/6)**j for j in 1..5)`` for One-fail Adaptive and
    ``0 < delta < 1/e`` for Exp Back-on/Back-off.
    """
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    low_ok = value >= low if low_inclusive else value > low
    high_ok = value <= high if high_inclusive else value < high
    if not (low_ok and high_ok):
        left = "[" if low_inclusive else "("
        right = "]" if high_inclusive else ")"
        raise ValueError(f"{name} must lie in {left}{low}, {high}{right}, got {value!r}")
    return float(value)
