"""ASCII rendering of the paper's log-log figure.

Figure 1 of the paper plots the average number of slots needed to solve static
k-selection against the number of contenders k, on log-log axes, with one
curve per protocol.  matplotlib is not available offline, so the experiment
harness renders the same figure as

* a character-grid log-log plot (:class:`LogLogPlot`), good enough to see the
  relative ordering and slopes of the curves in a terminal or a Markdown code
  block, and
* gnuplot-compatible ``.dat`` files written by :mod:`repro.experiments.export`.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

__all__ = ["LogLogPlot", "render_series"]

#: Characters used to mark successive series on the grid.
_SERIES_MARKERS = "ox+*#@%&"


@dataclass
class LogLogPlot:
    """Character-grid plot with logarithmic x and y axes.

    Parameters
    ----------
    width, height:
        Size of the plotting grid in characters (axes excluded).
    x_label, y_label:
        Axis captions printed under and beside the grid.
    """

    width: int = 72
    height: int = 24
    x_label: str = "x"
    y_label: str = "y"
    _series: list[tuple[str, Sequence[float], Sequence[float]]] = field(default_factory=list)

    def add_series(self, name: str, xs: Sequence[float], ys: Sequence[float]) -> None:
        """Register a named series of strictly positive points."""
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: {len(xs)} x-values but {len(ys)} y-values")
        if not xs:
            raise ValueError(f"series {name!r} is empty")
        for x, y in zip(xs, ys):
            if x <= 0 or y <= 0:
                raise ValueError(
                    f"series {name!r}: log-log plot requires positive values, got ({x}, {y})"
                )
        self._series.append((name, list(xs), list(ys)))

    def _bounds(self) -> tuple[float, float, float, float]:
        all_x = [x for _, xs, _ in self._series for x in xs]
        all_y = [y for _, _, ys in self._series for y in ys]
        return min(all_x), max(all_x), min(all_y), max(all_y)

    def render(self) -> str:
        """Render the plot as a multi-line string."""
        if not self._series:
            raise ValueError("no series added to plot")
        x_min, x_max, y_min, y_max = self._bounds()
        log_x_min, log_x_max = math.log10(x_min), math.log10(x_max)
        log_y_min, log_y_max = math.log10(y_min), math.log10(y_max)
        x_span = max(log_x_max - log_x_min, 1e-12)
        y_span = max(log_y_max - log_y_min, 1e-12)

        grid = [[" "] * self.width for _ in range(self.height)]
        for series_index, (_, xs, ys) in enumerate(self._series):
            marker = _SERIES_MARKERS[series_index % len(_SERIES_MARKERS)]
            for x, y in zip(xs, ys):
                col = int(round((math.log10(x) - log_x_min) / x_span * (self.width - 1)))
                row = int(round((math.log10(y) - log_y_min) / y_span * (self.height - 1)))
                grid[self.height - 1 - row][col] = marker

        y_tick_width = max(len(f"{y_max:.3g}"), len(f"{y_min:.3g}"))
        lines = []
        for row_index, row in enumerate(grid):
            if row_index == 0:
                tick = f"{y_max:.3g}".rjust(y_tick_width)
            elif row_index == self.height - 1:
                tick = f"{y_min:.3g}".rjust(y_tick_width)
            else:
                tick = " " * y_tick_width
            lines.append(f"{tick} |{''.join(row)}")
        lines.append(" " * y_tick_width + " +" + "-" * self.width)
        x_axis = f"{x_min:.3g}".ljust(self.width - len(f"{x_max:.3g}")) + f"{x_max:.3g}"
        lines.append(" " * (y_tick_width + 2) + x_axis)
        lines.append(" " * (y_tick_width + 2) + f"{self.x_label}  (log scale)   y: {self.y_label}")
        legend = [
            f"  {_SERIES_MARKERS[index % len(_SERIES_MARKERS)]} = {name}"
            for index, (name, _, _) in enumerate(self._series)
        ]
        lines.append("legend:")
        lines.extend(legend)
        return "\n".join(lines)


def render_series(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    x_label: str = "k",
    y_label: str = "steps",
    width: int = 72,
    height: int = 24,
) -> str:
    """Convenience wrapper: render a ``{name: (xs, ys)}`` mapping as a plot."""
    plot = LogLogPlot(width=width, height=height, x_label=x_label, y_label=y_label)
    for name, (xs, ys) in series.items():
        plot.add_series(name, xs, ys)
    return plot.render()
