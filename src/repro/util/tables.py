"""Plain-text and Markdown table rendering.

The experiment harness reports its results as tables (Table 1 of the paper is
literally a table; Figure 1 is exported both as data and as an ASCII plot).
matplotlib and pandas are not available in the offline environment, so these
small, dependency-free formatters are used everywhere a table is printed or
written to EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_markdown_table", "format_text_table"]


def _stringify(cell: object, float_format: str) -> str:
    if isinstance(cell, float):
        return format(cell, float_format)
    return str(cell)


def _normalise(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str,
) -> tuple[list[str], list[list[str]]]:
    header_cells = [str(cell) for cell in headers]
    body: list[list[str]] = []
    for row in rows:
        cells = [_stringify(cell, float_format) for cell in row]
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(header_cells)} columns: {cells}"
            )
        body.append(cells)
    return header_cells, body


def format_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = ".2f",
) -> str:
    """Render ``headers``/``rows`` as a GitHub-flavoured Markdown table.

    Floats are formatted with ``float_format``; all other cells use ``str``.
    """
    header_cells, body = _normalise(headers, rows, float_format)
    widths = [len(cell) for cell in header_cells]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|" + "|".join("-" * (width + 2) for width in widths) + "|"
    lines = [render_row(header_cells), separator]
    lines.extend(render_row(row) for row in body)
    return "\n".join(lines)


def format_text_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = ".2f",
    column_gap: int = 2,
) -> str:
    """Render ``headers``/``rows`` as an aligned plain-text table.

    Useful for terminal output where Markdown pipes add noise.
    """
    header_cells, body = _normalise(headers, rows, float_format)
    widths = [len(cell) for cell in header_cells]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    gap = " " * column_gap

    def render_row(cells: Sequence[str]) -> str:
        return gap.join(cell.ljust(widths[index]) for index, cell in enumerate(cells)).rstrip()

    lines = [render_row(header_cells)]
    lines.append(gap.join("-" * width for width in widths))
    lines.extend(render_row(row) for row in body)
    return "\n".join(lines)
