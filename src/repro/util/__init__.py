"""Shared utilities: deterministic RNG management, table/plot rendering, validation.

The utilities in this package carry no protocol or channel semantics; they are
used across :mod:`repro.channel`, :mod:`repro.engine` and
:mod:`repro.experiments` to keep simulation code deterministic and the
experiment output human-readable without external plotting dependencies.
"""

from __future__ import annotations

from repro.util.rng import (
    RandomSource,
    derive_seeds,
    make_generator,
    spawn_generators,
)
from repro.util.tables import format_markdown_table, format_text_table
from repro.util.textplot import LogLogPlot, render_series
from repro.util.validation import (
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "RandomSource",
    "derive_seeds",
    "make_generator",
    "spawn_generators",
    "format_markdown_table",
    "format_text_table",
    "LogLogPlot",
    "render_series",
    "check_in_range",
    "check_positive",
    "check_positive_int",
    "check_probability",
]
