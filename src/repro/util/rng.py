"""Deterministic random-number management for simulations.

Every simulation run in this repository is driven by a single integer seed.
Sweeps (many protocols x many network sizes x many repetitions) derive
independent child seeds through :class:`numpy.random.SeedSequence`, which
guarantees that

* two runs with the same seed produce bit-identical results, and
* sibling runs are statistically independent even when their seeds are
  consecutive integers.

The helpers here are intentionally tiny wrappers around numpy so that the rest
of the code never has to touch ``SeedSequence`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RandomSource", "derive_seeds", "make_generator", "spawn_generators"]

#: Upper bound (exclusive) for derived integer seeds.  Fits in a signed int64
#: so seeds survive round-trips through JSON and CSV without precision loss.
_SEED_BOUND = 2**63 - 1


def make_generator(seed: int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed.

    ``None`` produces a generator seeded from OS entropy; experiments always
    pass an explicit integer so their results are reproducible.
    """
    return np.random.default_rng(seed)


def derive_seeds(root_seed: int, count: int) -> list[int]:
    """Derive ``count`` independent integer seeds from ``root_seed``.

    The derivation uses ``SeedSequence.spawn`` so the children are independent
    of each other and of the parent stream.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    count:
        Number of child seeds to produce.  Must be non-negative.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = np.random.SeedSequence(root_seed)
    children = parent.spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0] % _SEED_BOUND) for child in children]


def spawn_generators(root_seed: int, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators derived from ``root_seed``."""
    parent = np.random.SeedSequence(root_seed)
    return [np.random.default_rng(child) for child in parent.spawn(count)]


@dataclass
class RandomSource:
    """A reproducible, hierarchically splittable source of randomness.

    A :class:`RandomSource` owns a numpy generator and remembers the seed it
    was created from, so that any result it helped produce can be traced back
    to a single integer.  Child sources created through :meth:`split` are
    independent and also record their lineage.

    Examples
    --------
    >>> src = RandomSource(seed=7)
    >>> child_a, child_b = src.split(2)
    >>> float(child_a.generator.random()) != float(child_b.generator.random())
    True
    """

    seed: int
    lineage: tuple[int, ...] = field(default_factory=tuple)
    generator: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        sequence = np.random.SeedSequence(self.seed, spawn_key=self.lineage)
        self.generator = np.random.default_rng(sequence)

    def split(self, count: int) -> list["RandomSource"]:
        """Create ``count`` independent child sources."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [
            RandomSource(seed=self.seed, lineage=self.lineage + (index,))
            for index in range(count)
        ]

    def child(self, index: int) -> "RandomSource":
        """Create the ``index``-th child source without materialising siblings."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        return RandomSource(seed=self.seed, lineage=self.lineage + (index,))

    def integers(self, low: int, high: int, size: int | None = None) -> int | np.ndarray:
        """Proxy for ``Generator.integers`` (kept for call-site brevity)."""
        return self.generator.integers(low, high, size=size)

    def random(self, size: int | None = None) -> float | np.ndarray:
        """Proxy for ``Generator.random``."""
        return self.generator.random(size=size)
