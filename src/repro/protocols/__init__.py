"""Contention-resolution protocols: framework, baselines and related work.

The paper's own contributions (One-fail Adaptive and Exp Back-on/Back-off)
live in :mod:`repro.core`; this package provides the protocol framework they
are built on plus every protocol the paper compares against or discusses:

* :mod:`repro.protocols.base` — the :class:`Protocol`, :class:`FairProtocol`
  and :class:`WindowedProtocol` interfaces and the protocol registry.
* :mod:`repro.protocols.log_fails_adaptive` — reconstruction of the
  Log-fails Adaptive protocol of Fernández Anta & Mosteiro (DMAA 2010),
  the paper's closest prior work (reference [7]).
* :mod:`repro.protocols.backoff` — the monotone windowed back-off family of
  Bender et al. (SPAA 2005): r-exponential, polynomial, log and
  loglog-iterated back-off (reference [2]).
* :mod:`repro.protocols.aloha` — slotted ALOHA with known k, the ``e·k``
  reference optimum mentioned in Section 5.
* :mod:`repro.protocols.splitting` — binary splitting / tree algorithm, the
  classical collision-detection baseline from the related-work section.
"""

from __future__ import annotations

from repro.protocols.base import (
    FairProtocol,
    Protocol,
    ProtocolFactory,
    WindowedProtocol,
    available_protocols,
    build_protocol,
    get_protocol_class,
    register_protocol,
)
from repro.protocols.aloha import SlottedAloha
from repro.protocols.backoff import (
    ExponentialBackoff,
    LogBackoff,
    LogLogIteratedBackoff,
    PolynomialBackoff,
    WindowBackoffProtocol,
)
from repro.protocols.log_fails_adaptive import LogFailsAdaptive
from repro.protocols.splitting import BinarySplitting

__all__ = [
    "Protocol",
    "FairProtocol",
    "WindowedProtocol",
    "ProtocolFactory",
    "register_protocol",
    "get_protocol_class",
    "available_protocols",
    "build_protocol",
    "SlottedAloha",
    "WindowBackoffProtocol",
    "ExponentialBackoff",
    "PolynomialBackoff",
    "LogBackoff",
    "LogLogIteratedBackoff",
    "LogFailsAdaptive",
    "BinarySplitting",
]
