"""Log-fails Adaptive — reconstruction of the protocol of reference [7].

The paper's evaluation compares its two new protocols against **Log-fails
Adaptive**, the authors' earlier k-selection protocol (Fernández Anta &
Mosteiro, *Contention resolution in multiple-access channels: k-selection in
radio networks*, Discrete Mathematics, Algorithms and Applications 2(4),
2010).  The full pseudocode of that protocol is published in [7], which is not
available to this reproduction; the class below is therefore a **documented
reconstruction** assembled from everything the present paper states about it:

* it is composed of two interleaved randomized rules, like One-fail Adaptive
  (Section 3, first paragraph);
* its *BT* rule transmits with a **fixed** inverse-logarithmic probability
  (whereas One-fail Adaptive uses ``1/(1+log₂(σ+1))``);
* its *AT* rule transmits with probability ``1/κ̃`` where the density
  estimator ``κ̃`` is updated only "after some steps without communication"
  (whereas One-fail Adaptive updates it continuously — after every single
  step, hence the names *Log-fails* vs *One-fail*);
* it requires ``ε ≤ 1/(n+1)``, i.e. an upper bound on the number of
  contenders, to guarantee its running time of ``(e + 1 + ξ)k + O(log²(1/ε))``
  steps with probability at least ``1 − 2ε``, where ``ξ > 0`` is an
  arbitrarily small constant;
* the evaluation uses ``ξδ = ξβ = 0.1``, ``ε ≈ 1/(k+1)`` and
  ``ξt ∈ {1/2, 1/10}``, and reports asymptotic steps/k ratios of 7.8 and 4.4
  respectively — consistent with a fraction ``ξt`` of the schedule being spent
  on the BT rule, i.e. an overall constant of ``(e + 1 + ξδ + ξβ)/(1 − ξt)``.

Reconstruction choices (kept as close to the above as possible):

* **Schedule.**  A deterministic fraction ``ξt`` of the communication steps
  are BT steps (step ``s`` is a BT step iff ``⌊s·ξt⌋ > ⌊(s−1)·ξt⌋``); the rest
  are AT steps.
* **BT rule.**  Transmit with the fixed probability ``1/(1 + log₂(1/ε))``
  (ε enters here: the rule is sized for a residual of Θ(log(1/ε)) ≥ Θ(log n)
  messages).
* **AT rule.**  Transmit with probability ``1/κ̃``.  The estimator starts at
  1 and decreases by ``1 + ξδ`` on every observed delivery.  The "log fails"
  mechanism is the only other update: after every
  ``⌈(1 + log₂(1/ε))(1 + ξβ)⌉`` consecutive steps without a reception the
  estimator takes one step of an **alternating exponential search** around the
  value it had when the silent stretch began — ``×2, ÷2, ×4, ÷4, ×8, …`` —
  because without collision detection the station cannot tell whether the
  stretch means too much contention (it should raise the estimate) or too
  little (it should lower it).  The explored factor is capped at the known
  contention bound (``2/ε``); an exhausted sweep starts over from the same
  anchor.  The search finds the right order of magnitude
  within ``O(log k)`` corrections, so ramping the estimator from 1 up to the
  actual contention k costs ``Θ(log(1/ε)·log k) = O(log²(1/ε))`` steps — the
  additive term of the published bound.  The coarseness of this block-wise
  correction (it needs a full logarithmic streak of failures before reacting,
  and then jumps by factors of two) is exactly what One-fail Adaptive removes
  by adjusting the estimate after every single step.

What the reconstruction reproduces (and what it does not): it preserves the
qualitative comparison drawn in Section 5 — Log-fails Adaptive needs knowledge
of ε, is noticeably worse and far less predictable than the paper's protocols
for small to moderate k, and converges towards its analytical constant for
large k.  The *extreme* ratios reported in Table 1 for k = 10²–10³ (which
depend on internal constants of [7] we cannot recover, and on the heavy tail
of 10-run averages) are not matched quantitatively; EXPERIMENTS.md reports the
measured values side by side with the paper's.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import ClassVar

import numpy as np

from repro.channel.model import Observation
from repro.core.constants import LFA_XI_BETA_DEFAULT, LFA_XI_DELTA_DEFAULT
from repro.protocols.base import FairBatchState, FairProtocol, register_protocol
from repro.util.validation import check_in_range

__all__ = ["LogFailsAdaptive"]

#: Slots of BT/AT schedule flavors precomputed per vectorised block of the
#: batch state (the schedule is a pure function of the slot index).
_FLAVOR_BLOCK = 1024

#: Shared "no probability rows changed" return of observe_receptions.
_NO_ROWS = np.empty(0, dtype=np.int64)


class _LogFailsBatchState(FairBatchState):
    """Vectorised Log-fails Adaptive state for R lockstep replications.

    Mirrors the scalar :meth:`LogFailsAdaptive.notify`: receptions reset the
    failure streak and re-anchor the exponential search; a full failure streak
    takes one alternating ``×2, ÷2, ×4, …`` step of that search.  Every
    protocol constant (BT probability, failure threshold, search bound, ξδ,
    ξt) is carried as a *per-row* array, so one state can serve rows fused
    from several cells with different parameterisations.  ``protocols[i]``
    contributes ``counts[i]`` consecutive rows.

    Two amortisations keep the per-slot cost flat (the state is stepped
    hundreds of thousands of times per sweep, on arrays of a few dozen rows
    where every numpy dispatch costs as much as the arithmetic):

    * **Probability caching.**  The BT/AT schedule is a pure function of the
      slot and ξt, so it is precomputed in vectorised blocks (rows sharing a
      ξt share a mask), and the per-flavor probability vectors are cached —
      κ̃ only changes on receptions and coarse corrections, and those sparse
      events patch the affected cache rows *in place* (reported to engines
      through the :meth:`observe_receptions` return value); only bulk
      updates drop the caches wholesale.
    * **Deadline-based failure counting.**  A row's failure streak is fully
      determined by the slot of its last reset, so instead of incrementing a
      per-row counter every slot the state stores the absolute slot at which
      each row *will* take its next coarse correction if nothing is received
      (``trigger_slot = reset_slot + threshold``), plus the scalar minimum.
      A quiet slot then costs one Python comparison; the array work runs
      only on receptions and on actual correction events.
    """

    def __init__(
        self, protocols: Sequence["LogFailsAdaptive"], counts: Sequence[int]
    ) -> None:
        repeat = np.asarray(counts, dtype=np.int64)
        self._bt_probability = np.repeat([p.bt_probability for p in protocols], repeat)
        self._failure_threshold = np.repeat(
            [p.failure_threshold for p in protocols], repeat
        )
        self._max_exponent = np.repeat([p.max_search_exponent for p in protocols], repeat)
        self._xi_delta = np.repeat([p.xi_delta for p in protocols], repeat)
        xi_t = np.repeat([p.xi_t for p in protocols], repeat)
        rows = int(repeat.sum())
        self._kappa = np.ones(rows)
        self._anchor = np.ones(rows)
        self._search = np.zeros(rows, dtype=np.int64)
        # One (ξt value, row mask) pair per distinct ξt: the schedule test is
        # scalar per group, the mask scatters the BT probability to its rows.
        self._xi_groups = [
            (float(value), xi_t == value) for value in np.unique(xi_t)
        ]
        self._group_bit = np.zeros(rows, dtype=np.int64)
        for bit, (_, mask) in enumerate(self._xi_groups):
            self._group_bit[mask] = bit
        # Probability caches, kept *current* in place: sparse κ̃ updates patch
        # the affected rows scalar-wise, bulk updates drop the caches whole.
        self._p_at: np.ndarray | None = None
        self._flavor_cache: dict[int, np.ndarray] = {}
        # Flavors are a pure function of the slot, so they are precomputed in
        # vectorised blocks (4 array ops per _FLAVOR_BLOCK slots) instead of
        # per-slot scalar floor arithmetic.
        self._flavor_base = -1
        self._flavor_block: np.ndarray | None = None
        # A row whose last reset (reception or correction) happened at slot r
        # triggers its next coarse correction at slot r + threshold; rows
        # start as if reset at slot -1.
        self._trigger_slot = self._failure_threshold.astype(np.int64) - 1
        self._next_trigger = int(self._trigger_slot.min())

    # ------------------------------------------------------------- scheduling
    def _fill_flavor_block(self, base: int) -> None:
        steps = np.arange(base + 1, base + 1 + _FLAVOR_BLOCK, dtype=np.int64)
        block = np.zeros(_FLAVOR_BLOCK, dtype=np.int64)
        for bit, (xi_t, _) in enumerate(self._xi_groups):
            bt = np.floor(steps * xi_t) > np.floor((steps - 1) * xi_t)
            block |= bt.astype(np.int64) << bit
        self._flavor_base = base
        self._flavor_block = block

    def _bt_flavor(self, slot: int) -> int:
        """Bitmask of ξt groups for which ``slot`` is a BT step.

        ``slot`` (0-based) is a BT step of the ξt group iff step ``s = slot+1``
        satisfies ``⌊s·ξt⌋ > ⌊(s−1)·ξt⌋`` (see :meth:`LogFailsAdaptive.is_bt_step`).
        """
        base = slot - slot % _FLAVOR_BLOCK
        if base != self._flavor_base:
            self._fill_flavor_block(base)
        assert self._flavor_block is not None
        return int(self._flavor_block[slot - base])

    def _invalidate_probabilities(self) -> None:
        self._p_at = None
        self._flavor_cache.clear()

    def _patch_probability_row(self, i: int, kappa_value: float) -> None:
        """Keep the probability caches current after a single-row κ̃ change."""
        p_at = self._p_at
        if p_at is None:
            return
        value = min(1.0, 1.0 / kappa_value)
        p_at[i] = value
        bit = int(self._group_bit[i])
        for flavor, mixed in self._flavor_cache.items():
            # Rows on a BT step of their ξt group use the fixed BT
            # probability, which κ̃ does not touch.
            if not (flavor >> bit) & 1:
                mixed[i] = value

    def _probabilities_for(self, flavor: int) -> np.ndarray:
        p_at = self._p_at
        if p_at is None:
            p_at = self._p_at = np.minimum(1.0, 1.0 / self._kappa)
            self._flavor_cache.clear()
        if flavor == 0:
            return p_at
        mixed = self._flavor_cache.get(flavor)
        if mixed is None:
            mixed = p_at.copy()
            for bit, (_, mask) in enumerate(self._xi_groups):
                if flavor & (1 << bit):
                    mixed[mask] = self._bt_probability[mask]
            self._flavor_cache[flavor] = mixed
        return mixed

    def probabilities(self, slot: int) -> np.ndarray:
        return self._probabilities_for(self._bt_flavor(slot))

    def probabilities_cached(self, slot: int) -> tuple[np.ndarray, object]:
        flavor = self._bt_flavor(slot)
        return self._probabilities_for(flavor), flavor

    # --------------------------------------------------------------- feedback
    def observe_receptions(
        self,
        slot: int,
        received: np.ndarray,
        received_any: bool | None = None,
        received_rows: np.ndarray | None = None,
    ) -> np.ndarray | None:
        if received_any is None:
            received_any = bool(received.any())
        changed: np.ndarray | None = _NO_ROWS
        if received_any:
            rows = received_rows if received_rows is not None else np.flatnonzero(received)
            if rows.size <= 8:
                # Receptions are sparse (usually one row); per-row scalar
                # arithmetic beats a cascade of whole-array np.where passes.
                for index in rows:
                    i = int(index)
                    corrected = max(self._kappa[i] - 1.0 - self._xi_delta[i], 1.0)
                    self._kappa[i] = corrected
                    self._anchor[i] = corrected
                    self._search[i] = 0
                    self._trigger_slot[i] = slot + self._failure_threshold[i]
                    self._patch_probability_row(i, corrected)
                changed = rows
            else:
                corrected = np.maximum(self._kappa - 1.0 - self._xi_delta, 1.0)
                self._kappa = np.where(received, corrected, self._kappa)
                self._anchor = np.where(received, corrected, self._anchor)
                self._search[received] = 0
                self._trigger_slot = np.where(
                    received, slot + self._failure_threshold, self._trigger_slot
                )
                self._invalidate_probabilities()
                changed = None
            self._next_trigger = int(self._trigger_slot.min())
        if slot >= self._next_trigger:
            triggered = self._take_search_steps(slot)
            if changed is None or triggered is None:
                changed = None
            elif changed.size:
                changed = np.concatenate([changed, triggered])
            else:
                changed = triggered
        return changed

    def _search_step_row(self, i: int, slot: int) -> None:
        """Scalar version of one alternating exponential-search step."""
        self._search[i] += 1
        search = int(self._search[i])
        exponent = (search + 1) // 2
        if exponent > self._max_exponent[i]:
            self._search[i] = search = 1
            exponent = 1
        magnitude = 2.0**exponent
        if search % 2 == 1:
            candidate = self._anchor[i] * magnitude
        else:
            candidate = self._anchor[i] / magnitude
        corrected = max(candidate, 1.0)
        self._kappa[i] = corrected
        self._trigger_slot[i] = slot + self._failure_threshold[i]
        self._patch_probability_row(i, corrected)

    def _take_search_steps(self, slot: int) -> np.ndarray | None:
        """One alternating exponential-search step for every row whose failure
        streak reached its threshold at ``slot``.

        Returns the rows stepped, or ``None`` when the bulk path invalidated
        the probability caches wholesale.
        """
        triggered = self._trigger_slot <= slot
        rows = np.flatnonzero(triggered)
        if rows.size <= 8:
            for index in rows:
                self._search_step_row(int(index), slot)
            result: np.ndarray | None = rows
        else:
            self._trigger_slot = np.where(
                triggered, slot + self._failure_threshold, self._trigger_slot
            )
            self._search += triggered
            exponent = (self._search + 1) // 2
            restart = triggered & (exponent > self._max_exponent)
            self._search[restart] = 1
            exponent = np.where(restart, 1, exponent)
            magnitude = np.exp2(exponent)
            candidate = np.where(
                self._search % 2 == 1,
                self._anchor * magnitude,
                self._anchor / magnitude,
            )
            self._kappa = np.where(triggered, np.maximum(candidate, 1.0), self._kappa)
            self._invalidate_probabilities()
            result = None
        self._next_trigger = int(self._trigger_slot.min())
        return result

    def compact(self, keep: np.ndarray) -> None:
        self._bt_probability = self._bt_probability[keep]
        self._failure_threshold = self._failure_threshold[keep]
        self._max_exponent = self._max_exponent[keep]
        self._xi_delta = self._xi_delta[keep]
        self._kappa = self._kappa[keep]
        self._anchor = self._anchor[keep]
        self._search = self._search[keep]
        self._trigger_slot = self._trigger_slot[keep]
        self._group_bit = self._group_bit[keep]
        self._xi_groups = [
            (xi_t, mask[keep]) for xi_t, mask in self._xi_groups
        ]
        # The caches are per-row, so they stay current under the same slicing.
        if self._p_at is not None:
            self._p_at = self._p_at[keep]
            self._flavor_cache = {
                flavor: mixed[keep] for flavor, mixed in self._flavor_cache.items()
            }
        if self._trigger_slot.size:
            self._next_trigger = int(self._trigger_slot.min())


@register_protocol
class LogFailsAdaptive(FairProtocol):
    """Reconstruction of Log-fails Adaptive (reference [7] of the paper).

    Parameters
    ----------
    epsilon:
        Error-probability parameter; must satisfy ``ε ≤ 1/(n+1)`` for the
        published guarantee, which is why the protocol is said to require
        knowledge of (an upper bound on) the number of contenders.  The
        paper's evaluation uses ``ε ≈ 1/(k+1)``.
    xi_t:
        Fraction of the communication steps devoted to the BT (fixed
        probability) rule.  The paper's evaluation uses 1/2 and 1/10.
    xi_delta, xi_beta:
        Small slack constants (0.1 in the paper's evaluation).  ``xi_delta``
        inflates the per-delivery decrement of the density estimator;
        ``xi_beta`` inflates the length of the failure streak that triggers
        the coarse upward correction.
    """

    name: ClassVar[str] = "log-fails-adaptive"
    label: ClassVar[str] = "Log-Fails Adaptive"
    requires_knowledge: ClassVar[frozenset[str]] = frozenset({"epsilon"})

    def __init__(
        self,
        epsilon: float,
        xi_t: float = 0.5,
        xi_delta: float = LFA_XI_DELTA_DEFAULT,
        xi_beta: float = LFA_XI_BETA_DEFAULT,
    ) -> None:
        self.epsilon = check_in_range(
            "epsilon", epsilon, 0.0, 1.0, low_inclusive=False, high_inclusive=False
        )
        self.xi_t = check_in_range(
            "xi_t", xi_t, 0.0, 1.0, low_inclusive=False, high_inclusive=False
        )
        self.xi_delta = check_in_range("xi_delta", xi_delta, 0.0, 1.0, low_inclusive=False)
        self.xi_beta = check_in_range("xi_beta", xi_beta, 0.0, 1.0, low_inclusive=False)
        self.reset()

    @classmethod
    def for_k(
        cls,
        k: int,
        xi_t: float = 0.5,
        xi_delta: float = LFA_XI_DELTA_DEFAULT,
        xi_beta: float = LFA_XI_BETA_DEFAULT,
    ) -> "LogFailsAdaptive":
        """Instantiate with the evaluation's choice ``ε = 1/(k+1)``."""
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        return cls(epsilon=1.0 / (k + 1.0), xi_t=xi_t, xi_delta=xi_delta, xi_beta=xi_beta)

    @classmethod
    def from_spec(cls, k: int, **params: object) -> "LogFailsAdaptive":
        """Spec-string hook: default ``ε = 1/(k+1)`` unless given explicitly."""
        if "epsilon" in params:
            return cls(**params)  # type: ignore[arg-type]
        return cls.for_k(k, **params)  # type: ignore[arg-type]

    # ----------------------------------------------------------------- state
    def reset(self) -> None:
        # The AT estimator starts at 1 and is ramped up/corrected by the
        # coarse block-wise exponential search; see the module docstring.
        self._kappa_estimate = 1.0
        self._consecutive_failures = 0
        # Exponential-search state: value of the estimator when the current
        # silent stretch started, and how many corrections it has triggered.
        self._search_anchor = 1.0
        self._search_index = 0

    # ------------------------------------------------------------ inspection
    @property
    def density_estimate(self) -> float:
        """Current value of the density estimator ``κ̃``."""
        return self._kappa_estimate

    @property
    def failure_streak(self) -> int:
        """Number of consecutive steps without an observed delivery."""
        return self._consecutive_failures

    @property
    def search_index(self) -> int:
        """Number of coarse corrections since the last observed delivery."""
        return self._search_index

    @property
    def bt_probability(self) -> float:
        """The fixed transmission probability of the BT rule."""
        return 1.0 / (1.0 + math.log2(1.0 / self.epsilon))

    @property
    def failure_threshold(self) -> int:
        """Length of the failure streak that triggers the coarse correction.

        ``⌈(1 + log₂(1/ε)) · (1 + ξβ)⌉`` — logarithmic in ``1/ε``, hence the
        protocol's name.
        """
        return int(math.ceil((1.0 + math.log2(1.0 / self.epsilon)) * (1.0 + self.xi_beta)))

    @property
    def max_search_exponent(self) -> int:
        """Largest power of two explored by the coarse correction: ``⌈log₂(1/ε)⌉ + 1``.

        ``1/ε ≥ n + 1`` bounds the possible contention, so the estimator never
        needs to exceed ``2/ε``; this is the second place where knowledge of ε
        enters the protocol.
        """
        return int(math.ceil(math.log2(1.0 / self.epsilon))) + 1

    def is_bt_step(self, slot: int) -> bool:
        """Whether slot ``slot`` (0-based) is a BT step.

        A deterministic ``ξt`` fraction of steps are BT steps: step ``s``
        (1-based) is a BT step iff ``⌊s·ξt⌋ > ⌊(s−1)·ξt⌋``.  For ``ξt = 1/2``
        this is exactly the even steps, matching One-fail Adaptive's
        interleaving.
        """
        step = slot + 1
        return math.floor(step * self.xi_t) > math.floor((step - 1) * self.xi_t)

    # ---------------------------------------------------------- transmission
    def transmission_probability(self, slot: int) -> float:
        if self.is_bt_step(slot):
            return self.bt_probability
        return min(1.0, 1.0 / self._kappa_estimate)

    # -------------------------------------------------------------- feedback
    def notify(self, observation: Observation) -> None:
        if observation.received:
            # A delivery: the density went down by one, so the estimate
            # follows (with the ξδ slack), and the exponential search resets
            # around the corrected value.
            self._consecutive_failures = 0
            self._kappa_estimate = max(self._kappa_estimate - 1.0 - self.xi_delta, 1.0)
            self._search_anchor = self._kappa_estimate
            self._search_index = 0
            return
        if observation.delivered:
            # Own message delivered; the node stops, state no longer matters.
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            # A logarithmic stretch of steps without any communication: take
            # the next step of the alternating exponential search around the
            # estimate held when the stretch began (x2, /2, x4, /4, x8, ...).
            # The explored exponent is bounded by the known contention bound
            # 1/epsilon (the estimate never needs to exceed ~2/epsilon >= 2n);
            # when a sweep exhausts that range without finding a productive
            # estimate, the search starts a new sweep from the same anchor.
            self._consecutive_failures = 0
            self._search_index += 1
            exponent = (self._search_index + 1) // 2
            if exponent > self.max_search_exponent:
                self._search_index = 1
                exponent = 1
            magnitude = 2.0**exponent
            if self._search_index % 2 == 1:
                candidate = self._search_anchor * magnitude
            else:
                candidate = self._search_anchor / magnitude
            self._kappa_estimate = max(candidate, 1.0)

    def make_batch_state(self, reps: int) -> _LogFailsBatchState:
        return _LogFailsBatchState([self], [reps])

    @classmethod
    def make_fused_batch_state(
        cls,
        protocols: "Sequence[FairProtocol]",
        counts: "Sequence[int]",
    ) -> _LogFailsBatchState:
        return _LogFailsBatchState(protocols, counts)  # type: ignore[arg-type]
