"""The monotone windowed back-off family of Bender et al. (SPAA 2005).

Reference [2] of the paper analyses *monotone* back-off strategies for batched
arrivals on a multiple-access channel: the stations move through a fixed,
non-decreasing sequence of contention windows ``w₁, w₂, …`` and transmit in
one uniformly random slot of each window until their message gets through.
With a batch arrival all stations traverse the same windows in lockstep, so
each window is a balls-in-bins experiment — exactly the structure exploited by
:class:`~repro.engine.window_engine.WindowEngine`.

The family members implemented here, with the makespans proved in [2]:

=======================  ===========================================  ==========================================
Protocol                 Window schedule                               Makespan (batch of k, w.h.p.)
=======================  ===========================================  ==========================================
r-exponential back-off   ``w_i = r^i``                                 ``Θ(k · loglog_r k)``
r-polynomial back-off    ``w_i = i^r``                                 polynomial, superlinear in k
log back-off             ``w_{i+1} = w_i (1 + 1/lg w_i)``              ``Θ(k · lg k / lglg k)``
loglog-iterated back-off ``w_{i+1} = w_i (1 + 1/lglg w_i)``            ``Θ(k · lglg k / lglglg k)``
=======================  ===========================================  ==========================================

The paper's evaluation (Section 5) uses loglog-iterated back-off with
``r = 2`` — the best monotone strategy of [2] and the only one of the family
that appears in Figure 1 / Table 1.  The exact pseudocode of [2] is not
reproduced in the paper; the schedules above are reconstructions from the
published growth rates (see DESIGN.md), seeded at ``w₁ = r`` and rounded up to
integers.
"""

from __future__ import annotations

import abc
import math
from collections.abc import Iterator
from typing import ClassVar

from repro.core.constants import LLIB_R_DEFAULT
from repro.protocols.base import WindowBatchState, WindowedProtocol, register_protocol
from repro.util.validation import check_positive

__all__ = [
    "WindowBackoffProtocol",
    "ExponentialBackoff",
    "PolynomialBackoff",
    "LogBackoff",
    "LogLogIteratedBackoff",
]


class WindowBackoffProtocol(WindowedProtocol):
    """Base class for monotone windowed back-off protocols.

    Subclasses implement :meth:`window_sequence`, a generator of real-valued
    window sizes; this base class rounds them up to integers, enforces
    monotonicity (the defining property of the family) and caps the growth at
    ``max_window`` as a safety net for runaway schedules.
    """

    #: Safety cap on a single window length (2^40 slots ≈ 10^12).
    max_window: ClassVar[float] = float(2**40)

    @abc.abstractmethod
    def window_sequence(self) -> Iterator[float]:
        """Yield the (real-valued, non-decreasing) window sizes."""

    def make_window_batch_state(self, reps: int) -> WindowBatchState:
        """Shared monotone schedule for ``reps`` lockstep replications.

        Every member of the family is defined by a fixed window sequence —
        a pure function of the round index, never of channel feedback (that
        is what *monotone back-off* means in [2]) — so the whole batch may
        traverse one shared iterator, monotonicity checks included.
        """
        return WindowBatchState(self.spawn().window_lengths())

    def window_lengths(self) -> Iterator[int]:
        previous = 0
        for size in self.window_sequence():
            if size > self.max_window:
                raise RuntimeError(
                    f"{type(self).__name__}: window grew beyond the safety cap "
                    f"({size:.3g} > {self.max_window:.3g})"
                )
            if size < 1.0:
                raise ValueError(f"{type(self).__name__}: window length {size} < 1")
            length = int(math.ceil(size))
            if length < previous:
                raise RuntimeError(
                    f"{type(self).__name__}: monotone back-off schedule decreased "
                    f"from {previous} to {length}"
                )
            previous = length
            yield length


@register_protocol
class ExponentialBackoff(WindowBackoffProtocol):
    """r-exponential back-off: window ``r^i`` in round ``i``.

    The classical strategy (binary exponential back-off for ``r = 2``), shown
    in [2] to have makespan ``Θ(k loglog_r k)`` for a batch of ``k`` — slightly
    superlinear, which is why the paper's protocols beat it.
    """

    name: ClassVar[str] = "exponential-backoff"
    label: ClassVar[str] = "Exponential Back-off"

    def __init__(self, r: float = 2.0) -> None:
        self.r = check_positive("r", r)
        if self.r <= 1.0:
            raise ValueError(f"r must be > 1 for the window to grow, got {r}")
        self.reset()

    def window_sequence(self) -> Iterator[float]:
        size = self.r
        while True:
            yield size
            size *= self.r


@register_protocol
class PolynomialBackoff(WindowBackoffProtocol):
    """r-polynomial back-off: window ``i^r`` in round ``i`` (``r > 1``)."""

    name: ClassVar[str] = "polynomial-backoff"
    label: ClassVar[str] = "Polynomial Back-off"

    def __init__(self, r: float = 2.0) -> None:
        self.r = check_positive("r", r)
        if self.r <= 1.0:
            raise ValueError(f"r must be > 1 for the analysis of [2] to apply, got {r}")
        self.reset()

    def window_sequence(self) -> Iterator[float]:
        index = 1
        while True:
            yield float(index) ** self.r
            index += 1


class _GrowthFactorBackoff(WindowBackoffProtocol):
    """Common machinery for back-offs defined by a size-dependent growth factor."""

    def __init__(self, r: float = float(LLIB_R_DEFAULT)) -> None:
        self.r = check_positive("r", r)
        if self.r <= 1.0:
            raise ValueError(f"the seed window r must be > 1, got {r}")
        self.reset()

    @abc.abstractmethod
    def growth_denominator(self, size: float) -> float:
        """Return ``f(w)`` such that the next window is ``w · (1 + 1/f(w))``."""

    def window_sequence(self) -> Iterator[float]:
        size = self.r
        while True:
            yield size
            denominator = max(self.growth_denominator(size), 1.0)
            size *= 1.0 + 1.0 / denominator


@register_protocol
class LogBackoff(_GrowthFactorBackoff):
    """Log back-off: the window grows by the factor ``1 + 1/lg w``."""

    name: ClassVar[str] = "log-backoff"
    label: ClassVar[str] = "Log Back-off"

    def growth_denominator(self, size: float) -> float:
        return math.log2(size) if size > 2.0 else 1.0


@register_protocol
class LogLogIteratedBackoff(_GrowthFactorBackoff):
    """Loglog-iterated back-off: the window grows by the factor ``1 + 1/lglg w``.

    The best monotone strategy of [2], with makespan
    ``Θ(k · lglg k / lglglg k)`` w.h.p., and the monotone baseline the paper
    simulates (with ``r = 2``).  Because the growth rate is so close to 1 for
    the window sizes reachable in practice, its empirical steps/k ratio looks
    constant (≈ 10 in Table 1) even though it is asymptotically unbounded.
    """

    name: ClassVar[str] = "loglog-iterated-backoff"
    label: ClassVar[str] = "Loglog-Iterated Backoff"

    def growth_denominator(self, size: float) -> float:
        log_size = math.log2(size)
        if log_size <= 2.0:
            return 1.0
        return math.log2(log_size)
