"""Binary splitting (tree algorithm) — the classical collision-detection baseline.

The related-work section of the paper surveys the *tree algorithms* of
Capetanakis, Hayes and Tsybakov–Mikhailov: deterministic-in-structure,
randomized-in-choice protocols that resolve a collision by recursively
splitting the set of colliding stations in two.  They require **collision
detection** (every station must learn whether a slot was a collision), which
is exactly the capability the paper's model removes; they are included here so
the repository can quantify what that capability is worth (and because they
exercise the :class:`~repro.channel.model.FeedbackModel.COLLISION_DETECTION`
channel configuration).

Protocol (obvious-first-come variant of binary splitting for batched
arrivals):

* All active stations start *enabled*.
* In every slot, each enabled station transmits with probability 1... more
  precisely the protocol maintains a conceptual stack of station subsets; an
  enabled station is one whose subset is at the top of the stack.  On a
  collision every station in the colliding subset flips a fair coin: heads
  stay at the top (transmit next slot), tails push themselves below (wait
  until the heads subgroup is fully resolved).  On a success or a silent slot
  the top subset is popped (it is exhausted or empty) and the next subset
  becomes the top.

Each station can run this with two counters and its own coin flips, using
only the ternary feedback of the collision-detection channel; no station
identities and no knowledge of k are needed.  The expected makespan for a
batch of k stations is ≈ 2.89·k slots (the classical tree-algorithm
throughput of ≈ 0.346 for the non-gated variant), linear like the paper's
protocols but with a better constant — the advantage bought by collision
detection.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro.channel.model import Observation, SlotOutcome
from repro.protocols.base import Protocol, register_protocol

__all__ = ["BinarySplitting"]


@register_protocol
class BinarySplitting(Protocol):
    """Randomized binary splitting (tree) algorithm under collision detection.

    Each station keeps a single integer ``level``:

    * ``level == 0`` — the station is at the top of the conceptual stack and
      transmits in the current slot;
    * ``level > 0``  — the station waits for ``level`` subsets above it to be
      resolved.

    Updates per slot, driven by the ternary feedback:

    * **collision**: stations at level 0 flip a coin — heads stay at level 0,
      tails move to level 1; stations at level > 0 move one level deeper
      (a new subset was pushed above them).
    * **success or silence**: the top subset is exhausted, so every station at
      level > 0 moves one level up; (a station at level 0 that did not
      transmit cannot exist — level 0 stations always transmit).

    The protocol refuses to run on a channel without collision detection
    (its :meth:`notify` needs ``Observation.detected``).
    """

    name: ClassVar[str] = "binary-splitting"
    label: ClassVar[str] = "Binary Splitting (CD)"
    requires_knowledge: ClassVar[frozenset[str]] = frozenset({"collision-detection"})

    def __init__(self, split_probability: float = 0.5) -> None:
        if not 0.0 < split_probability < 1.0:
            raise ValueError(
                f"split_probability must lie strictly between 0 and 1, got {split_probability}"
            )
        self.split_probability = float(split_probability)
        self.reset()

    def reset(self) -> None:
        self._level = 0
        self._pending_coin: bool | None = None

    @property
    def level(self) -> int:
        """Current depth of the station in the conceptual splitting stack."""
        return self._level

    def will_transmit(self, slot: int, rng: np.random.Generator) -> bool:
        transmit = self._level == 0
        if transmit:
            # Pre-draw the coin used if this slot turns out to be a collision,
            # so the decision is attributable to this station's own stream.
            self._pending_coin = bool(rng.random() < self.split_probability)
        else:
            self._pending_coin = None
        return transmit

    def notify(self, observation: Observation) -> None:
        if observation.delivered:
            return
        if observation.detected is None:
            raise RuntimeError(
                "BinarySplitting requires a collision-detection channel "
                "(ChannelModel(feedback=FeedbackModel.COLLISION_DETECTION))"
            )
        outcome = observation.detected
        if outcome is SlotOutcome.COLLISION:
            if self._level == 0:
                stays = self._pending_coin if self._pending_coin is not None else True
                self._level = 0 if stays else 1
            else:
                self._level += 1
        else:
            # SUCCESS or SILENCE: the subset at the top of the stack is done.
            if self._level > 0:
                self._level -= 1
        self._pending_coin = None
