"""Protocol interfaces and registry.

A *protocol* is the algorithm run by every station holding a message.  The
interface is deliberately narrow and mirrors the information available in the
paper's model:

* at every slot the protocol decides whether to transmit
  (:meth:`Protocol.will_transmit`), and
* at the end of every slot it is handed exactly the feedback the channel model
  grants it (:meth:`Protocol.notify`): its own transmission flag, whether it
  received a message from another station, and whether its own message was
  acknowledged.

Two refinements of the interface capture the structure the simulation engines
exploit:

* :class:`FairProtocol` — every active station uses the same transmission
  probability in every slot (the paper calls these *fair* protocols, after
  Willard).  One-fail Adaptive, Log-fails Adaptive and slotted ALOHA are fair.
  The :class:`~repro.engine.fair_engine.FairEngine` simulates them with one
  Bernoulli draw per slot instead of one per station.
* :class:`WindowedProtocol` — stations commit to one uniformly random slot in
  each contention window, and the window lengths follow a schedule that is a
  pure function of the window index.  Exp Back-on/Back-off and the monotone
  back-off family are windowed.  The
  :class:`~repro.engine.window_engine.WindowEngine` simulates a whole window
  as one balls-in-bins experiment.
"""

from __future__ import annotations

import abc
import copy
from collections.abc import Callable, Iterator, Sequence
from typing import ClassVar

import numpy as np

from repro.channel.model import Observation

__all__ = [
    "Protocol",
    "FairProtocol",
    "FairBatchState",
    "WindowedProtocol",
    "WindowBatchState",
    "ProtocolFactory",
    "register_protocol",
    "get_protocol_class",
    "available_protocols",
    "build_protocol",
]

#: A protocol factory maps the number of contenders ``k`` to a fresh protocol
#: instance.  Protocols that genuinely do not use ``k`` (the paper's own two
#: protocols) simply ignore the argument; baselines that require knowledge of
#: ``k`` or of ``epsilon <= 1/(n+1)`` (Log-fails Adaptive, slotted ALOHA) use
#: it, and declare so through :attr:`Protocol.requires_knowledge`.
ProtocolFactory = Callable[[int], "Protocol"]

_REGISTRY: dict[str, type["Protocol"]] = {}


def register_protocol(cls: type["Protocol"]) -> type["Protocol"]:
    """Class decorator adding a protocol class to the global registry.

    The registry lets experiment configurations refer to protocols by their
    ``name`` class attribute (e.g. ``"one-fail-adaptive"``) instead of
    importing classes directly.
    """
    name = cls.name
    if not name or name == Protocol.name:
        raise ValueError(f"{cls.__name__} must define a unique 'name' class attribute")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"protocol name {name!r} already registered by {existing.__name__}")
    _REGISTRY[name] = cls
    return cls


def get_protocol_class(name: str) -> type["Protocol"]:
    """Look up a registered protocol class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown protocol {name!r}; registered protocols: {known}") from None


def available_protocols() -> list[str]:
    """Return the sorted names of all registered protocols."""
    return sorted(_REGISTRY)


def build_protocol(spec: str, k: int) -> "Protocol":
    """Instantiate a protocol from a parameterised spec string.

    ``spec`` is a registry name with optional constructor parameters, e.g.
    ``"one-fail-adaptive"`` or ``"log-fails-adaptive(xi_t=0.1)"`` (see
    :mod:`repro.scenarios.spec` for the grammar).  ``k`` is the network size
    the protocol will face; it is forwarded to the class's
    :meth:`Protocol.from_spec` hook so that protocols *requiring* knowledge of
    the contention (Log-fails Adaptive's ``ε ≤ 1/(k+1)``, slotted ALOHA's
    ``k``) can derive their required parameters, while the paper's own
    oblivious protocols ignore it.
    """
    from repro.scenarios.spec import parse_spec

    name, params = parse_spec(spec)
    cls = get_protocol_class(name)
    try:
        return cls.from_spec(k, **params)
    except TypeError as error:
        raise ValueError(f"cannot build protocol from spec {spec!r}: {error}") from error


class Protocol(abc.ABC):
    """Per-station contention-resolution algorithm.

    Subclasses must be safe to ``deepcopy``: the node-level engine creates one
    instance per station by copying a prototype and calling :meth:`reset`.
    """

    #: Registry name; subclasses must override.
    name: ClassVar[str] = "protocol"

    #: Human-readable label used in figures and tables.
    label: ClassVar[str] = "Protocol"

    #: Capability kind consumed by the engine registry
    #: (:mod:`repro.engine.registry`): engines declare which kinds they can
    #: serve, so dispatch never has to sniff protocol classes.  The two
    #: structural refinements below override this — ``"fair"`` for
    #: :class:`FairProtocol`, ``"windowed"`` for :class:`WindowedProtocol` —
    #: and everything else is ``"generic"`` (served only by the node-level
    #: engine).
    protocol_kind: ClassVar[str] = "generic"

    #: External knowledge the protocol needs (subset of {"k", "n", "epsilon"}).
    #: The paper's own protocols use the empty set — that is the point of the
    #: paper's title ("unbounded" contention resolution).
    requires_knowledge: ClassVar[frozenset[str]] = frozenset()

    @abc.abstractmethod
    def reset(self) -> None:
        """Return the protocol to its state at message-arrival time."""

    @abc.abstractmethod
    def will_transmit(self, slot: int, rng: np.random.Generator) -> bool:
        """Decide whether to transmit in global slot ``slot`` (0-based)."""

    @abc.abstractmethod
    def notify(self, observation: Observation) -> None:
        """Consume the end-of-slot feedback visible to this station."""

    @classmethod
    def from_spec(cls, k: int, **params: object) -> "Protocol":
        """Instantiate from spec-string parameters for a network of size ``k``.

        The default simply forwards the parameters to the constructor;
        protocols whose evaluation parameterisation depends on the network
        size (see :attr:`requires_knowledge`) override this to derive the
        missing parameters from ``k``.
        """
        return cls(**params)  # type: ignore[call-arg]

    def spawn(self) -> "Protocol":
        """Return an independent copy of this protocol, reset to its initial state.

        Engines use this to create one protocol instance per station from a
        single prototype carrying the configured parameters.
        """
        clone = copy.deepcopy(self)
        clone.reset()
        return clone

    def describe(self) -> dict[str, object]:
        """Return a JSON-friendly description of the protocol and its parameters.

        The default implementation reports the public (non-underscore)
        instance attributes, which by convention hold the configuration
        parameters; mutable per-run state is kept in underscore-prefixed
        attributes and therefore excluded.
        """
        params = {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and isinstance(value, (int, float, str, bool))
        }
        return {"name": self.name, "label": self.label, "parameters": params}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        described = self.describe()
        params = ", ".join(f"{key}={value!r}" for key, value in described["parameters"].items())
        return f"{type(self).__name__}({params})"


class FairBatchState(abc.ABC):
    """Vectorised shared state of many lockstep replications of a fair protocol.

    The batch engine (:class:`~repro.engine.batch_engine.BatchFairEngine`)
    simulates all R replications of a (protocol, k) cell at once; for that it
    needs the protocol's shared state as R-sized numpy arrays instead of one
    Python object per replication.  Implementations must mirror the scalar
    protocol *exactly*: the batch engine is validated distributionally against
    the per-run fair engine, and any semantic drift here shows up there.

    All methods operate on the *live* replications only — the engine compacts
    the batch as replications finish, and calls :meth:`compact` so the state
    arrays shrink in step.
    """

    @abc.abstractmethod
    def probabilities(self, slot: int) -> np.ndarray:
        """Per-replication transmission probability in (common) ``slot``.

        The returned array is owned by the state and may be a cached buffer
        reused across slots — callers must treat it as read-only.

        Protocols declaring
        :attr:`FairProtocol.probability_constant_between_receptions` must
        ignore ``slot`` (the silence-skipping path advances replications to
        different slot indices, so no common slot exists; the engine then
        passes ``-1``).
        """

    def probabilities_cached(self, slot: int) -> tuple[np.ndarray, object]:
        """Like :meth:`probabilities`, plus a cache key for derived values.

        The key is a *stable flavor identity*: two slots returning equal keys
        draw from the same rule of the protocol's schedule (e.g. the AT or BT
        arm of an alternating schedule), and their probability arrays differ
        at most at the rows reported changed by the intervening
        :meth:`observe_receptions` calls.  Engines that derive per-slot
        arrays from the probabilities (outcome probabilities, classification
        thresholds) may therefore cache one derivation per key and patch just
        the reported rows.  ``None`` means "no stable identity, always
        recompute" and is the default, so plain states keep working
        unchanged.
        """
        return self.probabilities(slot), None

    @abc.abstractmethod
    def observe_receptions(
        self,
        slot: int,
        received: np.ndarray,
        received_any: bool | None = None,
        received_rows: np.ndarray | None = None,
    ) -> np.ndarray | None:
        """Apply the end-of-slot feedback: ``received`` is a boolean mask.

        Mirrors :meth:`Protocol.notify` with ``transmitted=False`` and
        ``delivered=False`` — exactly the observation the per-run fair engine
        feeds its shared state, slot by slot.  ``received_any`` is an optional
        caller-supplied value of ``received.any()``, and ``received_rows`` an
        optional value of ``np.flatnonzero(received)`` — engines that already
        computed them pass them along so the state need not reduce the mask a
        second time; ``None`` means "unknown, compute it yourself".

        Returns the rows whose *cached-flavor* probability content changed
        (an empty array when none did), or ``None`` for "unknown — treat
        every row and flavor as changed".  Engines holding per-key
        derivations (see :meth:`probabilities_cached`) patch the returned
        rows and drop everything on ``None``; states that do not track
        changes simply return ``None``.
        """

    @abc.abstractmethod
    def compact(self, keep: np.ndarray) -> None:
        """Drop the replications where boolean mask ``keep`` is False."""


class FairProtocol(Protocol):
    """Protocol in which every active station uses the same probability per slot.

    The defining property (and the contract the fair engine relies on) is that
    the per-slot transmission probability and all state updates are functions
    of the *common* feedback history only — the slot index, the sequence of
    received messages and the slot parities — never of whether this particular
    station transmitted.  All of the paper's adaptive protocols satisfy this:
    in Algorithm 1, for example, the state (``kappa_tilde``, ``sigma``) is
    updated only on receptions, which every active station observes
    identically.
    """

    protocol_kind: ClassVar[str] = "fair"

    #: Fair-engine contract flag; subclasses that (incorrectly for this class)
    #: update state based on their own transmissions must set this to True so
    #: the fair engine refuses them.
    state_depends_on_own_transmission: ClassVar[bool] = False

    #: Batch-engine contract flag: True when the transmission probability is
    #: independent of the slot index and the shared state changes *only* upon
    #: receiving a message.  Between two receptions every slot is then i.i.d.,
    #: so the batch engine samples the length of each silent stretch from a
    #: geometric distribution instead of looping slot by slot.  Slotted ALOHA
    #: qualifies (``p = 1/remaining`` changes only on deliveries); the paper's
    #: adaptive protocols do not — One-fail Adaptive revises its density
    #: estimator after every single AT step (the very feature the paper names
    #: it after) and alternates AT/BT rules by slot parity, and Log-fails
    #: Adaptive corrects its estimator after every logarithmic failure streak.
    probability_constant_between_receptions: ClassVar[bool] = False

    @abc.abstractmethod
    def transmission_probability(self, slot: int) -> float:
        """Probability with which each active station transmits in ``slot``."""

    def make_batch_state(self, reps: int) -> FairBatchState | None:
        """Return vectorised state for ``reps`` lockstep replications.

        ``None`` (the default) opts the protocol out of the batch engine;
        sweeps then fall back to one per-run simulation per seed.  Overriding
        implementations must return a state whose evolution matches
        :meth:`transmission_probability` / :meth:`notify` exactly, starting
        from the *initial* (post-:meth:`reset`) state of this instance.
        """
        return None

    @classmethod
    def make_fused_batch_state(
        cls,
        protocols: Sequence["FairProtocol"],
        counts: Sequence[int],
    ) -> FairBatchState | None:
        """Return vectorised state for several *fused* cells of this class.

        The mega engine (:class:`~repro.engine.megabatch.MegaFairEngine`)
        stacks every eligible cell of a sweep along the batch axis;
        ``protocols[i]`` (an instance of ``cls``, possibly with different
        constructor parameters) contributes ``counts[i]`` consecutive rows.
        The returned state must therefore carry the protocol parameters as
        *per-row* arrays, so that one kernel pass serves rows with different
        parameterisations.  Rows belonging to one protocol instance must
        evolve exactly as :meth:`make_batch_state` would evolve them.

        ``None`` (the default) opts the protocol class out of cross-cell
        fusion; its cells then run one per-cell batch kernel each.
        """
        return None

    def will_transmit(self, slot: int, rng: np.random.Generator) -> bool:
        probability = self.transmission_probability(slot)
        if probability >= 1.0:
            return True
        if probability <= 0.0:
            return False
        return bool(rng.random() < probability)


class WindowBatchState:
    """Window schedule shared by many lockstep replications of a windowed protocol.

    The windowed batch engine
    (:class:`~repro.engine.batch_window_engine.BatchWindowEngine`) simulates
    all R replications of a (protocol, k) cell window by window; every
    replication traverses the *same* deterministic window schedule, so —
    unlike :class:`FairBatchState`, whose per-replication estimators evolve
    with each replication's own feedback — the whole batch's state is one
    shared schedule iterator.  A windowed protocol whose schedule *reacted*
    to channel feedback would need genuinely per-replication state and must
    not return one of these; that is why
    :meth:`WindowedProtocol.make_window_batch_state` defaults to ``None``
    and every schedule-oblivious protocol opts in explicitly.
    """

    def __init__(self, lengths: Iterator[int]) -> None:
        #: The successive window lengths, in slots (strictly positive ints).
        self.lengths = lengths


class WindowedProtocol(Protocol):
    """Protocol that transmits once per contention window.

    Subclasses provide :meth:`window_lengths`, an iterator of strictly
    positive integer window lengths.  The per-station behaviour implemented
    here is the one used throughout the windowed back-off literature (and by
    Algorithm 2 of the paper): at the first slot of each window the station
    picks one slot of the window uniformly at random and transmits only in
    that slot.  Stations whose message has been delivered are idle and no
    longer consulted by the engines, so no explicit exit is needed here.

    With batched arrivals every active station starts the schedule at slot 0,
    hence all stations share window boundaries; this is what allows the
    vectorised window engine to treat each window as a balls-in-bins
    experiment.
    """

    protocol_kind: ClassVar[str] = "windowed"

    @abc.abstractmethod
    def window_lengths(self) -> Iterator[int]:
        """Yield the successive contention-window lengths (in slots)."""

    def make_window_batch_state(self, reps: int) -> WindowBatchState | None:
        """Return the shared schedule state for ``reps`` lockstep replications.

        ``None`` (the default) opts the protocol out of the windowed batch
        engine; sweeps then fall back to one per-run
        :class:`~repro.engine.window_engine.WindowEngine` simulation per
        seed.  Overriding implementations declare that the window schedule is
        *oblivious*: a pure function of the window index, never of channel
        feedback — exactly the contract under which simulating replications
        in lockstep against one shared schedule is sound.  All of the
        repository's windowed protocols (Algorithm 2 and the monotone
        back-off family) qualify and opt in.
        """
        return None

    def fused_schedule_key(self) -> tuple | None:
        """Hashable identity of the window schedule, for cross-cell fusion.

        Cells whose protocols report equal keys traverse *identical* window
        schedules and may be simulated in lockstep by the mega window engine
        (:class:`~repro.engine.megabatch.MegaWindowEngine`), which iterates
        one shared schedule for the whole fused group.  The default derives
        the key from the protocol's registry name and its declared public
        parameters (:meth:`Protocol.describe`), which is exact for every
        schedule that is a pure function of those parameters; protocols
        whose schedule depends on state not visible in ``describe()`` must
        override this.  ``None`` (returned when the protocol has no window
        batch kernel) opts the cell out of fusion.
        """
        if self.make_window_batch_state(1) is None:
            return None
        parameters = self.describe()["parameters"]
        return (self.name, tuple(sorted(parameters.items())))  # type: ignore[union-attr]

    def reset(self) -> None:
        self._schedule: Iterator[int] | None = None
        self._window_end = 0
        self._chosen_slot = -1

    def will_transmit(self, slot: int, rng: np.random.Generator) -> bool:
        if self._schedule is None:
            self._schedule = self.window_lengths()
        while slot >= self._window_end:
            try:
                length = next(self._schedule)
            except StopIteration as error:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"{type(self).__name__}: window schedule exhausted at slot {slot}"
                ) from error
            if length < 1:
                raise ValueError(
                    f"{type(self).__name__}: window lengths must be >= 1, got {length}"
                )
            window_start = self._window_end
            self._window_end = window_start + int(length)
            self._chosen_slot = window_start + int(rng.integers(0, int(length)))
        return slot == self._chosen_slot

    def notify(self, observation: Observation) -> None:
        """Windowed protocols keep no feedback-dependent state by default."""
