"""Slotted ALOHA with known contention: the ``e·k`` reference optimum.

Section 5 of the paper calibrates its Table 1 ratios against "the smallest
ratio expected by any algorithm in which nodes use the same probability at any
step", which is ``e``.  That optimum is achieved by the idealised protocol
that knows the number of active stations ``m`` exactly and has every one of
them transmit with probability ``1/m`` in every slot: the per-slot success
probability is then ``(1 − 1/m)^{m-1} → 1/e``.

The protocol is obviously not a contender in the paper's setting (it requires
exactly the knowledge the paper removes); it is included as the yardstick the
evaluation refers to, and it is also a useful sanity check for the fair
engine (its makespan distribution is easy to reason about analytically).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import ClassVar

import numpy as np

from repro.channel.model import Observation
from repro.protocols.base import FairBatchState, FairProtocol, register_protocol
from repro.util.validation import check_positive_int

__all__ = ["SlottedAloha"]

#: Shared "no probability rows changed" return of observe_receptions.
_NO_ROWS = np.empty(0, dtype=np.int64)


class _SlottedAlohaBatchState(FairBatchState):
    """Vectorised ``(remaining estimate)`` state of R ALOHA replications.

    ``k`` and the delivery-tracking flag are carried per row, so one state
    can serve rows fused from several cells with different network sizes.
    """

    def __init__(self, ks: np.ndarray, track_deliveries: np.ndarray) -> None:
        self._track = np.asarray(track_deliveries, dtype=bool)
        self.track_deliveries = bool(self._track.all())
        self._remaining = np.asarray(ks, dtype=np.int64).copy()

    def probabilities(self, slot: int) -> np.ndarray:
        return 1.0 / np.maximum(self._remaining, 1)

    def observe_receptions(
        self,
        slot: int,
        received: np.ndarray,
        received_any: bool | None = None,
        received_rows: np.ndarray | None = None,
    ) -> np.ndarray | None:
        if received_any is False:
            return _NO_ROWS
        decrement = received & self._track
        if decrement.any():
            self._remaining = np.maximum(self._remaining - decrement, 1)
            return None
        return _NO_ROWS

    def compact(self, keep: np.ndarray) -> None:
        self._track = self._track[keep]
        self._remaining = self._remaining[keep]
        self.track_deliveries = bool(self._track.all())


@register_protocol
class SlottedAloha(FairProtocol):
    """Idealised slotted ALOHA with perfect knowledge of the contention.

    Parameters
    ----------
    k:
        Number of stations activated together (the protocol's required
        knowledge; declared through :attr:`requires_knowledge`).
    track_deliveries:
        When true (default) the protocol decrements its contention estimate on
        every observed delivery, keeping the transmission probability at
        ``1/(messages left)`` throughout the run — the genie-aided optimum.
        When false it keeps transmitting with ``1/k`` forever, which models
        plain slotted ALOHA with a static probability.
    """

    name: ClassVar[str] = "slotted-aloha"
    label: ClassVar[str] = "Slotted ALOHA (known k)"
    requires_knowledge: ClassVar[frozenset[str]] = frozenset({"k"})
    #: ``p = 1/(messages left)`` depends on nothing but the reception count,
    #: so the batch engine may skip silent stretches geometrically.
    probability_constant_between_receptions: ClassVar[bool] = True

    def __init__(self, k: int, track_deliveries: bool = True) -> None:
        self.k = check_positive_int("k", k)
        self.track_deliveries = bool(track_deliveries)
        self.reset()

    @classmethod
    def from_spec(cls, k: int, **params: object) -> "SlottedAloha":
        """Spec-string hook: the required knowledge ``k`` is the network size."""
        params.setdefault("k", k)
        return cls(**params)  # type: ignore[arg-type]

    def reset(self) -> None:
        self._remaining = self.k

    @property
    def remaining_estimate(self) -> int:
        """The protocol's current count of undelivered messages."""
        return self._remaining

    def transmission_probability(self, slot: int) -> float:
        return 1.0 / max(self._remaining, 1)

    def notify(self, observation: Observation) -> None:
        if self.track_deliveries and observation.received:
            self._remaining = max(self._remaining - 1, 1)

    def make_batch_state(self, reps: int) -> _SlottedAlohaBatchState:
        return _SlottedAlohaBatchState(
            np.full(reps, self.k), np.full(reps, self.track_deliveries)
        )

    @classmethod
    def make_fused_batch_state(
        cls,
        protocols: "Sequence[FairProtocol]",
        counts: "Sequence[int]",
    ) -> _SlottedAlohaBatchState:
        ks = np.repeat([protocol.k for protocol in protocols], counts)
        track = np.repeat([protocol.track_deliveries for protocol in protocols], counts)
        return _SlottedAlohaBatchState(ks, track)
