"""The job-queue layer: FIFO workers draining scenarios through one Session.

A :class:`JobManager` owns a strict-FIFO queue of :class:`Job`\\ s and a pool
of daemon worker threads that drain it through **one shared**
:class:`~repro.scenarios.session.Session` (whose store access is
thread-safe, see :mod:`repro.scenarios.session`).  Submissions take one of
three paths:

* **cached** — every replication is already on record in the session's
  store, so the scenario is executed synchronously on the submitting thread
  (zero new simulations, the session serves the store) and the job is born
  ``done`` with ``cached=True``; it never touches the queue;
* **deduplicated** — an identical scenario (same
  :meth:`~repro.scenarios.scenario.Scenario.content_hash`, replication count
  covered) is already queued or running, so the submission attaches to that
  in-flight job instead of enqueueing a duplicate — N clients asking for the
  same cell cost one execution;
* **queued** — anything else joins the tail of the FIFO queue and is
  reported ``queued`` until a worker picks it up.

Progress flows from the session's :data:`~repro.scenarios.session.SessionProgress`
callback (invoked in worker callback context) into ``Job.done``, so
``GET /jobs/<id>`` can report per-replication progress while the cell runs.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.scenarios.scenario import Scenario
from repro.scenarios.session import ResultSet, Session
from repro.service.wire import JOB_DONE, JOB_FAILED, JOB_QUEUED, JOB_RUNNING

__all__ = ["Job", "JobManager"]


@dataclass
class Job:
    """One submitted scenario and its lifecycle state.

    Mutable fields are only written under the owning manager's lock (or by
    the single worker executing the job); readers take :meth:`snapshot` for
    a consistent wire-ready view.
    """

    id: str
    scenario: Scenario
    content_hash: str
    state: str = JOB_QUEUED
    done: int = 0
    cached: bool = False
    error: str | None = None
    result_set: ResultSet | None = None
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    finished: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def total(self) -> int:
        return self.scenario.replications

    def snapshot(self) -> dict[str, object]:
        """Wire-ready view of the job (the ``GET /jobs/<id>`` payload)."""
        return {
            "id": self.id,
            "hash": self.content_hash,
            "scenario": self.scenario.format(),
            "state": self.state,
            "done": self.done,
            "total": self.total,
            "cached": self.cached,
            "error": self.error,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class JobManager:
    """FIFO worker pool executing scenarios through one shared session.

    Parameters
    ----------
    session:
        The (thread-safe) session all jobs run through; give it a
        ``store_dir`` to get the cached fast path and cross-restart reuse.
    workers:
        Number of concurrently executing jobs.  ``1`` (the default) keeps
        strict FIFO *completion* order; higher values still *start* jobs in
        FIFO order.
    start:
        ``False`` creates the manager without worker threads — jobs then
        only run via :meth:`process_next` (the unit tests drive the queue
        this way to observe intermediate states deterministically).
    max_finished:
        Finished jobs retained for ``GET /jobs/<id>`` lookups.  An always-on
        server creates one :class:`Job` per submission (cached hits
        included), so the oldest finished jobs — and their result sets — are
        evicted beyond this bound; their results remain available through
        the store via ``GET /results/<hash>``.
    """

    def __init__(
        self,
        session: Session,
        workers: int = 1,
        start: bool = True,
        max_finished: int = 1024,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_finished < 1:
            raise ValueError(f"max_finished must be positive, got {max_finished}")
        self.session = session
        self.max_finished = max_finished
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._queue: deque[Job] = deque()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}  # content hash -> queued/running job
        self._finished_order: deque[str] = deque()  # job ids, oldest first
        self._next_id = 1
        self._shutdown = False
        self._threads: list[threading.Thread] = []
        if start:
            for index in range(workers):
                thread = threading.Thread(
                    target=self._worker_loop, name=f"repro-job-worker-{index}", daemon=True
                )
                thread.start()
                self._threads.append(thread)

    # ---------------------------------------------------------------- submit
    def submit(self, scenario: Scenario) -> tuple[Job, str]:
        """Submit a scenario; returns ``(job, disposition)``.

        ``disposition`` is ``"cached"``, ``"deduplicated"`` or ``"queued"``
        (see module docstring for the three paths).
        """
        content_hash = scenario.content_hash()
        with self._lock:
            existing = self._dedup_target(content_hash, scenario)
            if existing is not None:
                return existing, "deduplicated"
        # The cache probe reads the store, so it runs outside the lock; on a
        # hit it *is* the answer (one JSONL read, zero simulations).
        cached_result = self.session.run_cached(scenario)
        if cached_result is not None:
            job = self._register(scenario, content_hash, inflight=False)
            job.started_at = job.finished_at = time.time()
            job.result_set = cached_result
            job.done = job.total
            job.cached = True
            job.state = JOB_DONE
            self._mark_finished(job)
            return job, "cached"
        with self._lock:
            existing = self._dedup_target(content_hash, scenario)
            if existing is not None:
                return existing, "deduplicated"
            job = self._register(scenario, content_hash, inflight=True)
            self._queue.append(job)
            self._work_available.notify()
        return job, "queued"

    def _dedup_target(self, content_hash: str, scenario: Scenario) -> Job | None:
        """The in-flight job a duplicate submission attaches to, if any.

        The hash excludes the replication count, so an in-flight job only
        absorbs submissions it covers (asking for *more* replications than
        the running job would under-deliver → new job; the store then serves
        the overlap when it runs).
        """
        job = self._inflight.get(content_hash)
        if job is None or job.state not in (JOB_QUEUED, JOB_RUNNING):
            return None
        if job.scenario.replications < scenario.replications:
            return None
        return job

    def _register(self, scenario: Scenario, content_hash: str, inflight: bool) -> Job:
        if not inflight:
            self._lock.acquire()
        try:
            job = Job(
                id=f"job-{self._next_id}",
                scenario=scenario,
                content_hash=content_hash,
            )
            self._next_id += 1
            self._jobs[job.id] = job
            if inflight:
                self._inflight[content_hash] = job
            return job
        finally:
            if not inflight:
                self._lock.release()

    # --------------------------------------------------------------- queries
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """All known jobs, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.created_at)

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job finishes (or the timeout elapses); returns it."""
        job = self.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        job.finished.wait(timeout)
        return job

    def result_for_hash(self, content_hash: str) -> ResultSet | None:
        """The result set of the most recent completed job for this hash."""
        with self._lock:
            candidates = [
                job
                for job in self._jobs.values()
                if job.content_hash == content_hash and job.state == JOB_DONE
            ]
        if not candidates:
            return None
        return max(candidates, key=lambda job: job.finished_at or 0.0).result_set

    def counts(self) -> dict[str, int]:
        """Jobs per lifecycle state (the ``/healthz`` payload)."""
        with self._lock:
            states = [job.state for job in self._jobs.values()]
        return {
            JOB_QUEUED: states.count(JOB_QUEUED),
            JOB_RUNNING: states.count(JOB_RUNNING),
            JOB_DONE: states.count(JOB_DONE),
            JOB_FAILED: states.count(JOB_FAILED),
        }

    # ------------------------------------------------------------- execution
    def process_next(self) -> Job | None:
        """Run the head-of-queue job on the calling thread (test hook)."""
        with self._lock:
            if not self._queue:
                return None
            job = self._queue.popleft()
        self._run_job(job)
        return job

    def _worker_loop(self) -> None:
        while True:
            with self._work_available:
                while not self._queue and not self._shutdown:
                    self._work_available.wait()
                if self._shutdown and not self._queue:
                    return
                job = self._queue.popleft()
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        job.state = JOB_RUNNING
        job.started_at = time.time()

        def progress(_index: int, _scenario: Scenario, done: int, _total: int) -> None:
            job.done = done

        try:
            job.result_set = self.session.run(job.scenario, progress=progress)
        except Exception as error:  # a failed job must not kill its worker
            job.state = JOB_FAILED
            job.error = f"{type(error).__name__}: {error}"
        else:
            job.state = JOB_DONE
            job.done = job.total
        finally:
            job.finished_at = time.time()
            with self._lock:
                if self._inflight.get(job.content_hash) is job:
                    del self._inflight[job.content_hash]
            self._mark_finished(job)

    def _mark_finished(self, job: Job) -> None:
        """Record a finished job and evict the oldest beyond ``max_finished``."""
        with self._lock:
            self._finished_order.append(job.id)
            while len(self._finished_order) > self.max_finished:
                evicted = self._finished_order.popleft()
                self._jobs.pop(evicted, None)
        job.finished.set()

    # -------------------------------------------------------------- shutdown
    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers after the queue drains; idempotent."""
        with self._work_available:
            self._shutdown = True
            self._work_available.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=30.0)
