"""The job-queue layer: FIFO workers draining scenarios through one Session.

A :class:`JobManager` owns a strict-FIFO queue of :class:`Job`\\ s and a pool
of daemon worker threads that drain it through **one shared**
:class:`~repro.scenarios.session.Session` (whose store access is
thread-safe, see :mod:`repro.scenarios.session`).  Submissions take one of
three paths:

* **cached** — every replication is already on record in the session's
  store, so the scenario is executed synchronously on the submitting thread
  (zero new simulations, the session serves the store) and the job is born
  ``done`` with ``cached=True``; it never touches the queue;
* **deduplicated** — an identical scenario (same
  :meth:`~repro.scenarios.scenario.Scenario.content_hash`, replication count
  covered) is already queued or running, so the submission attaches to that
  in-flight job instead of enqueueing a duplicate — N clients asking for the
  same cell cost one execution;
* **queued** — anything else is journaled (when a
  :class:`~repro.service.reliability.JobJournal` is configured, the entry is
  durable *before* the submission is acknowledged), then joins the tail of
  the FIFO queue.

Progress flows from the session's :data:`~repro.scenarios.session.SessionProgress`
callback (invoked in worker callback context) into ``Job.done``, so
``GET /jobs/<id>`` can report per-replication progress while the cell runs.

Fault tolerance (see :mod:`repro.service.reliability`)
------------------------------------------------------
* **Retries** — job execution runs under a :class:`RetryPolicy`: transient
  errors (injected faults, store/connection hiccups) are retried with
  exponential backoff; because completed replications persist as they finish,
  a retry re-simulates only the *missing* ones (partial-cell resume).
* **Deadlines & cancellation** — each job may carry a ``deadline`` given as
  *seconds from submission*; internally it is tracked on the monotonic clock
  (immune to NTP/DST wall-clock jumps) while the wire and the journal carry
  the wall-clock ETA.  :meth:`cancel` aborts a queued job immediately and
  requests cooperative cancellation of a running one.  Both abort paths are
  checked between replications from the progress callback.
* **Bounded queue & drain** — ``max_queue`` caps accepted-but-unstarted
  work; beyond it :meth:`submit` raises
  :class:`~repro.service.reliability.Overloaded` (the server maps this to
  503 + ``Retry-After``).  :meth:`drain` stops intake, lets running jobs
  finish, and leaves the queued rest journaled for the next boot.
* **Journal replay** — :meth:`replay_journal` re-submits every journal entry
  with no terminal mark through the normal submission path, so a restart
  after a crash loses zero submissions and — via content-hash dedup and the
  store-cached fast path — re-simulates zero completed replications.
"""

from __future__ import annotations

import logging
import random
import threading
import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.obs import REGISTRY, current_trace_id, new_trace_id, span, trace_context
from repro.scenarios.scenario import Scenario
from repro.scenarios.session import ResultSet, Session
from repro.service.reliability import (
    DeadlineExceeded,
    FaultInjector,
    JobCancelled,
    JobJournal,
    Overloaded,
    RetryPolicy,
)
from repro.service.wire import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    TERMINAL_STATES,
)

__all__ = ["Job", "JobManager"]

log = logging.getLogger("repro.service")

#: Lifetime-counter keys, all present from the first ``/healthz`` response.
_TOTAL_KEYS = (
    "submitted",
    "done",
    "failed",
    "cancelled",
    "rejected",
    "retried",
    "replayed",
)

# Metric families for the job layer (see README § Observability).  Created
# once at import; label-set children materialise on first use.
_M_SUBMITTED = REGISTRY.counter(
    "repro_jobs_submitted_total",
    "Accepted job submissions by disposition (cached/deduplicated/queued).",
    ("disposition",),
)
_M_FINISHED = REGISTRY.counter(
    "repro_jobs_finished_total",
    "Jobs reaching a terminal state, by state.",
    ("state",),
)
_M_REJECTED = REGISTRY.counter(
    "repro_jobs_rejected_total",
    "Submissions rejected with Overloaded (queue full or draining).",
)
_M_RETRIED = REGISTRY.counter(
    "repro_jobs_retries_total", "Job attempts retried after a transient failure."
)
_M_DEADLINE = REGISTRY.counter(
    "repro_jobs_deadline_exceeded_total", "Jobs cancelled by their deadline."
)
_M_REPLAYED = REGISTRY.counter(
    "repro_jobs_replayed_total", "Journal entries replayed at boot."
)
_M_QUEUE_WAIT = REGISTRY.histogram(
    "repro_job_queue_wait_seconds",
    "Time a job spent queued before its first attempt started.",
)
_M_RUN = REGISTRY.histogram(
    "repro_job_run_seconds", "Job execution wall time across all attempts."
)
_M_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_job_queue_depth", "Jobs accepted but not yet started."
)


@dataclass
class Job:
    """One submitted scenario and its lifecycle state.

    Mutable fields are only written under the owning manager's lock (or by
    the single worker executing the job); readers take :meth:`snapshot` for
    a consistent wire-ready view.
    """

    id: str
    scenario: Scenario
    content_hash: str
    state: str = JOB_QUEUED
    done: int = 0
    cached: bool = False
    error: str | None = None
    result_set: ResultSet | None = None
    deadline: float | None = None  #: absolute monotonic limit (time.monotonic())
    deadline_at: float | None = None  #: wall-clock ETA of the deadline (wire/journal)
    attempts: int = 0
    trace_id: str | None = None  #: adopted by the worker thread for span continuity
    queued_at: float | None = None  #: monotonic enqueue time (queue-wait histogram)
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    finished: threading.Event = field(default_factory=threading.Event, repr=False)
    cancel_requested: threading.Event = field(
        default_factory=threading.Event, repr=False
    )

    @property
    def total(self) -> int:
        return self.scenario.replications

    def snapshot(self) -> dict[str, object]:
        """Wire-ready view of the job (the ``GET /jobs/<id>`` payload)."""
        return {
            "id": self.id,
            "hash": self.content_hash,
            "scenario": self.scenario.format(),
            "state": self.state,
            "done": self.done,
            "total": self.total,
            "cached": self.cached,
            "error": self.error,
            "attempts": self.attempts,
            "deadline": self.deadline_at,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class JobManager:
    """FIFO worker pool executing scenarios through one shared session.

    Parameters
    ----------
    session:
        The (thread-safe) session all jobs run through; give it a
        ``store_dir`` to get the cached fast path and cross-restart reuse.
    workers:
        Number of concurrently executing jobs.  ``1`` (the default) keeps
        strict FIFO *completion* order; higher values still *start* jobs in
        FIFO order.
    start:
        ``False`` creates the manager without worker threads — jobs then
        only run via :meth:`process_next` (the unit tests drive the queue
        this way to observe intermediate states deterministically).
    max_finished:
        Finished jobs retained for ``GET /jobs/<id>`` lookups.  An always-on
        server creates one :class:`Job` per submission (cached hits
        included), so the oldest finished jobs — and their result sets — are
        evicted beyond this bound; their results remain available through
        the store via ``GET /results/<hash>``.  Eviction never touches the
        lifetime counters (:meth:`lifetime_counts`).
    max_queue:
        Bound on *queued* (accepted, unstarted) jobs; ``None`` is unbounded.
        A full queue rejects with :class:`Overloaded` instead of accepting
        work the process may never live to run.
    journal:
        Crash-safe :class:`JobJournal` of accepted submissions, or ``None``.
    retry_policy:
        :class:`RetryPolicy` for job execution; ``None`` disables retries.
        The default retries transient errors up to 3 attempts.
    fault_injector:
        Optional chaos hook: after a job's successful execution (results
        persisted) and *before* its journal mark, ``worker-crash`` rolls may
        raise :class:`~repro.service.reliability.SimulatedCrash`, killing the
        worker thread exactly like a crashed process — the journal-replay
        recovery path's test harness.
    retry_sleep:
        Sleep used between retry attempts (injectable for tests).
    """

    #: Shared state written only under ``self._lock`` — machine-checked by
    #: the ``repro lint`` lock-discipline rule (LCK001).
    _lock_guarded = frozenset(
        {
            "_queue",
            "_jobs",
            "_inflight",
            "_finished_order",
            "_next_id",
            "_shutdown",
            "_accepting",
            "_totals",
            "_last_failure",
        }
    )

    def __init__(
        self,
        session: Session,
        workers: int = 1,
        start: bool = True,
        max_finished: int = 1024,
        max_queue: int | None = None,
        journal: JobJournal | None = None,
        retry_policy: RetryPolicy | None = RetryPolicy(),
        fault_injector: FaultInjector | None = None,
        retry_sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_finished < 1:
            raise ValueError(f"max_finished must be positive, got {max_finished}")
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be positive (or None), got {max_queue}")
        self.session = session
        self.max_finished = max_finished
        self.max_queue = max_queue
        self.journal = journal
        self.retry_policy = retry_policy
        self.fault_injector = fault_injector
        self._retry_sleep = retry_sleep
        self._retry_rng = random.Random()
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._queue: deque[Job] = deque()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}  # content hash -> queued/running job
        self._finished_order: deque[str] = deque()  # job ids, oldest first
        self._next_id = 1
        self._shutdown = False
        self._accepting = True
        self._totals: dict[str, int] = {key: 0 for key in _TOTAL_KEYS}
        self._last_failure: dict[str, object] | None = None
        self._threads: list[threading.Thread] = []
        # Live queue depth, sourced at scrape time; the most recently built
        # manager owns the gauge (one manager per server process).
        _M_QUEUE_DEPTH.set_function(self.queue_depth)
        if start:
            for index in range(workers):
                thread = threading.Thread(
                    target=self._worker_loop, name=f"repro-job-worker-{index}", daemon=True
                )
                thread.start()
                self._threads.append(thread)

    # ---------------------------------------------------------------- submit
    def submit(
        self, scenario: Scenario, deadline: float | None = None
    ) -> tuple[Job, str]:
        """Submit a scenario; returns ``(job, disposition)``.

        ``disposition`` is ``"cached"``, ``"deduplicated"`` or ``"queued"``
        (see module docstring).  ``deadline`` is a *relative* limit in
        seconds from now (checked on the monotonic clock, so wall-clock
        jumps cannot spuriously expire or extend it); a job whose deadline
        passes before it completes is cancelled with
        :class:`DeadlineExceeded`.  Raises :class:`Overloaded` when the
        queue is full or the manager is draining — the journal entry for a
        queued submission is durable before this method returns.
        """
        content_hash = scenario.content_hash()
        with self._lock:
            self._check_accepting()
            existing = self._dedup_target(content_hash, scenario)
            if existing is not None:
                self._totals["submitted"] += 1
                _M_SUBMITTED.labels(disposition="deduplicated").inc()
                return existing, "deduplicated"
        # The cache probe reads the store, so it runs outside the lock; on a
        # hit it *is* the answer (one store read, zero simulations).  A store
        # too broken to probe must degrade to a queued job (whose execution
        # retries under the policy), never to a failed submission.
        try:
            cached_result = self.session.run_cached(scenario)
        except Exception as error:  # noqa: BLE001 - probe failure = cache miss
            cached_result = None
            self._note_failure(None, f"cache probe: {type(error).__name__}: {error}")
        if cached_result is not None:
            with self._lock:
                self._totals["submitted"] += 1
                job = self._register(scenario, content_hash, inflight=False)
                job.trace_id = current_trace_id()
                job.started_at = job.finished_at = time.time()  # repro: noqa[CLK001] - wall-clock metadata
                job.result_set = cached_result
                job.done = job.total
                job.cached = True
                job.state = JOB_DONE
            self._mark_finished(job)
            _M_SUBMITTED.labels(disposition="cached").inc()
            return job, "cached"
        with self._lock:
            self._check_accepting()
            existing = self._dedup_target(content_hash, scenario)
            if existing is not None:
                self._totals["submitted"] += 1
                _M_SUBMITTED.labels(disposition="deduplicated").inc()
                return existing, "deduplicated"
            if self.max_queue is not None and len(self._queue) >= self.max_queue:
                self._totals["rejected"] += 1
                _M_REJECTED.inc()
                raise Overloaded(
                    f"job queue is full ({len(self._queue)} queued, "
                    f"limit {self.max_queue})",
                    retry_after=self._retry_after_hint(),
                )
            job = self._register(scenario, content_hash, inflight=True)
            job.trace_id = current_trace_id() or new_trace_id()
            job.queued_at = time.monotonic()
            if deadline is not None:
                job.deadline = time.monotonic() + deadline
                job.deadline_at = time.time() + deadline  # repro: noqa[CLK001] - wall-clock ETA for the wire/journal
            if self.journal is not None:
                try:
                    self.journal.record(job.id, scenario, deadline=job.deadline_at)
                except Exception:
                    # The durability guarantee is journal-then-accept; a
                    # submission we cannot journal is a submission we never
                    # accepted.
                    del self._jobs[job.id]
                    del self._inflight[content_hash]
                    raise
            self._totals["submitted"] += 1
            self._queue.append(job)
            self._work_available.notify()
        _M_SUBMITTED.labels(disposition="queued").inc()
        return job, "queued"

    def _check_accepting(self) -> None:
        """Reject during drain; the manager lock must be held."""
        if not self._accepting:
            self._totals["rejected"] += 1
            _M_REJECTED.inc()
            raise Overloaded("server is draining", retry_after=5.0)

    def _retry_after_hint(self) -> float:
        """Crude full-queue backoff hint: half a second per queued job."""
        return max(1.0, 0.5 * len(self._queue))

    def _dedup_target(self, content_hash: str, scenario: Scenario) -> Job | None:
        """The in-flight job a duplicate submission attaches to, if any.

        The hash excludes the replication count, so an in-flight job only
        absorbs submissions it covers (asking for *more* replications than
        the running job would under-deliver → new job; the store then serves
        the overlap when it runs).
        """
        job = self._inflight.get(content_hash)
        if job is None or job.state not in (JOB_QUEUED, JOB_RUNNING):
            return None
        if job.scenario.replications < scenario.replications:
            return None
        return job

    def _register(self, scenario: Scenario, content_hash: str, inflight: bool) -> Job:
        """Create and index a job; the manager lock must be held."""
        job = Job(
            id=f"job-{self._next_id}",
            scenario=scenario,
            content_hash=content_hash,
        )
        self._next_id += 1
        self._jobs[job.id] = job
        if inflight:
            self._inflight[content_hash] = job
        return job

    # --------------------------------------------------------------- queries
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """All known jobs, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.created_at)

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job finishes (or the timeout elapses); returns it."""
        job = self.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        job.finished.wait(timeout)
        return job

    def result_for_hash(self, content_hash: str) -> ResultSet | None:
        """The result set of the most recent completed job for this hash."""
        with self._lock:
            candidates = [
                job
                for job in self._jobs.values()
                if job.content_hash == content_hash and job.state == JOB_DONE
            ]
        if not candidates:
            return None
        return max(candidates, key=lambda job: job.finished_at or 0.0).result_set

    def counts(self) -> dict[str, int]:
        """*Live* jobs per lifecycle state (finished jobs age out of these
        counts with :attr:`max_finished` eviction — use
        :meth:`lifetime_counts` for monotonic totals)."""
        with self._lock:
            states = [job.state for job in self._jobs.values()]
        return {
            JOB_QUEUED: states.count(JOB_QUEUED),
            JOB_RUNNING: states.count(JOB_RUNNING),
            JOB_DONE: states.count(JOB_DONE),
            JOB_FAILED: states.count(JOB_FAILED),
            JOB_CANCELLED: states.count(JOB_CANCELLED),
        }

    def lifetime_counts(self) -> dict[str, int]:
        """Monotonic since-boot totals — immune to finished-job eviction."""
        with self._lock:
            return dict(self._totals)

    def queue_depth(self) -> int:
        """Jobs accepted but not yet started."""
        with self._lock:
            return len(self._queue)

    @property
    def accepting(self) -> bool:
        """Whether :meth:`submit` currently accepts new work."""
        with self._lock:
            return self._accepting

    @property
    def last_failure(self) -> dict[str, object] | None:
        """The most recent failure observed (job or cache probe), or ``None``."""
        with self._lock:
            return dict(self._last_failure) if self._last_failure else None

    def _note_failure(self, job_id: str | None, message: str) -> None:
        with self._lock:
            self._last_failure = {"job": job_id, "error": message, "at": time.time()}  # repro: noqa[CLK001] - wall-clock metadata

    # ------------------------------------------------------------- execution
    def process_next(self) -> Job | None:
        """Run the head-of-queue job on the calling thread (test hook)."""
        while True:
            with self._lock:
                if not self._queue:
                    return None
                job = self._queue.popleft()
            if job.state == JOB_CANCELLED:
                continue  # cancelled while queued; already terminal
            self._run_job(job)
            return job

    def _worker_loop(self) -> None:
        while True:
            with self._work_available:
                while not self._queue and not self._shutdown:
                    self._work_available.wait()
                if self._shutdown and not self._queue:
                    return
                job = self._queue.popleft()
            if job.state == JOB_CANCELLED:
                continue
            self._run_job(job)

    def _check_abort(self, job: Job) -> None:
        """Raise the cooperative-abort signal if the job should stop now."""
        if job.cancel_requested.is_set():
            raise JobCancelled("cancelled by request")
        if job.deadline is not None and time.monotonic() >= job.deadline:
            raise DeadlineExceeded(
                f"deadline exceeded ({job.done}/{job.total} replications done)"
            )

    def _run_job(self, job: Job) -> None:
        """Execute one job with retries, deadline checks and journaling.

        Deliberately *not* wrapped in ``try/finally``: a
        :class:`~repro.service.reliability.SimulatedCrash` (the chaos
        harness's worker-death fault) must skip the journal mark and the
        finished bookkeeping exactly like a killed process would, so the
        entry stays pending for the next boot's replay.
        """
        job.state = JOB_RUNNING
        job.started_at = time.time()  # repro: noqa[CLK001] - wall-clock metadata
        if job.queued_at is not None:
            _M_QUEUE_WAIT.observe(time.monotonic() - job.queued_at)
        run_started = time.monotonic()

        def progress(_index: int, _scenario: Scenario, done: int, _total: int) -> None:
            job.done = done
            # Cooperative abort between replications: everything already
            # appended to the store stays there, so a later retry/resubmit
            # resumes from the completed prefix.
            self._check_abort(job)

        policy = self.retry_policy
        with trace_context(job.trace_id), span(
            "job.run", job=job.id, hash=job.content_hash
        ) as job_span:
            while True:
                job.attempts += 1
                try:
                    self._check_abort(job)
                    with span("job.attempt", attempt=job.attempts):
                        job.result_set = self.session.run(
                            job.scenario, progress=progress
                        )
                except JobCancelled as error:
                    job.state = JOB_CANCELLED
                    job.error = str(error)
                    if isinstance(error, DeadlineExceeded):
                        _M_DEADLINE.inc()
                    break
                except Exception as error:  # noqa: BLE001 - a failed job must not kill its worker (SimulatedCrash is a BaseException, so it still propagates)
                    if (
                        policy is not None
                        and job.attempts < policy.max_attempts
                        and policy.is_retryable(error)
                        and not job.cancel_requested.is_set()
                    ):
                        with self._lock:
                            self._totals["retried"] += 1
                        _M_RETRIED.inc()
                        log.info(
                            "job %s attempt %d failed (%s: %s); retrying",
                            job.id, job.attempts, type(error).__name__, error,
                        )
                        self._retry_sleep(policy.delay(job.attempts, self._retry_rng))
                        continue
                    job.state = JOB_FAILED
                    job.error = f"{type(error).__name__}: {error}"
                    self._note_failure(job.id, job.error)
                    break
                else:
                    # Chaos hook: a worker-crash roll fires *after* the results
                    # are persisted but *before* the journal mark — the exact
                    # window journal replay exists to cover.
                    if self.fault_injector is not None:
                        self.fault_injector.maybe_crash("worker-crash")
                    job.state = JOB_DONE
                    job.done = job.total
                    break
            job_span["state"] = job.state
            job_span["attempts"] = job.attempts
        _M_RUN.observe(time.monotonic() - run_started)
        job.finished_at = time.time()  # repro: noqa[CLK001] - wall-clock metadata
        with self._lock:
            if self._inflight.get(job.content_hash) is job:
                del self._inflight[job.content_hash]
        self._journal_mark(job)
        self._mark_finished(job)

    def _journal_mark(self, job: Job) -> None:
        if self.journal is None:
            return
        try:
            self.journal.mark(job.id, job.state)
        except Exception as error:  # noqa: BLE001 - a mark failure only costs
            # one spurious (deduplicated-to-cached) replay on the next boot.
            log.warning("could not mark job %s in journal: %s", job.id, error)

    def _mark_finished(self, job: Job) -> None:
        """Record a finished job and evict the oldest beyond ``max_finished``."""
        with self._lock:
            if job.state in TERMINAL_STATES:
                self._totals[job.state] += 1
                _M_FINISHED.labels(state=job.state).inc()
            self._finished_order.append(job.id)
            while len(self._finished_order) > self.max_finished:
                evicted = self._finished_order.popleft()
                self._jobs.pop(evicted, None)
        job.finished.set()

    # ---------------------------------------------------------- cancellation
    def cancel(self, job_id: str) -> str | None:
        """Cancel a job; returns the disposition or ``None`` if unknown.

        ``"cancelled"`` — it was still queued and is now terminal;
        ``"cancelling"`` — it is running and will abort cooperatively at the
        next replication boundary; ``"finished"`` — it already reached a
        terminal state (nothing to do).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state == JOB_QUEUED:
                job.state = JOB_CANCELLED
                job.error = "cancelled before start"
                job.finished_at = time.time()  # repro: noqa[CLK001] - wall-clock metadata
                try:
                    self._queue.remove(job)
                except ValueError:
                    pass  # already popped by a worker racing us; it will skip
                if self._inflight.get(job.content_hash) is job:
                    del self._inflight[job.content_hash]
            elif job.state == JOB_RUNNING:
                job.cancel_requested.set()
                return "cancelling"
            else:
                return "finished"
        self._journal_mark(job)
        self._mark_finished(job)
        return "cancelled"

    # ---------------------------------------------------------------- replay
    def replay_journal(self) -> int:
        """Re-submit every journal entry without a terminal mark.

        Called on boot, before traffic: pending entries are drained from the
        journal and pushed through :meth:`submit`, which journals each anew
        under a fresh job id.  Entries whose scenario no longer parses are
        dropped (and logged); entries that no longer fit the queue bound are
        re-journaled untouched so *nothing is lost* even on an overloaded
        boot.  Work that crashed after persisting its replications
        deduplicates to the store (``cached``) — zero duplicate simulations.
        """
        if self.journal is None:
            return 0
        entries = self.journal.pending()
        if not entries:
            return 0
        self.journal.reset()
        replayed = 0
        for entry in entries:
            try:
                scenario = Scenario.from_dict(entry.scenario)
            except Exception as error:  # noqa: BLE001 - skip poison entries
                log.warning(
                    "dropping unreplayable journal entry %s: %s", entry.job_id, error
                )
                continue
            # The journal persists the wall-clock deadline ETA (monotonic
            # clocks do not survive a restart); convert back to seconds
            # remaining — an already-expired entry submits with a
            # non-positive budget and aborts with DeadlineExceeded.
            remaining = None
            if entry.deadline is not None:
                remaining = entry.deadline - time.time()  # repro: noqa[CLK001] - wall-clock ETA from the journal
            try:
                self.submit(scenario, deadline=remaining)
            except Overloaded:
                self.journal.record_entry(entry)
                continue
            replayed += 1
            _M_REPLAYED.inc()
            with self._lock:
                self._totals["replayed"] += 1
        if replayed:
            log.info("replayed %d journaled job(s) from %s", replayed, self.journal.path)
        return replayed

    # -------------------------------------------------------------- shutdown
    def drain(self) -> int:
        """Graceful shutdown: stop intake, finish running jobs, keep the rest.

        Queued jobs are pulled off the queue *unrun* — their journal entries
        (written at acceptance) stay unmarked, so the next boot replays them.
        Returns how many were set aside.  Idempotent.
        """
        with self._work_available:
            self._accepting = False
            self._shutdown = True
            leftover = list(self._queue)
            self._queue.clear()
            self._work_available.notify_all()
        for thread in self._threads:
            thread.join(timeout=30.0)
        if leftover:
            if self.journal is not None:
                log.info(
                    "drain: %d queued job(s) left journaled for replay on next boot",
                    len(leftover),
                )
            else:
                log.warning(
                    "drain: %d queued job(s) dropped (no journal configured)",
                    len(leftover),
                )
        return len(leftover)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers after the queue drains; idempotent.

        Unlike :meth:`drain`, the workers keep executing until the queue is
        empty.  If they have not finished within the join timeout, the jobs
        still queued are *not* silently dropped: they are already journaled
        (when a journal is configured) and the abandonment is logged.
        """
        with self._work_available:
            self._accepting = False
            self._shutdown = True
            self._work_available.notify_all()
        if not wait:
            return
        for thread in self._threads:
            thread.join(timeout=30.0)
        with self._lock:
            abandoned = len(self._queue)
        if abandoned:
            if self.journal is not None:
                log.warning(
                    "shutdown timeout: %d queued job(s) abandoned but journaled "
                    "for replay on next boot",
                    abandoned,
                )
            else:
                log.warning(
                    "shutdown timeout: %d queued job(s) abandoned with no journal "
                    "— these submissions are lost",
                    abandoned,
                )
