"""Typed client for the simulation service, over stdlib ``urllib``.

:class:`ServiceClient` speaks the wire protocol of
:mod:`repro.service.server` and is what ``repro submit --url`` uses, so the
CLI can target a remote server instead of simulating locally::

    client = ServiceClient("http://127.0.0.1:8765")
    status = client.submit("one-fail-adaptive k=256 reps=5 seed=1")
    status = client.wait(status.id)
    payload = client.result(status.hash)        # ResultSet.to_dict() shape

Every HTTP failure — connection refused, non-2xx status, malformed JSON —
surfaces as :class:`ServiceError` carrying the server's ``error`` message
and status code, never a bare ``urllib`` exception.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import TYPE_CHECKING

from repro.scenarios.scenario import Scenario
from repro.service.wire import JOB_FAILED, JobStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Sequence

    from repro.scenarios.store import StoredRun

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A service request failed (transport error or error response)."""

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Thin blocking client: ``submit`` / ``wait`` / ``result`` and friends.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``http://127.0.0.1:8765`` (trailing slash ok).
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ---------------------------------------------------------------- requests
    def _request(
        self,
        path: str,
        body: bytes | None = None,
        content_type: str | None = None,
    ) -> dict[str, object]:
        request = urllib.request.Request(self.base_url + path, data=body)
        if content_type is not None:
            request.add_header("Content-Type", content_type)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read().decode("utf-8")).get("error", str(error))
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = str(error)
            raise ServiceError(message, status=error.code) from None
        except urllib.error.URLError as error:
            raise ServiceError(f"cannot reach {self.base_url}: {error.reason}") from None
        except json.JSONDecodeError as error:
            raise ServiceError(f"malformed response from {self.base_url}: {error}") from None
        if not isinstance(payload, dict):
            raise ServiceError(f"unexpected response shape: {payload!r}")
        return payload

    @staticmethod
    def _job_status(payload: dict[str, object], deduplicated: bool = False) -> JobStatus:
        job = dict(payload["job"])  # type: ignore[arg-type]
        job.setdefault("deduplicated", deduplicated)
        return JobStatus.from_wire(job)

    # ------------------------------------------------------------------ verbs
    def submit(self, scenario: Scenario | str) -> JobStatus:
        """Submit a scenario (object or compact spec string) for execution.

        The returned status carries the disposition: ``cached`` jobs are
        already ``done`` (served from the server's store with zero new
        simulations); ``deduplicated`` ones share an in-flight job.
        """
        if isinstance(scenario, Scenario):
            body = scenario.to_json().encode("utf-8")
            content_type = "application/json"
        else:
            body = scenario.encode("utf-8")
            content_type = "text/plain"
        payload = self._request("/scenarios", body=body, content_type=content_type)
        return self._job_status(payload, deduplicated=bool(payload.get("deduplicated")))

    def job(self, job_id: str) -> JobStatus:
        """Current status of one job."""
        return self._job_status(self._request(f"/jobs/{job_id}"))

    def jobs(self) -> list[JobStatus]:
        """All jobs the server knows about, oldest first."""
        payload = self._request("/jobs")
        return [JobStatus.from_wire(job) for job in payload["jobs"]]  # type: ignore[union-attr]

    def wait(
        self,
        job_id: str,
        timeout: float | None = 300.0,
        poll_interval: float = 0.05,
    ) -> JobStatus:
        """Poll until the job finishes; raises :class:`ServiceError` on timeout.

        A ``failed`` job is *returned*, not raised — the caller inspects
        ``status.error`` — so a bad scenario doesn't masquerade as a
        transport problem.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status.finished:
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status.state} after {timeout:.0f}s "
                    f"({status.done}/{status.total} replications)"
                )
            time.sleep(poll_interval)

    def result(self, content_hash: str) -> dict[str, object]:
        """Completed ``ResultSet.to_dict()`` payload for a scenario hash."""
        return self._request(f"/results/{content_hash}")

    def push_runs(self, scenario: Scenario, runs: "Sequence[StoredRun]") -> dict[str, object]:
        """Offer completed replications to the server (federation ingest).

        ``POST /results/<hash>``: the server diffs against its own store and
        adds only what it is missing, so pushing is idempotent.  The payload
        reports ``received`` / ``added`` / ``rejected`` counts.
        """
        from repro.service.wire import dump_results_body

        return self._request(
            f"/results/{scenario.content_hash()}",
            body=dump_results_body(scenario, list(runs)),
            content_type="application/json",
        )

    def run(self, scenario: Scenario | str, timeout: float | None = 300.0) -> dict[str, object]:
        """Submit, wait, and fetch the full result payload in one call."""
        status = self.submit(scenario)
        if not status.finished:
            status = self.wait(status.id, timeout=timeout)
        if status.state == JOB_FAILED:
            raise ServiceError(f"job {status.id} failed: {status.error}")
        return self.result(status.hash)

    def store_records(self) -> list[dict[str, object]]:
        """The server's store listing (``GET /store``)."""
        return list(self._request("/store")["records"])  # type: ignore[arg-type]

    def health(self) -> dict[str, object]:
        """The ``GET /healthz`` payload."""
        return self._request("/healthz")
