"""Typed client for the simulation service, over stdlib ``urllib``.

:class:`ServiceClient` speaks the wire protocol of
:mod:`repro.service.server` and is what ``repro submit --url`` uses, so the
CLI can target a remote server instead of simulating locally::

    client = ServiceClient("http://127.0.0.1:8765")
    status = client.submit("one-fail-adaptive k=256 reps=5 seed=1")
    status = client.wait(status.id)
    payload = client.result(status.hash)        # ResultSet.to_dict() shape

Every HTTP failure — connection refused, non-2xx status, malformed JSON —
surfaces as :class:`ServiceError` carrying the server's ``error`` message
and status code, never a bare ``urllib`` exception.

Reliability: every request runs under a
:class:`~repro.service.reliability.RetryPolicy` (exponential backoff, full
jitter).  Retryable failures are transport errors (connection refused/reset,
timeouts) and the classic transient statuses — 429, 500, 502, 503, 504 —
with the server's ``Retry-After`` hint honoured as a lower bound on the
backoff, so a client submitting into a full queue backs off and succeeds
instead of failing.  An error that survives the policy surfaces as
:class:`TransientServiceError` (a :class:`ServiceError` that is *also* a
:class:`~repro.service.reliability.TransientError`, so outer policies can
keep retrying it); terminal statuses (404, 400, 409, …) raise plain
:class:`ServiceError` immediately, untried.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import TYPE_CHECKING

from repro.scenarios.scenario import Scenario
from repro.service.reliability import RetryPolicy, TransientError
from repro.service.wire import JOB_DONE, JobStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Callable, Sequence

    from repro.scenarios.store import StoredRun

__all__ = ["ServiceClient", "ServiceError", "TransientServiceError"]

#: HTTP statuses worth retrying: throttling and server-side transients.
RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})

#: Default request policy: modest, fast — a CLI client should fail within
#: seconds when the server is truly gone, not minutes.
DEFAULT_RETRY = RetryPolicy(max_attempts=4, base_delay=0.1, max_delay=2.0)


class ServiceError(RuntimeError):
    """A service request failed (transport error or error response)."""

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class TransientServiceError(ServiceError, TransientError):
    """A retryable failure that survived the client's retry policy.

    Being a :class:`~repro.service.reliability.TransientError`, it stays
    retryable for any *outer* policy (e.g. federation sync wrapping client
    calls in its own, slower retry loop).
    """


class ServiceClient:
    """Blocking client: ``submit`` / ``wait`` / ``result`` and friends.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``http://127.0.0.1:8765`` (trailing slash ok).
    timeout:
        Per-request socket timeout in seconds.
    retry:
        :class:`~repro.service.reliability.RetryPolicy` for every request;
        ``None`` disables retries (one attempt per request).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retry: RetryPolicy | None = DEFAULT_RETRY,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry
        # Injectable for deterministic tests.
        self._sleep = time.sleep
        self._rng = random.Random()

    # ---------------------------------------------------------------- requests
    def _request(
        self,
        path: str,
        body: bytes | None = None,
        content_type: str | None = None,
        method: str | None = None,
    ) -> dict[str, object]:
        """One logical request: attempts under the retry policy.

        Raises :class:`ServiceError` for terminal failures and
        :class:`TransientServiceError` when every attempt failed transiently.
        """
        attempts = self.retry.max_attempts if self.retry is not None else 1
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._request_once(path, body, content_type, method)
            except ServiceError as error:
                retry_after = getattr(error, "retry_after", None)
                transient = error.status in RETRYABLE_STATUSES or (
                    error.status is None and isinstance(error, TransientServiceError)
                )
                if not transient:
                    raise
                if attempt >= attempts:
                    exhausted = TransientServiceError(str(error), status=error.status)
                    if retry_after is not None:
                        exhausted.retry_after = retry_after  # type: ignore[attr-defined]
                    raise exhausted from None
                delay = self.retry.delay(attempt, self._rng)
                if retry_after is not None:
                    delay = max(delay, float(retry_after))
                self._sleep(delay)

    def _request_once(
        self,
        path: str,
        body: bytes | None,
        content_type: str | None,
        method: str | None,
    ) -> dict[str, object]:
        request = urllib.request.Request(self.base_url + path, data=body, method=method)
        if content_type is not None:
            request.add_header("Content-Type", content_type)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read()
            retry_after = error.headers.get("Retry-After")
            try:
                message = json.loads(raw.decode("utf-8")).get("error", str(error))
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = str(error)
            exc = ServiceError(message, status=error.code)
            if retry_after is not None:
                try:
                    exc.retry_after = float(retry_after)  # type: ignore[attr-defined]
                except ValueError:
                    pass
            raise exc from None
        except urllib.error.URLError as error:
            # Connection refused/reset, DNS, timeout — all transport-level
            # transients; status None + TransientServiceError marks them
            # retryable in the loop above.
            raise TransientServiceError(
                f"cannot reach {self.base_url}: {error.reason}"
            ) from None
        except (ConnectionError, TimeoutError) as error:
            raise TransientServiceError(
                f"connection to {self.base_url} failed: {error}"
            ) from None
        except json.JSONDecodeError as error:
            # A truncated/garbled response usually means the connection was
            # dropped mid-body (e.g. an injected reset) — retryable.
            raise TransientServiceError(
                f"malformed response from {self.base_url}: {error}"
            ) from None
        if not isinstance(payload, dict):
            raise ServiceError(f"unexpected response shape: {payload!r}")
        return payload

    @staticmethod
    def _job_status(payload: dict[str, object], deduplicated: bool = False) -> JobStatus:
        job = dict(payload["job"])  # type: ignore[arg-type]
        job.setdefault("deduplicated", deduplicated)
        return JobStatus.from_wire(job)

    # ------------------------------------------------------------------ verbs
    def submit(
        self, scenario: Scenario | str, deadline: float | None = None
    ) -> JobStatus:
        """Submit a scenario (object or compact spec string) for execution.

        The returned status carries the disposition: ``cached`` jobs are
        already ``done`` (served from the server's store with zero new
        simulations); ``deduplicated`` ones share an in-flight job.
        ``deadline`` is a per-job wall-clock budget in seconds (from now);
        a job that outlives it is cancelled server-side.
        """
        if isinstance(scenario, Scenario):
            body = scenario.to_json().encode("utf-8")
            content_type = "application/json"
        else:
            body = scenario.encode("utf-8")
            content_type = "text/plain"
        path = "/scenarios"
        if deadline is not None:
            path += f"?deadline={deadline:g}"
        payload = self._request(path, body=body, content_type=content_type)
        return self._job_status(payload, deduplicated=bool(payload.get("deduplicated")))

    def job(self, job_id: str) -> JobStatus:
        """Current status of one job."""
        return self._job_status(self._request(f"/jobs/{job_id}"))

    def jobs(self) -> list[JobStatus]:
        """All jobs the server knows about, oldest first."""
        payload = self._request("/jobs")
        return [JobStatus.from_wire(job) for job in payload["jobs"]]  # type: ignore[union-attr]

    def cancel(self, job_id: str) -> dict[str, object]:
        """Cancel a job (``DELETE /jobs/<id>``).

        The payload reports ``cancelled`` (it was still queued — now
        terminal) or ``cancelling`` (running — it will stop at the next
        replication boundary).  Raises :class:`ServiceError` with status 409
        if the job already finished, 404 if unknown.
        """
        return self._request(f"/jobs/{job_id}", method="DELETE")

    def wait(
        self,
        job_id: str,
        timeout: float | None = 300.0,
        poll_interval: float = 0.05,
        max_poll_interval: float = 2.0,
        on_progress: "Callable[[JobStatus], None] | None" = None,
    ) -> JobStatus:
        """Poll until the job finishes; raises :class:`ServiceError` on timeout.

        A ``failed`` (or ``cancelled``) job is *returned*, not raised — the
        caller inspects ``status.error`` — so a bad scenario doesn't
        masquerade as a transport problem.  The poll interval starts at
        ``poll_interval`` (snappy for short jobs) and grows ~1.6× per poll up
        to ``max_poll_interval``, so waiting on a long cell costs a handful
        of requests per second-of-runtime, not hundreds.  Transient poll
        failures (server restarting, connection reset) are tolerated until
        the overall timeout.

        ``on_progress`` (if given) is called with each :class:`JobStatus`
        whose ``(state, done)`` differ from the previously observed poll —
        including the final, finished status — so callers can render
        per-replication progress without re-polling themselves.  Callback
        exceptions propagate to the caller.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        interval = max(poll_interval, 0.001)
        last_error: ServiceError | None = None
        last_progress: tuple[str, int] | None = None
        while True:
            try:
                status = self.job(job_id)
            except TransientServiceError as error:
                last_error = error
                status = None
            else:
                last_error = None
                if on_progress is not None:
                    progress = (status.state, status.done)
                    if progress != last_progress:
                        last_progress = progress
                        on_progress(status)
                if status.finished:
                    return status
            if deadline is not None and time.monotonic() >= deadline:
                if last_error is not None:
                    raise ServiceError(
                        f"job {job_id} unreachable after {timeout:.0f}s: {last_error}"
                    ) from None
                raise ServiceError(
                    f"job {job_id} still {status.state} after {timeout:.0f}s "
                    f"({status.done}/{status.total} replications)"
                )
            self._sleep(interval)
            interval = min(interval * 1.6, max_poll_interval)

    def result(self, content_hash: str) -> dict[str, object]:
        """Completed ``ResultSet.to_dict()`` payload for a scenario hash."""
        return self._request(f"/results/{content_hash}")

    def push_runs(self, scenario: Scenario, runs: "Sequence[StoredRun]") -> dict[str, object]:
        """Offer completed replications to the server (federation ingest).

        ``POST /results/<hash>``: the server diffs against its own store and
        adds only what it is missing, so pushing is idempotent.  The payload
        reports ``received`` / ``added`` / ``rejected`` counts.
        """
        from repro.service.wire import dump_results_body

        return self._request(
            f"/results/{scenario.content_hash()}",
            body=dump_results_body(scenario, list(runs)),
            content_type="application/json",
        )

    def run(
        self,
        scenario: Scenario | str,
        timeout: float | None = 300.0,
        deadline: float | None = None,
    ) -> dict[str, object]:
        """Submit, wait, and fetch the full result payload in one call."""
        status = self.submit(scenario, deadline=deadline)
        if not status.finished:
            status = self.wait(status.id, timeout=timeout)
        if status.state != JOB_DONE:
            raise ServiceError(f"job {status.id} {status.state}: {status.error}")
        return self.result(status.hash)

    def store_records(self) -> list[dict[str, object]]:
        """The server's store listing (``GET /store``)."""
        return list(self._request("/store")["records"])  # type: ignore[arg-type]

    def health(self) -> dict[str, object]:
        """The ``GET /healthz`` payload."""
        return self._request("/healthz")
