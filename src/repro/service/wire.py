"""The service wire protocol: job states, payload shapes, body parsing.

Everything the server emits and the client consumes lives here, so the two
sides cannot drift apart: the job lifecycle constants, the
:class:`JobStatus` view a client sees of a server-side job, and the scenario
body parser behind ``POST /scenarios`` (which accepts the same three forms
the ``repro run`` CLI does — a compact spec string, a scenario JSON object,
or a TOML document).

Everything is plain stdlib ``json`` over HTTP; no schema library, no
framing.  Error responses are ``{"error": "<message>"}`` with a 4xx/5xx
status code, success responses are the documented payload dicts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.scenarios.scenario import Scenario
from repro.scenarios.spec import SpecError

__all__ = [
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_CANCELLED",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobStatus",
    "parse_results_body",
    "parse_scenario_body",
    "dump_results_body",
]

#: Job lifecycle: queued → running → done | failed | cancelled.  Cached
#: submissions are born ``done``; deduplicated submissions share the original
#: job's state; ``cancelled`` covers both explicit cancellation
#: (``DELETE /jobs/<id>``) and an expired per-job deadline.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"
JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED, JOB_CANCELLED)
TERMINAL_STATES = (JOB_DONE, JOB_FAILED, JOB_CANCELLED)


@dataclass(frozen=True)
class JobStatus:
    """Client-side view of one server job (the ``GET /jobs/<id>`` payload).

    ``done``/``total`` count replications, so a progress bar falls straight
    out of the ratio; ``cached`` marks jobs answered synchronously from the
    result store with zero new simulations; ``deduplicated`` marks
    submissions that attached to an already in-flight job for the same
    scenario hash.
    """

    id: str
    hash: str
    scenario: str
    state: str
    done: int
    total: int
    cached: bool = False
    deduplicated: bool = False
    error: str | None = None
    attempts: int = 1
    deadline: float | None = None

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    @classmethod
    def from_wire(cls, payload: dict[str, object]) -> "JobStatus":
        deadline = payload.get("deadline")
        return cls(
            id=str(payload["id"]),
            hash=str(payload["hash"]),
            scenario=str(payload["scenario"]),
            state=str(payload["state"]),
            done=int(payload["done"]),  # type: ignore[arg-type]
            total=int(payload["total"]),  # type: ignore[arg-type]
            cached=bool(payload.get("cached", False)),
            deduplicated=bool(payload.get("deduplicated", False)),
            error=payload.get("error"),  # type: ignore[arg-type]
            attempts=int(payload.get("attempts", 1)),  # type: ignore[arg-type]
            deadline=float(deadline) if deadline is not None else None,  # type: ignore[arg-type]
        )


def parse_scenario_body(body: bytes, content_type: str | None = None) -> Scenario:
    """Parse a ``POST /scenarios`` body into a :class:`Scenario`.

    The ``Content-Type`` header picks the format when present
    (``application/json``, ``application/toml``/``text/toml``,
    ``text/plain`` for the compact spec string); without one the body is
    sniffed — a leading ``{`` means JSON, an embedded newline next to a
    ``=`` means TOML, anything else is treated as a compact spec string.
    Raises :class:`~repro.scenarios.spec.SpecError` or :class:`ValueError`
    on malformed input (the server maps both to HTTP 400).
    """
    text = body.decode("utf-8").strip()
    if not text:
        raise SpecError("empty scenario body")
    kind = (content_type or "").split(";", 1)[0].strip().lower()
    if kind == "application/json":
        return Scenario.from_json(text)
    if kind in ("application/toml", "text/toml"):
        return Scenario.from_toml(text)
    if kind == "text/plain":
        return Scenario.parse(text)
    if text.startswith("{"):
        return Scenario.from_json(text)
    if "\n" in text and "=" in text:
        return Scenario.from_toml(text)
    return Scenario.parse(text)


def parse_results_body(body: bytes) -> tuple[Scenario, list["StoredRun"]]:
    """Parse a ``POST /results/<hash>`` federation-ingest body.

    The body is ``{"scenario": <scenario dict>, "runs": [{"replication",
    "seed", "elapsed_seconds", "result"}, ...]}`` — the same per-run shape
    the JSONL store records, which is what :func:`dump_results_body`
    produces on the sending side.  Raises :class:`ValueError`/
    :class:`KeyError` on malformed input (the server maps both to 400).
    """
    from repro.engine.result import SimulationResult
    from repro.scenarios.store import StoredRun

    payload = json.loads(body.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("results body must be a JSON object")
    scenario = Scenario.from_dict(payload["scenario"])
    raw_runs = payload["runs"]
    if not isinstance(raw_runs, list):
        raise ValueError("results body 'runs' must be a list")
    runs = [
        StoredRun(
            replication=int(record["replication"]),
            seed=int(record["seed"]),
            elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
            result=SimulationResult.from_dict(record["result"]),
        )
        for record in raw_runs
    ]
    return scenario, runs


def dump_results_body(scenario: Scenario, runs: "list[StoredRun]") -> bytes:
    """Encode a federation-ingest body (inverse of :func:`parse_results_body`)."""
    return dump_json(
        {
            "scenario": scenario.to_dict(),
            "runs": [
                {
                    "replication": run.replication,
                    "seed": run.seed,
                    "elapsed_seconds": run.elapsed_seconds,
                    "result": run.result.to_dict(),
                }
                for run in runs
            ],
        }
    )


def dump_json(payload: object) -> bytes:
    """Canonical wire encoding (sorted keys, UTF-8) used by both sides."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")
