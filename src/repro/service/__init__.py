"""The simulation service: ``repro serve`` and its client.

This package turns the spec-driven :class:`~repro.scenarios.session.Session`
front door into an always-on scenario-serving system — the PODC'11
reproduction as a long-running process instead of a batch CLI.  Four layers,
bottom to top:

1. **Session + store** (:mod:`repro.scenarios`) — the execution substrate.
   One session, shared by every worker thread, content-hashes scenarios,
   serves completed replications from its :class:`ResultStore` (whose
   ``append`` takes per-hash advisory file locks, so concurrent workers and
   even concurrent *server processes* sharing a store directory cannot tear
   its JSONL files), and fans missing replications out over the
   batch/parallel engines.

2. **Job queue** (:mod:`repro.service.jobs`) — :class:`JobManager`, a strict
   FIFO of :class:`Job`\\ s drained by daemon worker threads.  Submissions
   dedup by :meth:`~repro.scenarios.scenario.Scenario.content_hash` — N
   identical submissions attach to one in-flight job — and scenarios whose
   replications are all on record are answered synchronously from the store
   (``cached``, zero new simulations) without touching the queue.

3. **HTTP server** (:mod:`repro.service.server`) — a stdlib
   :class:`~http.server.ThreadingHTTPServer` exposing the wire protocol of
   :mod:`repro.service.wire`: ``POST /scenarios`` (spec string / JSON / TOML
   body), ``GET /jobs/<id>`` (status + per-replication progress),
   ``GET /results/<hash>`` (completed ``ResultSet.to_dict()`` payloads),
   ``GET /store`` (the store listing) and ``GET /healthz``.

4. **Client** (:mod:`repro.service.client`) — :class:`ServiceClient`, the
   typed ``submit``/``wait``/``result`` wrapper over ``urllib`` that backs
   the ``repro submit --url`` CLI.

Threaded through all four layers is the fault-tolerance vocabulary of
:mod:`repro.service.reliability`: a crash-safe job journal replayed on boot
(zero lost submissions, zero duplicate simulations), :class:`RetryPolicy`
backoff on job execution / client HTTP calls / federation sync, per-job
deadlines and cooperative cancellation (``DELETE /jobs/<id>``), a bounded
queue that degrades to 503 + ``Retry-After``, graceful SIGTERM drain, and a
seeded :class:`FaultInjector` (plus the ``chaos:`` store wrapper) so every
one of those recovery paths is deterministically testable.

Quickstart::

    # terminal 1 — an always-on server with a persistent store
    #   $ repro serve --port 8765 --store results/store

    from repro import ServiceClient

    client = ServiceClient("http://127.0.0.1:8765")
    payload = client.run("one-fail-adaptive k=1000 reps=10 seed=7")
    print(payload["mean_makespan"], payload["new_runs"], payload["cached_runs"])

Submitting the same scenario again costs zero simulations: while the first
run is in flight the submission dedups onto it; afterwards the result store
answers it synchronously (``cached: true``).
"""

from __future__ import annotations

from repro.service.client import ServiceClient, ServiceError, TransientServiceError
from repro.service.jobs import Job, JobManager
from repro.service.reliability import (
    DeadlineExceeded,
    FaultInjector,
    InjectedFault,
    JobCancelled,
    JobJournal,
    Overloaded,
    RetryPolicy,
    SimulatedCrash,
    TransientError,
    journal_for_store,
)
from repro.service.server import ReproServer, create_server, serve
from repro.service.wire import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_STATES,
    TERMINAL_STATES,
    JobStatus,
    parse_scenario_body,
)

__all__ = [
    "ServiceClient",
    "ServiceError",
    "TransientServiceError",
    "Job",
    "JobManager",
    "JobStatus",
    "ReproServer",
    "create_server",
    "serve",
    "parse_scenario_body",
    "RetryPolicy",
    "JobJournal",
    "journal_for_store",
    "FaultInjector",
    "TransientError",
    "InjectedFault",
    "SimulatedCrash",
    "JobCancelled",
    "DeadlineExceeded",
    "Overloaded",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_CANCELLED",
    "JOB_STATES",
    "TERMINAL_STATES",
]
