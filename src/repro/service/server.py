"""The threaded HTTP/JSON simulation server behind ``repro serve``.

Stdlib only: a :class:`http.server.ThreadingHTTPServer` whose handler
routes five endpoints onto a :class:`~repro.service.jobs.JobManager` and its
shared :class:`~repro.scenarios.session.Session`:

========================  ====================================================
``POST /scenarios``       submit a scenario (spec string / JSON / TOML body);
                          202 + job payload when queued, 200 with
                          ``cached: true`` (zero new simulations) or
                          ``deduplicated: true`` otherwise
``GET /jobs/<id>``        job status + per-replication progress
``GET /jobs``             all known jobs, oldest first
``GET /results/<hash>``   completed ``ResultSet.to_dict()`` payload for a
                          scenario content hash (from a finished job or
                          straight from the result store)
``POST /results/<hash>``  federation ingest: merge externally produced
                          replications into the server's store (diffed by
                          replication index; existing results are never
                          overwritten) — what :func:`repro.scenarios.
                          federation.sync` uses to push to a server
``GET /store``            the store listing (one record per scenario cell)
``GET /healthz``          liveness + job counts
========================  ====================================================

Each request runs on its own thread (``ThreadingHTTPServer``), while
simulations run on the job manager's worker threads — a slow cell never
blocks health checks or status polls.  Requests that *do* execute scenarios
synchronously (cached submissions, store-served ``/results/<hash>``) perform
zero simulations by construction, so they stay fast too.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.scenarios.session import Session
from repro.scenarios.spec import SpecError
from repro.service.jobs import JobManager
from repro.service.wire import dump_json, parse_results_body, parse_scenario_body

__all__ = ["ReproServer", "create_server", "serve"]


class ReproServer(ThreadingHTTPServer):
    """HTTP server owning the session and job manager it serves."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        session: Session,
        jobs: JobManager,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, _Handler)
        self.session = session
        self.jobs = jobs
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests and benchmarks); returns it."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-service", daemon=True
        )
        thread.start()
        return thread

    def close(self) -> None:
        """Stop serving and drain the job workers; idempotent."""
        self.shutdown()
        self.server_close()
        self.jobs.shutdown(wait=True)


class _Handler(BaseHTTPRequestHandler):
    server: ReproServer

    # ----------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - log formatting
            super().log_message(format, *args)

    def _send(self, status: int, payload: dict[str, object]) -> None:
        body = dump_json(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, **extra: object) -> None:
        self._send(status, {"error": message, **extra})

    # ------------------------------------------------------------------ routes
    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            self._get_healthz()
        elif path == "/store":
            self._get_store()
        elif path == "/jobs":
            self._send(200, {"jobs": [job.snapshot() for job in self.server.jobs.jobs()]})
        elif path.startswith("/jobs/"):
            self._get_job(path.removeprefix("/jobs/"))
        elif path.startswith("/results/"):
            self._get_result(path.removeprefix("/results/"))
        else:
            self._error(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        path = self.path.rstrip("/")
        length = int(self.headers.get("Content-Length", 0))
        body = self.rfile.read(length)
        if path.startswith("/results/"):
            self._post_result(path.removeprefix("/results/"), body)
            return
        if path != "/scenarios":
            self._error(404, f"unknown path {self.path!r}")
            return
        try:
            scenario = parse_scenario_body(body, self.headers.get("Content-Type"))
        except (SpecError, ValueError, KeyError) as error:
            self._error(400, f"bad scenario: {error}")
            return
        job, disposition = self.server.jobs.submit(scenario)
        payload = {
            "job": job.snapshot(),
            "hash": job.content_hash,
            "cached": disposition == "cached",
            "deduplicated": disposition == "deduplicated",
        }
        self._send(202 if disposition == "queued" else 200, payload)

    # ---------------------------------------------------------------- handlers
    def _get_healthz(self) -> None:
        from repro import __version__

        session = self.server.session
        self._send(
            200,
            {
                "status": "ok",
                "version": __version__,
                "store": session.store.describe() if session.store is not None else None,
                "jobs": self.server.jobs.counts(),
            },
        )

    def _get_store(self) -> None:
        store = self.server.session.store
        records = [record.to_dict() for record in store.summaries()] if store else []
        self._send(200, {"records": records})

    def _get_job(self, job_id: str) -> None:
        job = self.server.jobs.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        self._send(200, {"job": job.snapshot()})

    def _get_result(self, content_hash: str) -> None:
        result_set = self.server.jobs.result_for_hash(content_hash)
        if result_set is not None:
            self._send(200, result_set.to_dict())
            return
        session = self.server.session
        scenario = (
            session.store.scenario_for_hash(content_hash) if session.store is not None else None
        )
        if scenario is None:
            self._error(404, f"no results for hash {content_hash!r}")
            return
        # Fully on record: served entirely from the store, zero simulations.
        stored = session.run_cached(scenario)
        if stored is None:
            self._error(
                409,
                f"scenario {content_hash!r} is incomplete",
                cached_replications=session.cached_count(scenario),
                replications=scenario.replications,
            )
            return
        self._send(200, stored.to_dict())

    def _post_result(self, content_hash: str, body: bytes) -> None:
        """Federation ingest: merge pushed replications into the store."""
        session = self.server.session
        if session.store is None:
            self._error(409, "server has no result store to ingest into")
            return
        try:
            scenario, runs = parse_results_body(body)
        except (SpecError, ValueError, KeyError, TypeError) as error:
            self._error(400, f"bad results body: {error}")
            return
        if scenario.content_hash() != content_hash:
            self._error(
                400,
                f"scenario hashes to {scenario.content_hash()!r}, "
                f"not the requested {content_hash!r}",
            )
            return
        expected_seeds = scenario.seeds()
        valid = [
            run
            for run in runs
            if run.replication >= len(expected_seeds)
            or run.seed == expected_seeds[run.replication]
        ]
        added = session.ingest(scenario, valid)
        self._send(
            200,
            {
                "hash": content_hash,
                "received": len(runs),
                "added": added,
                "rejected": len(runs) - len(valid),
            },
        )


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    store_dir: str | Path | None = None,
    workers: int | None = 1,
    job_workers: int = 1,
    batch: bool = True,
    quiet: bool = True,
) -> ReproServer:
    """Assemble a ready-to-serve :class:`ReproServer` (port 0 = ephemeral)."""
    session = Session(store_dir=store_dir, workers=workers, batch=batch)
    jobs = JobManager(session, workers=job_workers)
    return ReproServer((host, port), session, jobs, quiet=quiet)


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    store_dir: str | Path | None = None,
    workers: int | None = 1,
    job_workers: int = 1,
    batch: bool = True,
    quiet: bool = False,
) -> int:
    """Blocking entry point behind ``repro serve`` (Ctrl-C to stop)."""
    server = create_server(
        host=host,
        port=port,
        store_dir=store_dir,
        workers=workers,
        job_workers=job_workers,
        batch=batch,
        quiet=quiet,
    )
    print(f"repro service listening on {server.url} "
          f"(store: {store_dir if store_dir is not None else 'none — in-memory'})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.close()
    return 0
