"""The threaded HTTP/JSON simulation server behind ``repro serve``.

Stdlib only: a :class:`http.server.ThreadingHTTPServer` whose handler
routes the endpoints onto a :class:`~repro.service.jobs.JobManager` and its
shared :class:`~repro.scenarios.session.Session`:

========================  ====================================================
``POST /scenarios``       submit a scenario (spec string / JSON / TOML body;
                          optional ``?deadline=<seconds>`` wall-clock budget);
                          202 + job payload when queued, 200 with
                          ``cached: true`` (zero new simulations) or
                          ``deduplicated: true`` otherwise; 503 +
                          ``Retry-After`` when the queue is full or draining
``GET /jobs/<id>``        job status + per-replication progress
``DELETE /jobs/<id>``     cancel a job (immediate while queued, cooperative
                          between replications while running; 409 once
                          finished)
``GET /jobs``             all known jobs, oldest first
``GET /results/<hash>``   completed ``ResultSet.to_dict()`` payload for a
                          scenario content hash (from a finished job or
                          straight from the result store)
``POST /results/<hash>``  federation ingest: merge externally produced
                          replications into the server's store (diffed by
                          replication index; existing results are never
                          overwritten) — what :func:`repro.scenarios.
                          federation.sync` uses to push to a server
``GET /store``            the store listing (one record per scenario cell)
``GET /healthz``          liveness + degradation: job counts (live and
                          lifetime), queue depth/limit/accepting, journal
                          backlog, last failure, metrics summary
``GET /metrics``          Prometheus text exposition of the process-wide
                          metrics registry (see :mod:`repro.obs`)
========================  ====================================================

Each request runs on its own thread (``ThreadingHTTPServer``), while
simulations run on the job manager's worker threads — a slow cell never
blocks health checks or status polls.  Requests that *do* execute scenarios
synchronously (cached submissions, store-served ``/results/<hash>``) perform
zero simulations by construction, so they stay fast too.

Reliability (see :mod:`repro.service.reliability`): when the session has a
store, :func:`create_server` wires a crash-safe job journal next to it and
replays unfinished submissions on boot; ``repro serve`` installs
SIGTERM/SIGINT handlers that drain gracefully (stop accepting → 503, finish
in-flight jobs, leave the queued rest journaled).  A
:class:`~repro.service.reliability.FaultInjector` passed to the server
injects HTTP-level chaos (500s and connection resets) ahead of routing, for
client-retry tests.
"""

from __future__ import annotations

import signal
import threading
import time
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qsl, urlsplit

from repro.obs import (
    REGISTRY,
    configure_json_logging,
    configure_tracing,
    enabled as obs_enabled,
    get_logger,
    set_enabled,
    span,
    trace_log_for_store,
)
from repro.scenarios.session import Session
from repro.scenarios.spec import SpecError
from repro.service.jobs import JobManager
from repro.service.reliability import (
    FaultInjector,
    InjectedFault,
    Overloaded,
    SimulatedCrash,
    journal_for_store,
)
from repro.service.wire import dump_json, parse_results_body, parse_scenario_body

__all__ = ["ReproServer", "create_server", "serve"]

log = get_logger("service.server")

_M_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests served, by method, normalised route and status.",
    ("method", "route", "status"),
)
_M_REQ_LATENCY = REGISTRY.histogram(
    "repro_http_request_seconds",
    "HTTP request handling time, by method and normalised route.",
    ("method", "route"),
)
_M_HTTP_FAULTS = REGISTRY.counter(
    "repro_http_faults_injected_total",
    "HTTP-level chaos faults fired before routing, by kind.",
    ("kind",),
)

#: Exact-match routes; parameterised paths normalise to placeholder labels so
#: metric cardinality stays bounded no matter how many jobs/hashes exist.
_KNOWN_ROUTES = frozenset({"/", "/healthz", "/metrics", "/store", "/jobs", "/scenarios"})


def _route_label(path: str) -> str:
    path = urlsplit(path).path.rstrip("/") or "/"
    if path.startswith("/jobs/"):
        return "/jobs/{id}"
    if path.startswith("/results/"):
        return "/results/{hash}"
    return path if path in _KNOWN_ROUTES else "other"


def _metrics_summary() -> dict[str, object]:
    """Headline numbers for ``/healthz`` (full detail lives at ``/metrics``)."""
    snapshot = REGISTRY.snapshot()

    def total(name: str) -> float:
        family = snapshot.get(name)
        if family is None:
            return 0
        out = 0.0
        for value in family["series"].values():  # type: ignore[union-attr]
            if isinstance(value, dict):
                out += value.get("count", 0)
            else:
                out += value
        return out

    return {
        "enabled": obs_enabled(),
        "families": len(snapshot),
        "http_requests": total("repro_http_requests_total"),
        "jobs_submitted": total("repro_jobs_submitted_total"),
        "slots_simulated": total("repro_engine_slots_total"),
    }


class ReproServer(ThreadingHTTPServer):
    """HTTP server owning the session and job manager it serves."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        session: Session,
        jobs: JobManager,
        quiet: bool = True,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.session = session
        self.jobs = jobs
        self.quiet = quiet
        self.fault_injector = fault_injector

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests and benchmarks); returns it."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-service", daemon=True
        )
        thread.start()
        return thread

    def close(self) -> int:
        """Stop serving and drain gracefully; idempotent.

        Running jobs finish; jobs still queued are left journaled for the
        next boot to replay (returned count).  Use ``jobs.shutdown()``
        directly for the old run-everything-first behaviour.
        """
        self.shutdown()
        self.server_close()
        return self.jobs.drain()


class _Handler(BaseHTTPRequestHandler):
    server: ReproServer

    # ----------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - log formatting
            super().log_message(format, *args)

    def _send(
        self,
        status: int,
        payload: dict[str, object],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = dump_json(payload)
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _timed(self, method: str, handler: Callable[[], None]) -> None:
        """Run one request handler under a span + latency/status metrics.

        ``_send`` records the response status on the handler instance; a
        request eaten by the connection-reset chaos fault (no response at
        all) is counted under status ``0``.
        """
        route = _route_label(self.path)
        self._status = 0
        started = time.monotonic()
        with span("http.request", method=method, route=route) as request_span:
            try:
                handler()
            finally:
                request_span["status"] = self._status
        _M_REQ_LATENCY.labels(method=method, route=route).observe(
            time.monotonic() - started
        )
        _M_REQUESTS.labels(method=method, route=route, status=str(self._status)).inc()

    def _error(self, status: int, message: str, **extra: object) -> None:
        self._send(status, {"error": message, **extra})

    def _inject_http_fault(self) -> bool:
        """HTTP-level chaos hook; returns True when the request was eaten.

        ``http-500`` answers with a retryable 500 before routing;
        ``http-reset`` slams the connection shut mid-response (the client
        sees a connection reset / truncated read).  ``/healthz`` is exempt —
        it is how chaos tests observe the server.
        """
        injector = self.server.fault_injector
        if injector is None or self.path.rstrip("/") == "/healthz":
            return False
        try:
            injector.maybe_fail("http-500")
            if injector.roll("http-reset"):
                _M_HTTP_FAULTS.labels(kind="reset").inc()
                self.close_connection = True
                self.connection.close()
                return True
        except SimulatedCrash:  # pragma: no cover - defensive
            raise
        except InjectedFault as error:  # → a retryable 500
            _M_HTTP_FAULTS.labels(kind="500").inc()
            self._error(500, f"injected server fault: {error}")
            return True
        return False

    # ------------------------------------------------------------------ routes
    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        self._timed("GET", self._handle_get)

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        self._timed("POST", self._handle_post)

    def do_DELETE(self) -> None:  # noqa: N802 - http.server contract
        self._timed("DELETE", self._handle_delete)

    def _handle_get(self) -> None:
        if self._inject_http_fault():
            return
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            self._get_healthz()
        elif path == "/metrics":
            self._get_metrics()
        elif path == "/store":
            self._get_store()
        elif path == "/jobs":
            self._send(200, {"jobs": [job.snapshot() for job in self.server.jobs.jobs()]})
        elif path.startswith("/jobs/"):
            self._get_job(path.removeprefix("/jobs/"))
        elif path.startswith("/results/"):
            self._get_result(path.removeprefix("/results/"))
        else:
            self._error(404, f"unknown path {self.path!r}")

    def _handle_post(self) -> None:
        if self._inject_http_fault():
            return
        url = urlsplit(self.path)
        path = url.path.rstrip("/")
        length = int(self.headers.get("Content-Length", 0))
        body = self.rfile.read(length)
        if path.startswith("/results/"):
            self._post_result(path.removeprefix("/results/"), body)
            return
        if path != "/scenarios":
            self._error(404, f"unknown path {self.path!r}")
            return
        try:
            scenario = parse_scenario_body(body, self.headers.get("Content-Type"))
            deadline = self._parse_deadline(url.query)
        except (SpecError, ValueError, KeyError) as error:
            self._error(400, f"bad scenario: {error}")
            return
        try:
            job, disposition = self.server.jobs.submit(scenario, deadline=deadline)
        except Overloaded as error:
            self._send(
                503,
                {"error": str(error), "retry_after": error.retry_after},
                headers={"Retry-After": f"{max(1, round(error.retry_after))}"},
            )
            return
        payload = {
            "job": job.snapshot(),
            "hash": job.content_hash,
            "cached": disposition == "cached",
            "deduplicated": disposition == "deduplicated",
        }
        self._send(202 if disposition == "queued" else 200, payload)

    def _handle_delete(self) -> None:
        if self._inject_http_fault():
            return
        path = self.path.rstrip("/")
        if not path.startswith("/jobs/"):
            self._error(404, f"unknown path {self.path!r}")
            return
        job_id = path.removeprefix("/jobs/")
        disposition = self.server.jobs.cancel(job_id)
        if disposition is None:
            self._error(404, f"unknown job {job_id!r}")
        elif disposition == "finished":
            job = self.server.jobs.get(job_id)
            self._error(
                409,
                f"job {job_id!r} already finished",
                job=job.snapshot() if job is not None else None,
            )
        else:
            job = self.server.jobs.get(job_id)
            self._send(
                200,
                {
                    "cancelled": disposition == "cancelled",
                    "cancelling": disposition == "cancelling",
                    "job": job.snapshot() if job is not None else None,
                },
            )

    @staticmethod
    def _parse_deadline(query: str) -> float | None:
        """``?deadline=<seconds from now>`` → validated relative seconds.

        The manager tracks the deadline on the monotonic clock; the wire
        stays relative so clients and server need not share a wall clock.
        """
        for key, value in parse_qsl(query, keep_blank_values=True):
            if key == "deadline":
                seconds = float(value)
                if seconds <= 0:
                    raise ValueError(f"deadline must be positive, got {seconds}")
                return seconds
        return None

    # ---------------------------------------------------------------- handlers
    def _get_healthz(self) -> None:
        from repro import __version__

        server = self.server
        session = server.session
        jobs = server.jobs
        depth = jobs.queue_depth()
        accepting = jobs.accepting
        queue_full = jobs.max_queue is not None and depth >= jobs.max_queue
        if not accepting:
            status = "draining"
        elif queue_full:
            status = "degraded"
        else:
            status = "ok"
        self._send(
            200,
            {
                "status": status,
                "version": __version__,
                "store": session.store.describe() if session.store is not None else None,
                "jobs": jobs.counts(),
                "totals": jobs.lifetime_counts(),
                "queue": {
                    "depth": depth,
                    "limit": jobs.max_queue,
                    "accepting": accepting,
                },
                "journal": {
                    "backlog": jobs.journal.backlog() if jobs.journal is not None else 0
                },
                "last_failure": jobs.last_failure,
                "metrics": _metrics_summary(),
            },
        )

    def _get_metrics(self) -> None:
        """Prometheus text exposition of the process-wide registry."""
        body = REGISTRY.render().encode("utf-8")
        self._status = 200
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _get_store(self) -> None:
        store = self.server.session.store
        records = [record.to_dict() for record in store.summaries()] if store else []
        self._send(200, {"records": records})

    def _get_job(self, job_id: str) -> None:
        job = self.server.jobs.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        self._send(200, {"job": job.snapshot()})

    def _get_result(self, content_hash: str) -> None:
        result_set = self.server.jobs.result_for_hash(content_hash)
        if result_set is not None:
            self._send(200, result_set.to_dict())
            return
        session = self.server.session
        scenario = (
            session.store.scenario_for_hash(content_hash) if session.store is not None else None
        )
        if scenario is None:
            self._error(404, f"no results for hash {content_hash!r}")
            return
        # Fully on record: served entirely from the store, zero simulations.
        stored = session.run_cached(scenario)
        if stored is None:
            self._error(
                409,
                f"scenario {content_hash!r} is incomplete",
                cached_replications=session.cached_count(scenario),
                replications=scenario.replications,
            )
            return
        self._send(200, stored.to_dict())

    def _post_result(self, content_hash: str, body: bytes) -> None:
        """Federation ingest: merge pushed replications into the store."""
        session = self.server.session
        if session.store is None:
            self._error(409, "server has no result store to ingest into")
            return
        try:
            scenario, runs = parse_results_body(body)
        except (SpecError, ValueError, KeyError, TypeError) as error:
            self._error(400, f"bad results body: {error}")
            return
        if scenario.content_hash() != content_hash:
            self._error(
                400,
                f"scenario hashes to {scenario.content_hash()!r}, "
                f"not the requested {content_hash!r}",
            )
            return
        expected_seeds = scenario.seeds()
        valid = [
            run
            for run in runs
            if run.replication >= len(expected_seeds)
            or run.seed == expected_seeds[run.replication]
        ]
        added = session.ingest(scenario, valid)
        self._send(
            200,
            {
                "hash": content_hash,
                "received": len(runs),
                "added": added,
                "rejected": len(runs) - len(valid),
            },
        )


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    store_dir: str | Path | None = None,
    workers: int | None = 1,
    job_workers: int = 1,
    batch: bool = True,
    quiet: bool = True,
    max_queue: int | None = None,
    fault_injector: FaultInjector | None = None,
    obs: bool = True,
) -> ReproServer:
    """Assemble a ready-to-serve :class:`ReproServer` (port 0 = ephemeral).

    When the session has a store, a crash-safe job journal is wired beside it
    (see :func:`~repro.service.reliability.journal_for_store`) and any
    submissions left unfinished by a previous process are replayed *before*
    the server takes traffic — content-hash dedup and the store-cached fast
    path make the replay idempotent.  ``max_queue`` bounds accepted-but-
    unstarted jobs (full → 503 + ``Retry-After``); ``fault_injector`` adds
    HTTP-level chaos for tests.

    ``obs`` toggles the observability layer (``repro serve --no-obs``):
    metric recording is flipped process-wide, and when a store is configured
    spans are exported to a trace log beside the journal (see
    :func:`~repro.obs.tracing.trace_log_for_store`).  ``GET /metrics``
    serves either way — frozen counters under ``--no-obs``.
    """
    session = Session(store_dir=store_dir, workers=workers, batch=batch)
    set_enabled(obs)
    if obs and session.store is not None:
        trace_log = trace_log_for_store(session.store)
        configure_tracing(trace_log.path if trace_log is not None else None)
    else:
        configure_tracing(None)
    journal = journal_for_store(session.store)
    jobs = JobManager(
        session,
        workers=job_workers,
        max_queue=max_queue,
        journal=journal,
        fault_injector=fault_injector,
    )
    jobs.replay_journal()
    return ReproServer(
        (host, port), session, jobs, quiet=quiet, fault_injector=fault_injector
    )


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    store_dir: str | Path | None = None,
    workers: int | None = 1,
    job_workers: int = 1,
    batch: bool = True,
    quiet: bool = False,
    max_queue: int | None = None,
    obs: bool = True,
) -> int:
    """Blocking entry point behind ``repro serve`` (Ctrl-C/SIGTERM to stop).

    SIGTERM and SIGINT trigger a graceful drain: the server stops accepting
    (new submissions get 503 + ``Retry-After``), in-flight jobs finish, and
    jobs still queued stay journaled for the next boot to replay.  Service
    logs are structured JSON lines on stderr, each carrying the trace id of
    the request it belongs to; ``obs=False`` (``--no-obs``) freezes metric
    recording and span export.
    """
    configure_json_logging()
    server = create_server(
        host=host,
        port=port,
        store_dir=store_dir,
        workers=workers,
        job_workers=job_workers,
        batch=batch,
        quiet=quiet,
        max_queue=max_queue,
        obs=obs,
    )

    def _graceful(signum: int, _frame: object) -> None:  # pragma: no cover
        # serve_forever runs on this thread, so shutdown() must come from
        # another one — calling it here would deadlock.
        if not quiet:
            log.info("signal %d: draining (in-flight jobs will finish)", signum)
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
    except ValueError:  # pragma: no cover - not on the main thread
        pass
    log.info(
        "repro service listening on %s (store: %s, obs: %s)",
        server.url,
        store_dir if store_dir is not None else "none — in-memory",
        "on" if obs else "off",
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        leftover = server.close()
        if leftover and not quiet:  # pragma: no cover - interactive shutdown
            log.info("drained: %d queued job(s) journaled for next boot", leftover)
    return 0
