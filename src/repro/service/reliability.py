"""The fault-tolerance vocabulary: retries, journaling, deadlines, chaos.

The paper's whole subject is protocols that stay live under adversarial
timing; this module gives the *service* layer the same discipline.  Four
building blocks, consumed by :mod:`repro.service.jobs`,
:mod:`repro.service.server`, :mod:`repro.service.client` and
:mod:`repro.scenarios.federation`:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and full
  jitter, plus the retryable-vs-terminal error classification.  A transient
  store hiccup or connection reset is retried; a malformed scenario fails
  once.  Applied to job execution (:meth:`JobManager._run_job`), to every
  :class:`~repro.service.client.ServiceClient` HTTP call (honoring
  ``Retry-After``), and to :func:`repro.scenarios.federation.sync` over
  flaky links.
* :class:`JobJournal` — a crash-safe write-ahead journal of accepted
  submissions.  A scenario is journaled *before* it joins the queue and
  marked when its job reaches a terminal state, so a server killed with
  queued and running jobs replays the unmarked entries on the next boot:
  zero lost submissions, and — because replay goes through the normal
  submission path with its content-hash dedup and store-cached fast path —
  zero duplicate simulations.
* **Deadlines and cancellation** — :class:`JobCancelled` /
  :class:`DeadlineExceeded` are the cooperative-abort signals a job's
  :data:`~repro.scenarios.session.SessionProgress` callback raises between
  replications; completed replications stay persisted, so a cancelled cell
  resumes from the store later.
* :class:`FaultInjector` — seeded, deterministic fault injection: store
  append/load failures and slow I/O (via the ``chaos:`` store backend of
  :mod:`repro.scenarios.store_chaos`), worker crashes *before* the journal
  mark (:class:`SimulatedCrash`, a ``BaseException`` so it kills the worker
  thread exactly like a crashed process), and HTTP 5xx / connection resets
  (wired into :class:`~repro.service.server.ReproServer`).  Every recovery
  path above is exercised by tests and ``benchmarks/bench_faults.py``
  under fixed seeds, not by hope.

Error taxonomy
--------------
:class:`TransientError` marks "try again later" failures; anything raised
as (a subclass of) it — plus ``ConnectionError``/``TimeoutError``/``OSError``
— is retryable under the default :class:`RetryPolicy`.  :class:`Overloaded`
is the bounded-queue rejection the server maps to ``503`` +
``Retry-After``.  :class:`JobCancelled` is always terminal.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from collections import Counter
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.scenario import Scenario
    from repro.scenarios.store import StoreBackend

__all__ = [
    "TransientError",
    "InjectedFault",
    "SimulatedCrash",
    "JobCancelled",
    "DeadlineExceeded",
    "Overloaded",
    "RetryPolicy",
    "JournalEntry",
    "JobJournal",
    "journal_for_store",
    "FaultInjector",
]


# --------------------------------------------------------------------------
# Error taxonomy
# --------------------------------------------------------------------------


class TransientError(RuntimeError):
    """A failure worth retrying: the operation may succeed on a later attempt."""


class InjectedFault(TransientError):
    """A deterministic fault fired by a :class:`FaultInjector` (retryable)."""

    def __init__(self, kind: str, message: str | None = None) -> None:
        super().__init__(message or f"injected fault: {kind}")
        self.kind = kind


class SimulatedCrash(BaseException):
    """A :class:`FaultInjector` 'process died here' — deliberately a
    ``BaseException`` so no ``except Exception`` recovery path can swallow
    it: the worker thread dies mid-job exactly like a killed process, leaving
    the journal unmarked for the next boot to replay."""

    def __init__(self, kind: str) -> None:
        super().__init__(f"simulated crash: {kind}")
        self.kind = kind


class JobCancelled(Exception):
    """Cooperative-cancel signal raised between replications; terminal."""


class DeadlineExceeded(JobCancelled):
    """The job's wall-clock deadline passed before it finished."""


class Overloaded(RuntimeError):
    """The server cannot accept the submission right now (full or draining).

    ``retry_after`` is the server's backoff hint in seconds — the value of
    the ``Retry-After`` header on the 503 response.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


# --------------------------------------------------------------------------
# RetryPolicy
# --------------------------------------------------------------------------

#: Module-level jitter source for callers that don't inject their own rng.
_JITTER_RNG = random.Random()


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and full jitter.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    initial attempt plus up to two retries.  The backoff before retry
    ``n`` (1-based attempt that just failed) is drawn uniformly from
    ``[0, min(max_delay, base_delay * 2**(n-1))]`` — AWS-style *full
    jitter*, which decorrelates a thundering herd of clients retrying the
    same overloaded server.  ``jitter=False`` makes the delay the
    deterministic upper bound instead (tests, reproducible benchmarks).

    Classification: an error is retryable when it is an instance of one of
    ``retryable_errors``.  :class:`JobCancelled` is never retried, whatever
    the tuple says.
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    max_delay: float = 5.0
    jitter: bool = True
    retryable_errors: tuple[type[BaseException], ...] = (
        TransientError,
        ConnectionError,
        TimeoutError,
        OSError,
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be positive, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")

    def is_retryable(self, error: BaseException) -> bool:
        if isinstance(error, JobCancelled):
            return False
        return isinstance(error, self.retryable_errors)

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff after the ``attempt``-th failure (1-based)."""
        cap = min(self.max_delay, self.base_delay * (2.0 ** max(attempt - 1, 0)))
        if not self.jitter:
            return cap
        return (rng or _JITTER_RNG).uniform(0.0, cap)

    def call(
        self,
        fn: Callable[[], object],
        *,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> object:
        """Run ``fn`` under this policy; returns its result or re-raises.

        Terminal errors and the final attempt's error propagate unchanged;
        ``on_retry(attempt, error)`` fires before each backoff sleep.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except Exception as error:
                if attempt >= self.max_attempts or not self.is_retryable(error):
                    raise
                if on_retry is not None:
                    on_retry(attempt, error)
                sleep(self.delay(attempt, rng))


# --------------------------------------------------------------------------
# JobJournal
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class JournalEntry:
    """One journaled submission awaiting a terminal mark."""

    job_id: str
    scenario: dict
    deadline: float | None = None
    recorded_at: float = 0.0


class JobJournal:
    """Append-only, crash-safe journal of accepted (not yet finished) jobs.

    One JSONL file: ``{"kind": "submit", ...}`` lines record acceptance,
    ``{"kind": "mark", ...}`` lines record terminal states.  Every append is
    flushed *and* fsynced before the submission is acknowledged, so a
    ``kill -9`` can lose at most a submission the client never saw accepted.
    Reads tolerate a torn final line (a crash mid-append) exactly like the
    JSONL result store: the undecodable tail reads as absent.

    The journal is intentionally tiny — submissions, not results.  Replay
    (:meth:`pending` + :meth:`JobManager.replay_journal`) happens through the
    normal submission path, whose content-hash dedup and store-cached fast
    path guarantee a job that crashed *after* persisting its replications
    but *before* its mark is answered from the store with zero duplicate
    simulations.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging cosmetics
        return f"JobJournal({str(self.path)!r})"

    # -------------------------------------------------------------- writing
    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def record(
        self, job_id: str, scenario: "Scenario", deadline: float | None = None
    ) -> None:
        """Journal an accepted submission (called *before* it is queued)."""
        self._append(
            {
                "kind": "submit",
                "id": job_id,
                "scenario": scenario.to_dict(),
                "deadline": deadline,
                "recorded_at": time.time(),  # repro: noqa[CLK001] - persisted wall-clock metadata
            }
        )

    def record_entry(self, entry: JournalEntry) -> None:
        """Re-journal a replayed entry verbatim (replay overflow path)."""
        self._append(
            {
                "kind": "submit",
                "id": entry.job_id,
                "scenario": entry.scenario,
                "deadline": entry.deadline,
                "recorded_at": entry.recorded_at or time.time(),  # repro: noqa[CLK001] - persisted wall-clock metadata
            }
        )

    def mark(self, job_id: str, state: str) -> None:
        """Record a job's terminal state; its submit entry stops being pending."""
        self._append({"kind": "mark", "id": job_id, "state": state, "at": time.time()})  # repro: noqa[CLK001] - persisted wall-clock metadata

    def reset(self) -> None:
        """Truncate the journal (boot-time replay takes ownership of entries)."""
        with self._lock:
            self.path.write_text("", encoding="utf-8")

    # -------------------------------------------------------------- reading
    def pending(self) -> list[JournalEntry]:
        """Submissions with no terminal mark, in acceptance order."""
        entries: dict[str, JournalEntry] = {}
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of a crashed append
            if not isinstance(record, dict):
                continue
            kind = record.get("kind")
            if kind == "submit":
                try:
                    entry = JournalEntry(
                        job_id=str(record["id"]),
                        scenario=dict(record["scenario"]),
                        deadline=(
                            float(record["deadline"])
                            if record.get("deadline") is not None
                            else None
                        ),
                        recorded_at=float(record.get("recorded_at", 0.0)),
                    )
                except (KeyError, TypeError, ValueError):
                    continue  # malformed record: skip, never raise
                entries[entry.job_id] = entry
            elif kind == "mark":
                entries.pop(str(record.get("id")), None)
        return list(entries.values())

    def backlog(self) -> int:
        """How many journaled submissions have not reached a terminal state."""
        return len(self.pending())


def journal_for_store(store: "StoreBackend | None") -> JobJournal | None:
    """The conventional journal location for a store, or ``None``.

    Lives *in the store dir* so journal and results share fate across
    restarts: ``<root>/jobs.journal`` beside a JSONL store's cells,
    ``<file>.db.jobs.journal`` beside a SQLite store.  Chaos wrappers
    delegate to the store they wrap (the journal itself is not chaos-wrapped:
    it is the recovery mechanism, not the system under test).
    """
    if store is None:
        return None
    inner = getattr(store, "inner", None)
    if inner is not None:
        return journal_for_store(inner)
    root = getattr(store, "root", None)
    if root is not None:
        return JobJournal(Path(root) / "jobs.journal")
    path = getattr(store, "path", None)
    if path is not None:
        path = Path(path)
        return JobJournal(path.with_name(path.name + ".jobs.journal"))
    return None


# --------------------------------------------------------------------------
# FaultInjector
# --------------------------------------------------------------------------


class FaultInjector:
    """Seeded, deterministic fault decisions, shared by every chaos hook.

    Each fault *kind* (``"append"``, ``"load"``, ``"http-500"``,
    ``"http-reset"``, ``"worker-crash"``, …) draws from its own
    ``random.Random(f"{seed}:{kind}")`` stream, so decisions for one kind are
    reproducible regardless of how other kinds interleave.  Per kind:

    * ``rates[kind]`` — probability a roll fires (``1.0`` = always);
    * ``skips[kind]`` — the first N rolls never fire (lets a test say
      "succeed twice, then die mid-cell");
    * ``caps[kind]`` — at most N fires ever (lets a test say "fail twice,
      then recover", guaranteeing eventual success under retry);
    * ``delays[kind]`` — seconds of injected latency for
      :meth:`maybe_delay` (slow I/O simulation).

    ``calls``/``fired`` counters make assertions cheap.  Thread-safe.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Mapping[str, float] | None = None,
        skips: Mapping[str, int] | None = None,
        caps: Mapping[str, int] | None = None,
        delays: Mapping[str, float] | None = None,
    ) -> None:
        self.seed = seed
        self.rates = dict(rates or {})
        self.skips = dict(skips or {})
        self.caps = dict(caps or {})
        self.delays = dict(delays or {})
        self.calls: Counter[str] = Counter()
        self.fired: Counter[str] = Counter()
        self._rngs: dict[str, random.Random] = {}
        self._lock = threading.Lock()

    def _rng(self, kind: str) -> random.Random:
        rng = self._rngs.get(kind)
        if rng is None:
            rng = self._rngs[kind] = random.Random(f"{self.seed}:{kind}")
        return rng

    def roll(self, kind: str) -> bool:
        """Deterministically decide whether fault ``kind`` fires this call."""
        with self._lock:
            self.calls[kind] += 1
            rate = self.rates.get(kind, 0.0)
            if rate <= 0.0:
                return False
            if self.calls[kind] <= self.skips.get(kind, 0):
                return False
            cap = self.caps.get(kind)
            if cap is not None and self.fired[kind] >= cap:
                return False
            fire = rate >= 1.0 or self._rng(kind).random() < rate
            if fire:
                self.fired[kind] += 1
            return fire

    def maybe_fail(self, kind: str, message: str | None = None) -> None:
        """Raise a retryable :class:`InjectedFault` when the roll fires."""
        if self.roll(kind):
            raise InjectedFault(kind, message)

    def maybe_crash(self, kind: str = "worker-crash") -> None:
        """Raise :class:`SimulatedCrash` (kills the worker thread) on fire."""
        if self.roll(kind):
            raise SimulatedCrash(kind)

    def maybe_delay(
        self, kind: str = "slow", sleep: Callable[[float], None] = time.sleep
    ) -> None:
        """Inject ``delays[kind]`` seconds of latency, if configured."""
        delay = self.delays.get(kind, 0.0)
        if delay > 0.0:
            sleep(delay)

    # ------------------------------------------------------------- spec form
    def spec_params(self) -> str:
        """Canonical ``key=value&…`` form (the chaos store spec suffix)."""
        parts: list[str] = [f"seed={self.seed}"]
        for kind in sorted(self.rates):
            parts.append(f"{kind}_fail={self.rates[kind]:g}")
            if kind in self.skips:
                parts.append(f"{kind}_fail_skip={self.skips[kind]}")
            if kind in self.caps:
                parts.append(f"{kind}_fail_max={self.caps[kind]}")
        if "slow" in self.delays:
            parts.append(f"slow_ms={self.delays['slow'] * 1000.0:g}")
        return "&".join(parts)
