"""Benchmark: result-store backends — append throughput, cached_count latency.

The store-backend promise is twofold: appends stay cheap as a cell grows
(both backends write only the new replications), and the cached-probe hot
path — the service's repeated ``POST /scenarios`` cache hit — must not do
O(stored-replications) work:

* :class:`~repro.scenarios.store_sqlite.SqliteStore` answers ``cached_count``
  from maintained counters: a **cold** probe (fresh process/connection, no
  warm cache) is O(1) and must not scale from 1k to 10k stored replications
  — asserted below, per the issue's acceptance criteria.
* :class:`~repro.scenarios.store.JsonlStore` pays one full parse on a cold
  probe, but its mtime-invalidated per-hash cache makes every **warm** probe
  a ``stat`` — also asserted not to scale.

Populating uses synthetic :class:`StoredRun` payloads (no simulation), so
the numbers isolate storage cost.  Everything lands in
``benchmark_results/BENCH_store.json``; the smoke-marked subset (run by
``scripts/bench_smoke.sh``) checks cross-backend round-trip semantics
without timing assertions.  Scale via ``REPRO_BENCH_STORE_REPS``
(default 10_000).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.engine.result import SimulationResult
from repro.scenarios import Scenario, StoredRun, open_store

#: Artifact name fixed by the acceptance criteria of the store-backend issue.
ARTIFACT_NAME = "BENCH_store.json"

APPEND_BATCH = 500


def bench_store_reps() -> int:
    """Stored replications at the large measurement point (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_STORE_REPS", 10_000))


def backend_specs(tmp_path) -> dict[str, str]:
    return {
        "jsonl": f"jsonl:{tmp_path / 'jsonl_store'}",
        "sqlite": f"sqlite:{tmp_path / 'store.db'}",
    }


def scenario_for(replications: int) -> Scenario:
    return Scenario.parse(f"one-fail-adaptive k=32 reps={replications} seed=9")


def synthetic_runs(scenario: Scenario) -> list[StoredRun]:
    seeds = scenario.seeds()
    return [
        StoredRun(
            replication=replication,
            seed=seeds[replication],
            elapsed_seconds=0.001,
            result=SimulationResult(
                solved=True,
                makespan=100 + replication,
                k=32,
                slots_simulated=100 + replication,
                successes=32,
                collisions=5,
                silences=7,
                protocol="one-fail-adaptive",
                engine="fair",
                seed=seeds[replication],
                metadata={},
            ),
        )
        for replication in range(scenario.replications)
    ]


def populate(spec: str, scenario: Scenario) -> float:
    """Append all of ``scenario``'s replications in batches; returns seconds."""
    store = open_store(spec)
    runs = synthetic_runs(scenario)
    started = time.perf_counter()
    for base in range(0, len(runs), APPEND_BATCH):
        store.append(scenario, runs[base : base + APPEND_BATCH])
    elapsed = time.perf_counter() - started
    store.close()
    return elapsed


def cold_probe_seconds(spec: str, scenario: Scenario, attempts: int = 3) -> float:
    """Best-of-N cold ``cached_count``: fresh store instance, empty caches."""
    best = float("inf")
    for _ in range(attempts):
        store = open_store(spec)
        started = time.perf_counter()
        count = store.cached_count(scenario)
        best = min(best, time.perf_counter() - started)
        store.close()
        assert count == scenario.replications, "benchmark invariant: cell fully stored"
    return best


def warm_probe_seconds(spec: str, scenario: Scenario, calls: int = 100) -> float:
    """Mean warm ``cached_count``: repeated probes on one open instance."""
    store = open_store(spec)
    store.cached_count(scenario)  # prime any cache
    started = time.perf_counter()
    for _ in range(calls):
        store.cached_count(scenario)
    elapsed = (time.perf_counter() - started) / calls
    store.close()
    return elapsed


@pytest.mark.smoke
def test_store_backends_round_trip_smoke(tmp_path):
    """Both backends persist and serve a synthetic cell identically."""
    scenario = scenario_for(200)
    for name, spec in backend_specs(tmp_path).items():
        populate(spec, scenario)
        store = open_store(spec)
        assert store.cached_count(scenario) == 200, name
        loaded = store.load(scenario)
        assert sorted(loaded) == list(range(200)), name
        assert loaded[0].result.makespan == 100, name
        store.close()


def test_store_append_and_probe_latency(tmp_path, results_dir):
    """Measure both backends at 1k and full scale; assert probe scaling."""
    large = bench_store_reps()
    small = max(large // 10, 1)
    points = {small: scenario_for(small), large: scenario_for(large)}
    backends: dict[str, dict[str, object]] = {}
    for name, spec in backend_specs(tmp_path).items():
        append_seconds: dict[str, float] = {}
        cold_ms: dict[str, float] = {}
        warm_us: dict[str, float] = {}
        for replications, scenario in points.items():
            scoped = f"{spec}.{replications}" if name == "sqlite" else f"{spec}-{replications}"
            append_seconds[str(replications)] = populate(scoped, scenario)
            cold_ms[str(replications)] = cold_probe_seconds(scoped, scenario) * 1e3
            warm_us[str(replications)] = warm_probe_seconds(scoped, scenario) * 1e6
        backends[name] = {
            "append_runs_per_sec": large / append_seconds[str(large)],
            "append_seconds": append_seconds,
            "cold_cached_count_ms": cold_ms,
            "warm_cached_count_us": warm_us,
        }
    sqlite_cold = backends["sqlite"]["cold_cached_count_ms"]
    jsonl_warm = backends["jsonl"]["warm_cached_count_us"]
    artifact = {
        "benchmark": "store backend append throughput + cached_count latency",
        "replications": {"small": small, "large": large},
        "backends": backends,
        "sqlite_cold_probe_scaling": sqlite_cold[str(large)]
        / max(sqlite_cold[str(small)], 1e-9),
    }
    path = results_dir / ARTIFACT_NAME
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(
        f"\nsqlite cold probe: {sqlite_cold[str(small)]:.3f} ms @ {small} -> "
        f"{sqlite_cold[str(large)]:.3f} ms @ {large}   jsonl warm probe: "
        f"{jsonl_warm[str(large)]:.1f} us @ {large}   -> {path}"
    )
    # Acceptance: SqliteStore's cached_count does not scale with stored
    # replications.  Generous slack (5x or an absolute 5 ms floor) keeps CI
    # noise out while still failing loudly on any O(rows) regression — the
    # JSONL cold probe grows ~10x over the same range.
    assert sqlite_cold[str(large)] <= max(5.0 * sqlite_cold[str(small)], 5.0), (
        f"sqlite cold cached_count scaled with stored rows: {sqlite_cold}"
    )
    # The satellite fix: JsonlStore's warm probe is a stat, not a re-parse.
    assert jsonl_warm[str(large)] <= max(5.0 * jsonl_warm[str(small)], 5_000.0), (
        f"jsonl warm cached_count re-parses the file: {jsonl_warm}"
    )
