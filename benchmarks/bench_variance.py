"""Benchmark E7: predictability — makespan dispersion per protocol.

Quantifies the stability claim of Section 5 ("very stable and efficient
behavior" of the two new protocols versus the unpredictability of Log-fails
Adaptive) by measuring the coefficient of variation of the makespan over
independently seeded runs.  Writes ``benchmark_results/variance.md``.
"""

from __future__ import annotations

from benchmarks.conftest import bench_runs
from repro.experiments.variance import run_variance_experiment
from repro.util.tables import format_markdown_table


def test_makespan_dispersion(benchmark, results_dir):
    runs = max(bench_runs(), 5)
    result = benchmark.pedantic(
        run_variance_experiment,
        kwargs={"k_values": (1_000, 10_000), "runs": runs, "seed": 2011},
        rounds=1,
        iterations=1,
    )
    headers = ["protocol", "k", "mean makespan", "std", "CoV", "relative spread"]
    rows = [
        [cell.label, cell.k, f"{cell.makespan.mean:.0f}", f"{cell.makespan.std:.0f}",
         f"{cell.coefficient_of_variation:.4f}", f"{cell.spread:.4f}"]
        for cell in result.cells
    ]
    (results_dir / "variance.md").write_text(
        "# Predictability: makespan dispersion per protocol\n\n"
        f"runs per cell: {runs}\n\n" + format_markdown_table(headers, rows) + "\n"
    )
    # The paper's stability claim, in its weakest testable form: the new
    # protocols' dispersion at k = 10^4 is below 5%, and Log-fails Adaptive's
    # is larger than One-fail Adaptive's.
    ofa = result.cell("ofa", 10_000).coefficient_of_variation
    ebb = result.cell("ebb", 10_000).coefficient_of_variation
    lfa = result.cell("lfa-xt2", 10_000).coefficient_of_variation
    assert ofa < 0.05
    assert ebb < 0.05
    assert lfa > ofa
