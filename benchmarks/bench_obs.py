"""Benchmark: observability overhead on the cached fast path.

The observability layer (PR 9) promises to be effectively free: every metric
mutation checks one module-level boolean first, and spans without a
configured sink cost a ContextVar set/reset.  This benchmark times the
hottest instrumented path — :meth:`~repro.scenarios.session.Session.run_cached`,
the probe the service answers cached submissions from (store probe + load,
zero new simulations) — with instrumentation enabled vs disabled.  Shared
CI boxes make single timings noisy, so the estimator is the *median of
paired ratios*: many short disabled/enabled chunk pairs back to back, each
pair yielding one enabled/disabled ratio, with the median robust to
scheduling spikes that hit one chunk.  The asserted bound: instrumented
throughput within 5% of uninstrumented.  The artefact goes to
``benchmark_results/BENCH_obs.json``.

The smoke-marked subset checks semantics only (counters move when enabled,
freeze when disabled) without timing assertions.
"""

from __future__ import annotations

import json
import statistics
import time

import pytest

from benchmarks.conftest import RESULTS_DIR  # noqa: F401  (fixture home)
from repro.obs import REGISTRY, configure_tracing, set_enabled
from repro.scenarios import Scenario, Session

#: Artifact name fixed by the acceptance criteria of the observability issue.
ARTIFACT_NAME = "BENCH_obs.json"

SPEC = "one-fail-adaptive k=64 reps=5 seed=2011"

#: Cached run_cached() calls per timed chunk, and disabled/enabled pairs.
CHUNK = 200
PAIRS = 15

#: The acceptance bound: instrumented throughput within 5% of uninstrumented.
MAX_OVERHEAD = 0.05


@pytest.fixture
def warm_session(tmp_path):
    """A session whose store already holds every replication of ``SPEC``."""
    session = Session(store_dir=tmp_path / "store")
    scenario = Scenario.parse(SPEC)
    first = session.run(scenario)
    assert first.new_runs == scenario.replications
    configure_tracing(None)  # spans must be sink-less for the fast path
    yield session, scenario
    set_enabled(True)


def _measure(session: Session, scenario: Scenario, requests: int) -> float:
    started = time.perf_counter()
    for _ in range(requests):
        result = session.run_cached(scenario)
        assert result is not None, "benchmark invariant: cache must serve"
    return time.perf_counter() - started


@pytest.mark.smoke
def test_obs_toggle_semantics_smoke(warm_session):
    """Counters move when enabled and freeze when disabled; cache still serves."""
    session, scenario = warm_session

    def hits() -> float:
        family = REGISTRY.snapshot().get("repro_session_cache_lookups_total")
        if family is None:
            return 0.0
        return float(family["series"].get('{result="hit"}', 0.0))

    set_enabled(True)
    before = hits()
    assert session.run_cached(scenario).cached_runs == scenario.replications
    assert hits() == before + 1
    set_enabled(False)
    assert session.run_cached(scenario).cached_runs == scenario.replications
    assert hits() == before + 1, "disabled instrumentation must not record"
    set_enabled(True)


def test_obs_overhead_on_cached_path(warm_session, results_dir):
    """Instrumented cached throughput within MAX_OVERHEAD of uninstrumented."""
    session, scenario = warm_session
    _measure(session, scenario, 2 * CHUNK)  # warm caches before timing
    ratios: list[float] = []
    enabled_total = disabled_total = 0.0
    # Alternate which arm runs first within a pair: monotone drift across a
    # pair (frequency scaling, cache warmth) would otherwise bias whichever
    # arm consistently ran second.
    for index in range(PAIRS):
        arms = [False, True] if index % 2 == 0 else [True, False]
        timed: dict[bool, float] = {}
        for arm in arms:
            set_enabled(arm)
            timed[arm] = _measure(session, scenario, CHUNK)
        ratios.append(timed[True] / timed[False])
        disabled_total += timed[False]
        enabled_total += timed[True]
    enabled_rate = PAIRS * CHUNK / enabled_total
    disabled_rate = PAIRS * CHUNK / disabled_total
    overhead = statistics.median(ratios) - 1.0
    artifact = {
        "benchmark": "observability overhead, cached session fast path",
        "scenario": SPEC,
        "requests_per_chunk": CHUNK,
        "pairs": PAIRS,
        "enabled": {"seconds": enabled_total, "requests_per_sec": enabled_rate},
        "disabled": {"seconds": disabled_total, "requests_per_sec": disabled_rate},
        "overhead_fraction": overhead,
        "ratio_spread": [min(ratios) - 1.0, max(ratios) - 1.0],
        "max_overhead_fraction": MAX_OVERHEAD,
    }
    path = results_dir / ARTIFACT_NAME
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(
        f"\nobs on: {enabled_rate:.0f} runs/s   off: {disabled_rate:.0f} runs/s   "
        f"median overhead: {overhead:+.2%}   -> {path}"
    )
    assert overhead <= MAX_OVERHEAD, (
        f"instrumentation overhead {overhead:+.2%} exceeds {MAX_OVERHEAD:.0%} "
        "on the cached fast path"
    )
