"""Benchmark E1: regenerate Figure 1 (average steps to solve k-selection vs k).

The benchmark times one complete Figure 1 sweep (all five curves of Section 5
at the configured scale) and writes the reproduced series — the data behind
the paper's log-log plot — to ``benchmark_results/figure1.md`` together with
an ASCII rendering of the figure.
"""

from __future__ import annotations

from benchmarks.conftest import bench_max_k, bench_runs
from repro.experiments.config import ExperimentConfig, paper_k_values, paper_protocol_suite
from repro.experiments.export import write_series_dat
from repro.experiments.figure1 import reproduce_figure1
from repro.util.tables import format_markdown_table


def _run_sweep():
    config = ExperimentConfig(
        k_values=paper_k_values(max_k=bench_max_k()),
        runs=bench_runs(),
        seed=2011,
    )
    return reproduce_figure1(config=config)


def test_figure1_reproduction(benchmark, results_dir):
    """Time the Figure 1 sweep and write the reproduced curves."""
    figure = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    specs = paper_protocol_suite()
    labels = {spec.key: spec.label for spec in specs}
    k_values = sorted({k for key in figure.series for k in figure.series[key][0]})
    headers = ["k"] + [labels[spec.key] for spec in specs]
    rows = []
    for k in k_values:
        row = [k]
        for spec in specs:
            ks, means = figure.series[spec.key]
            row.append(f"{means[ks.index(k)]:.1f}" if k in ks else "-")
        rows.append(row)

    report = (
        "# Figure 1 (reproduced): steps to solve static k-selection, per number of nodes k\n\n"
        f"runs per point: {bench_runs()}, max k: {bench_max_k()}\n\n"
        + format_markdown_table(headers, rows)
        + "\n\n```\n"
        + figure.render_plot(width=70, height=22)
        + "\n```\n"
    )
    (results_dir / "figure1.md").write_text(report)
    write_series_dat(figure.sweep, results_dir / "figure1_series")

    # Sanity: every curve was measured at every k and makespans exceed k.
    for key, (ks, means) in figure.series.items():
        assert ks == k_values
        assert all(mean >= k for mean, k in zip(means, ks)), key
