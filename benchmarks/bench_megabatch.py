"""Benchmark: cross-cell mega-batching of the whole Figure 1 sweep.

The per-cell batch engines already replaced R interpreted runs with one numpy
lockstep pass per (protocol, k) cell — but a Figure-1-scale sweep is dozens of
such cells, and on a cell of a few dozen rows every numpy dispatch costs as
much as the arithmetic it performs.  The mega-batch engines
(``MegaFairEngine`` / ``MegaWindowEngine``) fuse *all* same-kind cells of the
sweep into one padded lockstep kernel, so the fixed per-slot dispatch cost is
paid once per sweep instead of once per cell.

This benchmark times the whole paper suite (``paper_protocol_suite()`` — both
Log-Fails Adaptive variants, One-Fail Adaptive, Exp Back-on/Back-off and
LogLog-Iterated-Backoff) across the full ``paper_k_values`` grid through the
*same* ``run_sweep(workers=1)`` entry point three ways:

* per-run      — ``batch=False``: one interpreted engine run per replication;
* per-cell     — ``fuse=False``: one batch-engine pass per (protocol, k) cell;
* fused        — the default: one mega-batch kernel per protocol kind.

and writes the three wall clocks plus the pairwise speedups to
``BENCH_megabatch.json``.  The smoke-marked subset (run by
``scripts/bench_smoke.sh``) checks that the fused path is the sweep default,
that ``fuse=False`` still routes to the per-cell batch engines, that fused
sweeps are deterministic, and that fused and per-cell sweeps stay
distributionally interchangeable for every protocol of the suite; the full
run additionally asserts the headline claim of the mega-batch issue: the
fused sweep must run ≥ 3× faster than the per-cell batch sweep on the
Figure 1 grid at ``workers=1``.  The batch and fused paths are each timed
best-of-2 to damp scheduler noise before taking that ratio; the per-run wall
clock is reported for scale but carries no assertion (bench_batch.py owns
the per-run-vs-batch bar).
"""

from __future__ import annotations

import json
import math
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import bench_max_k, bench_runs
from repro.experiments.config import ExperimentConfig, paper_k_values
from repro.experiments.figure1 import paper_protocol_suite
from repro.experiments.runner import SweepResult, run_sweep

#: Artifact name fixed by the acceptance criteria of the mega-batch issue.
ARTIFACT_NAME = "BENCH_megabatch.json"

#: Engines the fused sweep must route to, per protocol kind.
_FUSED_ENGINES = {"mega", "mega-window"}
_PER_CELL_ENGINES = {"batch", "batch-window"}


def _figure1_config(runs: int, **overrides: object) -> ExperimentConfig:
    return ExperimentConfig(
        k_values=paper_k_values(max_k=bench_max_k()),
        runs=runs,
        seed=2011,
        **overrides,  # type: ignore[arg-type]
    )


def _timed_figure1(config: ExperimentConfig, fuse: bool | None) -> tuple[float, SweepResult]:
    """Wall-clock seconds of the whole paper suite at ``workers=1``."""
    started = time.perf_counter()
    sweep = run_sweep(paper_protocol_suite(), config, workers=1, fuse=fuse)
    elapsed = time.perf_counter() - started
    for cell in sweep.cells.values():
        assert cell.all_solved
    return elapsed, sweep


def _best_of_two(config: ExperimentConfig, fuse: bool | None) -> tuple[float, SweepResult]:
    return min(
        (_timed_figure1(config, fuse) for _ in range(2)),
        key=lambda timing: timing[0],
    )


@pytest.mark.smoke
def test_fused_is_default_and_opt_out_routes_per_cell_smoke():
    """The sweep default fuses cells; ``fuse=False`` restores per-cell engines."""
    config = ExperimentConfig(k_values=[40, 60], runs=2, seed=5)
    fused = run_sweep(paper_protocol_suite(), config, workers=1)
    engines = {result.engine for cell in fused.cells.values() for result in cell.results}
    assert engines <= _FUSED_ENGINES, f"fused sweep used unexpected engines {engines}"
    per_cell = run_sweep(paper_protocol_suite(), config, workers=1, fuse=False)
    engines = {result.engine for cell in per_cell.cells.values() for result in cell.results}
    assert engines <= _PER_CELL_ENGINES, f"fuse=False used unexpected engines {engines}"


@pytest.mark.smoke
def test_fused_sweep_deterministic_smoke():
    """Two fused sweeps of the same config are bit-identical."""
    config = ExperimentConfig(k_values=[50], runs=4, seed=7)
    first = run_sweep(paper_protocol_suite(), config, workers=1)
    second = run_sweep(paper_protocol_suite(), config, workers=1)
    for key, cell in first.cells.items():
        assert cell.results == second.cells[key].results


@pytest.mark.smoke
def test_fused_distributionally_matches_per_cell_smoke():
    """Fused and per-cell sweeps sample the same makespan distribution.

    Checked for *every* protocol of the paper suite — each one exercises its
    own fused state path (LFA flavor caches, OFA parity schedule, the
    windowed occupancy kernel) — with independent seeds and a 4σ bar on the
    difference of means.
    """
    runs = 60
    fused = run_sweep(
        paper_protocol_suite(),
        ExperimentConfig(k_values=[60], runs=runs, seed=3),
        workers=1,
    )
    per_cell = run_sweep(
        paper_protocol_suite(),
        ExperimentConfig(k_values=[60], runs=runs, seed=4),
        workers=1,
        fuse=False,
    )
    for key, fused_cell in fused.cells.items():
        fused_ms = np.asarray(fused_cell.makespans, dtype=float)
        cell_ms = np.asarray(per_cell.cells[key].makespans, dtype=float)
        pooled = math.sqrt(fused_ms.var(ddof=1) / runs + cell_ms.var(ddof=1) / runs)
        assert abs(fused_ms.mean() - cell_ms.mean()) / pooled < 4.0, (
            f"fused and per-cell makespans diverge for {key}"
        )


def test_megabatch_figure1_speedup(results_dir):
    """Whole-Figure-1 wall clock per-run vs per-cell vs fused, to BENCH_megabatch.json.

    The acceptance bar: the fused sweep runs the full paper grid ≥ 3× faster
    than the per-cell batch sweep at ``workers=1``.
    """
    runs = bench_runs()
    config = _figure1_config(runs)
    # Warm both code paths (imports, registry resolution, numpy dispatch
    # tables) before any timed pass.
    warmup = ExperimentConfig(k_values=[10], runs=1, seed=2011)
    run_sweep(paper_protocol_suite(), warmup, workers=1, fuse=False)
    run_sweep(paper_protocol_suite(), warmup, workers=1)

    # Note the per-run wall clock can *beat* the per-cell batch one at the
    # default runs=3: a 3-row cell pays ~20 numpy dispatches per slot against
    # the interpreted engine's plain-float arithmetic, and only amortises
    # once R grows (bench_batch.py measures that axis at R >= 100).  Fusion
    # restores the amortisation at small R by stacking all cells' rows.
    serial_seconds, serial_sweep = _timed_figure1(_figure1_config(runs, batch=False), fuse=None)
    batch_seconds, batch_sweep = _best_of_two(config, fuse=False)
    fused_seconds, fused_sweep = _best_of_two(config, fuse=None)

    engines = {
        result.engine for cell in serial_sweep.cells.values() for result in cell.results
    }
    assert engines <= {"fair", "window"}, f"batch=False used unexpected engines {engines}"

    engines = {
        result.engine for cell in fused_sweep.cells.values() for result in cell.results
    }
    assert engines <= _FUSED_ENGINES, f"fused sweep used unexpected engines {engines}"
    engines = {
        result.engine for cell in batch_sweep.cells.values() for result in cell.results
    }
    assert engines <= _PER_CELL_ENGINES, f"fuse=False used unexpected engines {engines}"

    fused_vs_batch = batch_seconds / fused_seconds if fused_seconds > 0 else float("inf")
    artifact = {
        "benchmark": "megabatch_figure1_speedup",
        "suite": sorted(spec.key for spec in paper_protocol_suite()),
        "k_values": paper_k_values(max_k=bench_max_k()),
        "runs": runs,
        "seed": 2011,
        "workers": 1,
        "per_run_seconds": round(serial_seconds, 4),
        "per_cell_batch_seconds": round(batch_seconds, 4),
        "fused_seconds": round(fused_seconds, 4),
        "speedup_fused_vs_per_cell_batch": round(fused_vs_batch, 2),
        "speedup_fused_vs_per_run": round(
            serial_seconds / fused_seconds if fused_seconds > 0 else float("inf"), 2
        ),
        "speedup_per_cell_batch_vs_per_run": round(
            serial_seconds / batch_seconds if batch_seconds > 0 else float("inf"), 2
        ),
    }
    (results_dir / ARTIFACT_NAME).write_text(json.dumps(artifact, indent=2) + "\n")

    # The 3x bar is a claim about the Figure 1 grid: the fused win is the
    # amortised per-slot dispatch cost, which only dominates once the sweep
    # has its long-makespan cells.  A truncated grid (REPRO_BENCH_MAX_K below
    # the paper's 10_000 default) still writes the artifact but skips the bar.
    figure1_scale = max(paper_k_values(max_k=bench_max_k())) >= 10_000
    if figure1_scale and os.environ.get("REPRO_BENCH_SKIP_SPEEDUP_ASSERT") != "1":
        assert fused_vs_batch >= 3.0, (
            f"expected the fused sweep >=3x faster than the per-cell batch sweep "
            f"on the Figure 1 grid, got {fused_vs_batch:.2f}x "
            f"(batch {batch_seconds:.2f}s, fused {fused_seconds:.2f}s)"
        )
