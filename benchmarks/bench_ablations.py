"""Benchmarks E3/E4: δ-sensitivity ablations for the paper's two protocols.

The paper fixes δ = 2.72 (One-fail Adaptive) and δ = 0.366 (Exp
Back-on/Back-off) without a sensitivity study; these benchmarks sweep δ over
each theorem's admissible range and record the measured steps/k ratio next to
the analysis constant, justifying the defaults recorded in DESIGN.md.
"""

from __future__ import annotations

from benchmarks.conftest import bench_runs
from repro.experiments.ablations import run_ebb_delta_ablation, run_ofa_delta_ablation
from repro.util.tables import format_markdown_table


def _write_report(result, path, title):
    headers = ["delta", "k", "mean steps/k", "std", "analysis constant"]
    rows = [
        [f"{cell.delta:.3f}", cell.k, f"{cell.ratio.mean:.2f}", f"{cell.ratio.std:.2f}",
         f"{cell.analysis_constant:.2f}"]
        for cell in result.cells
    ]
    path.write_text(f"# {title}\n\n" + format_markdown_table(headers, rows) + "\n")


def test_ofa_delta_ablation(benchmark, results_dir):
    """Experiment E4: One-fail Adaptive δ sweep over (e, 2.99]."""
    result = benchmark.pedantic(
        run_ofa_delta_ablation,
        kwargs={"k_values": (1_000,), "runs": bench_runs(), "seed": 7},
        rounds=1,
        iterations=1,
    )
    _write_report(result, results_dir / "ablation_ofa_delta.md",
                  "Ablation: One-fail Adaptive delta sensitivity (k = 1000)")
    # The measured ratio should track the analysis constant 2(delta+1) closely
    # (Section 5 observes the analysis is tight): within 20% for every delta.
    for cell in result.cells:
        assert abs(cell.ratio.mean - cell.analysis_constant) / cell.analysis_constant < 0.2


def test_ebb_delta_ablation(benchmark, results_dir):
    """Experiment E3: Exp Back-on/Back-off δ sweep over (0, 1/e)."""
    result = benchmark.pedantic(
        run_ebb_delta_ablation,
        kwargs={"k_values": (1_000,), "runs": bench_runs(), "seed": 11},
        rounds=1,
        iterations=1,
    )
    _write_report(result, results_dir / "ablation_ebb_delta.md",
                  "Ablation: Exp Back-on/Back-off delta sensitivity (k = 1000)")
    # The measured ratio stays well below the (loose) analysis constant.
    for cell in result.cells:
        assert cell.ratio.mean < cell.analysis_constant
