"""Benchmark E2: regenerate Table 1 (steps/nodes ratio per k and per protocol).

Reuses the session-level Figure 1 sweep (Table 1 is the same data divided by
k) and writes both the reproduced table and the measured-vs-paper comparison
to ``benchmark_results/``.  The timed portion is the ratio aggregation; the
heavy sweep itself is timed by ``bench_figure1.py``.
"""

from __future__ import annotations

from benchmarks.conftest import bench_max_k, bench_runs
from repro.experiments.config import paper_protocol_suite
from repro.experiments.table1 import PAPER_TABLE1
from repro.util.tables import format_markdown_table


def _build_table(figure1_sweep):
    specs = paper_protocol_suite()
    sweep = figure1_sweep.sweep
    k_values = list(sweep.config.k_values)
    headers = ["Protocol"] + [str(k) for k in k_values] + ["Analysis"]
    rows = []
    for spec in specs:
        row = [spec.label]
        for k in k_values:
            row.append(f"{sweep.cell(spec.key, k).mean_ratio:.1f}")
        row.append(spec.analysis_text())
        rows.append(row)
    return headers, rows, k_values, specs, sweep


def test_table1_reproduction(benchmark, results_dir, figure1_sweep):
    """Aggregate the sweep into Table 1 and compare with the paper's values."""
    headers, rows, k_values, specs, sweep = benchmark.pedantic(
        _build_table, args=(figure1_sweep,), rounds=1, iterations=1
    )

    comparison_headers = ["Protocol", "k", "measured steps/k", "paper steps/k"]
    comparison_rows = []
    for spec in specs:
        reference = PAPER_TABLE1.get(spec.key, {})
        for k in k_values:
            paper_value = reference.get(k, "-")
            comparison_rows.append(
                [
                    spec.label,
                    k,
                    f"{sweep.cell(spec.key, k).mean_ratio:.1f}",
                    paper_value if isinstance(paper_value, str) else f"{paper_value:.1f}",
                ]
            )

    report = (
        "# Table 1 (reproduced): ratio steps/nodes as a function of the number of nodes k\n\n"
        f"runs per point: {bench_runs()}, max k: {bench_max_k()}\n\n"
        + format_markdown_table(headers, rows)
        + "\n\n## Measured vs paper\n\n"
        + format_markdown_table(comparison_headers, comparison_rows)
        + "\n"
    )
    (results_dir / "table1.md").write_text(report)

    # Sanity checks on the headline shape of Table 1 at the largest swept k:
    # One-fail Adaptive's ratio sits near its analysis constant of 7.4 from
    # k >= 1000 on, and Exp Back-on/Back-off stays below its 14.9 bound.
    largest_k = max(k_values)
    ofa_ratio = sweep.cell("ofa", largest_k).mean_ratio
    ebb_ratio = sweep.cell("ebb", largest_k).mean_ratio
    if largest_k >= 1_000:
        assert 6.0 < ofa_ratio < 9.0
    assert ebb_ratio < 14.9
