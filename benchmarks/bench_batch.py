"""Benchmark E9: vectorised batch replication vs the per-run engines.

A Figure-1-scale sweep cell is R replications of one (protocol, k) point.
The per-run path costs R Python-interpreted loops; the batch engines run all
R in numpy lockstep — ``BatchFairEngine`` one ``Generator.random(R)`` draw
per slot, ``BatchWindowEngine`` one multinomial occupancy matrix per
contention window.  This benchmark measures the throughput of both paths
through the *same* ``run_sweep(workers=1)`` entry point — so the numbers
include the full dispatch/executor overhead a user actually pays — and
writes the per-k trajectories to two artifacts:

* ``BENCH_batch.json``        — One-Fail Adaptive (fair path): ``batch=False``
  per-run vs ``batch=True`` vectorised, per network size k;
* ``BENCH_batch_window.json`` — Exp Back-on/Back-off (windowed path): per-run
  ``WindowEngine`` vs vectorised ``BatchWindowEngine`` at k ∈ {256, 1024,
  4096}.

The smoke-marked subset (run by ``scripts/bench_smoke.sh``) checks both
paths stay distributionally interchangeable and that registry eligibility
routes fair and windowed cells to their own batch engines; the full run
additionally asserts the ≥5× speedup promise for Figure-1-scale cells
(k ≥ 256, R ≥ 100) at ``workers=1`` on both trajectories.
"""

from __future__ import annotations

import json
import math
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import bench_max_k, bench_runs
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.experiments.config import ExperimentConfig, ProtocolSpec
from repro.experiments.runner import run_sweep

#: Artifact name fixed by the acceptance criteria of the batch-engine issue.
ARTIFACT_NAME = "BENCH_batch.json"

#: Artifact name fixed by the acceptance criteria of the batch-window issue.
WINDOW_ARTIFACT_NAME = "BENCH_batch_window.json"


def _ofa_spec() -> ProtocolSpec:
    return ProtocolSpec(key="ofa", label="One-Fail Adaptive", factory=lambda k: OneFailAdaptive())


def _ebb_spec() -> ProtocolSpec:
    return ProtocolSpec(
        key="ebb", label="Exp Back-on/Back-off", factory=lambda k: ExpBackonBackoff()
    )


def _timed_sweep(k: int, runs: int, batch: bool) -> tuple[float, list[int]]:
    """Wall-clock seconds and makespans of one (OFA, k) cell at workers=1."""
    config = ExperimentConfig(k_values=[k], runs=runs, seed=2011, batch=batch)
    started = time.perf_counter()
    sweep = run_sweep([_ofa_spec()], config, workers=1)
    elapsed = time.perf_counter() - started
    cell = sweep.cell("ofa", k)
    assert cell.all_solved
    return elapsed, cell.makespans


def _timed_window_sweep(k: int, runs: int, batch: bool) -> tuple[float, list[int]]:
    """Wall-clock seconds and makespans of one (EBB, k) cell at workers=1."""
    config = ExperimentConfig(k_values=[k], runs=runs, seed=2011, batch=batch)
    started = time.perf_counter()
    sweep = run_sweep([_ebb_spec()], config, workers=1)
    elapsed = time.perf_counter() - started
    cell = sweep.cell("ebb", k)
    assert cell.all_solved
    return elapsed, cell.makespans


@pytest.mark.smoke
def test_batch_sweep_distributionally_matches_serial_smoke():
    """batch=True and batch=False sample the same makespan distribution."""
    runs = 60
    config_batch = ExperimentConfig(k_values=[60], runs=runs, seed=3, batch=True)
    config_serial = ExperimentConfig(k_values=[60], runs=runs, seed=4, batch=False)
    batch = run_sweep([_ofa_spec()], config_batch).cell("ofa", 60)
    serial = run_sweep([_ofa_spec()], config_serial).cell("ofa", 60)
    assert all(result.engine == "batch" for result in batch.results)
    assert all(result.engine == "fair" for result in serial.results)
    batch_ms = np.asarray(batch.makespans, dtype=float)
    serial_ms = np.asarray(serial.makespans, dtype=float)
    pooled = math.sqrt(batch_ms.var(ddof=1) / runs + serial_ms.var(ddof=1) / runs)
    assert abs(batch_ms.mean() - serial_ms.mean()) / pooled < 4.0


@pytest.mark.smoke
def test_batch_eligibility_routes_per_kind_smoke():
    """The registry routes each protocol kind to its own batch engine."""
    specs = [_ofa_spec(), _ebb_spec()]
    sweep = run_sweep(specs, ExperimentConfig(k_values=[40], runs=2, seed=5))
    assert all(result.engine == "batch" for result in sweep.cell("ofa", 40).results)
    assert all(result.engine == "batch-window" for result in sweep.cell("ebb", 40).results)
    sweep = run_sweep(specs, ExperimentConfig(k_values=[40], runs=2, seed=5, batch=False))
    assert all(result.engine == "fair" for result in sweep.cell("ofa", 40).results)
    assert all(result.engine == "window" for result in sweep.cell("ebb", 40).results)


@pytest.mark.smoke
def test_batch_window_sweep_distributionally_matches_serial_smoke():
    """batch=True and batch=False sample the same EBB makespan distribution."""
    runs = 60
    config_batch = ExperimentConfig(k_values=[60], runs=runs, seed=3, batch=True)
    config_serial = ExperimentConfig(k_values=[60], runs=runs, seed=4, batch=False)
    batch = run_sweep([_ebb_spec()], config_batch).cell("ebb", 60)
    serial = run_sweep([_ebb_spec()], config_serial).cell("ebb", 60)
    assert all(result.engine == "batch-window" for result in batch.results)
    assert all(result.engine == "window" for result in serial.results)
    batch_ms = np.asarray(batch.makespans, dtype=float)
    serial_ms = np.asarray(serial.makespans, dtype=float)
    pooled = math.sqrt(batch_ms.var(ddof=1) / runs + serial_ms.var(ddof=1) / runs)
    assert abs(batch_ms.mean() - serial_ms.mean()) / pooled < 4.0


@pytest.mark.smoke
def test_batch_window_sweep_deterministic_smoke():
    config = ExperimentConfig(k_values=[50], runs=4, seed=7)
    first = run_sweep([_ebb_spec()], config)
    second = run_sweep([_ebb_spec()], config)
    assert first.cell("ebb", 50).results == second.cell("ebb", 50).results


@pytest.mark.smoke
def test_batch_sweep_deterministic_smoke():
    config = ExperimentConfig(k_values=[50], runs=4, seed=7)
    first = run_sweep([_ofa_spec()], config)
    second = run_sweep([_ofa_spec()], config)
    assert first.cell("ofa", 50).results == second.cell("ofa", 50).results


def test_batch_speedup_trajectory(results_dir):
    """Throughput trajectory serial vs batch per k, written to BENCH_batch.json.

    The acceptance bar: a Figure-1-scale fair-protocol cell (k ≥ 256 with
    R ≥ 100 replications) must run ≥ 5× faster batched than serial at
    ``workers=1``.
    """
    runs = max(bench_runs(), 100)
    k_values = [k for k in (64, 256, 1024, 4096) if k <= bench_max_k()]
    trajectory = []
    for k in k_values:
        serial_seconds, serial_makespans = _timed_sweep(k, runs, batch=False)
        batch_seconds, batch_makespans = _timed_sweep(k, runs, batch=True)
        speedup = serial_seconds / batch_seconds if batch_seconds > 0 else float("inf")
        trajectory.append(
            {
                "k": k,
                "runs": runs,
                "serial_seconds": round(serial_seconds, 4),
                "batch_seconds": round(batch_seconds, 4),
                "serial_runs_per_sec": round(runs / serial_seconds, 2),
                "batch_runs_per_sec": round(runs / batch_seconds, 2),
                "speedup": round(speedup, 2),
                "serial_mean_makespan": round(float(np.mean(serial_makespans)), 1),
                "batch_mean_makespan": round(float(np.mean(batch_makespans)), 1),
            }
        )

    artifact = {
        "benchmark": "batch_engine_speedup",
        "protocol": "one-fail-adaptive",
        "engine_serial": "fair",
        "engine_batch": "batch",
        "workers": 1,
        "trajectory": trajectory,
    }
    (results_dir / ARTIFACT_NAME).write_text(json.dumps(artifact, indent=2) + "\n")

    if os.environ.get("REPRO_BENCH_SKIP_SPEEDUP_ASSERT") != "1":
        figure1_scale = [entry for entry in trajectory if entry["k"] >= 256]
        assert figure1_scale, "trajectory must include a Figure-1-scale point (k >= 256)"
        for entry in figure1_scale:
            assert entry["speedup"] >= 5.0, (
                f"expected >=5x batch speedup at k={entry['k']}, got {entry['speedup']}x"
            )


def test_batch_window_speedup_trajectory(results_dir):
    """Throughput serial vs batch-window per k, written to BENCH_batch_window.json.

    The acceptance bar: a Figure-1-scale windowed cell (k ≥ 256 with R ≥ 100
    replications) must run ≥ 5× faster batched than serial at ``workers=1``,
    asserted at k = 256 and the headline k = 1024 point.  Unlike the fair
    path — where the serial engine is an interpreted slot loop — the serial
    window engine is already numpy-vectorised per window, so the batch
    engine earns its speedup from overhead amortisation *plus* its adaptive
    occupancy sampling (saturated-window shortcut, multinomial rows for
    narrow windows); the margin therefore narrows as k grows instead of
    widening, because the delivery-heavy wide windows cost both paths the
    same vectorised arithmetic.  At k = 4096 the structural ratio sits
    around ~4.5–5.3× depending on machine state, so the assertion there is
    ≥ 3.5× — a regression tripwire, not a headline claim.  Each path is
    timed best-of-2 to damp scheduler noise.
    """
    runs = max(bench_runs(), 100)
    k_values = [k for k in (256, 1024, 4096) if k <= bench_max_k()]
    trajectory = []
    for k in k_values:
        serial_seconds, serial_makespans = min(
            (_timed_window_sweep(k, runs, batch=False) for _ in range(2)),
            key=lambda timing: timing[0],
        )
        batch_seconds, batch_makespans = min(
            (_timed_window_sweep(k, runs, batch=True) for _ in range(2)),
            key=lambda timing: timing[0],
        )
        speedup = serial_seconds / batch_seconds if batch_seconds > 0 else float("inf")
        trajectory.append(
            {
                "k": k,
                "runs": runs,
                "serial_seconds": round(serial_seconds, 4),
                "batch_seconds": round(batch_seconds, 4),
                "serial_runs_per_sec": round(runs / serial_seconds, 2),
                "batch_runs_per_sec": round(runs / batch_seconds, 2),
                "speedup": round(speedup, 2),
                "serial_mean_makespan": round(float(np.mean(serial_makespans)), 1),
                "batch_mean_makespan": round(float(np.mean(batch_makespans)), 1),
            }
        )

    artifact = {
        "benchmark": "batch_window_engine_speedup",
        "protocol": "exp-backon-backoff",
        "engine_serial": "window",
        "engine_batch": "batch-window",
        "workers": 1,
        "trajectory": trajectory,
    }
    (results_dir / WINDOW_ARTIFACT_NAME).write_text(json.dumps(artifact, indent=2) + "\n")

    if os.environ.get("REPRO_BENCH_SKIP_SPEEDUP_ASSERT") != "1":
        figure1_scale = [entry for entry in trajectory if entry["k"] >= 256]
        assert figure1_scale, "trajectory must include a Figure-1-scale point (k >= 256)"
        for entry in figure1_scale:
            floor = 5.0 if entry["k"] <= 1024 else 3.5
            assert entry["speedup"] >= floor, (
                f"expected >={floor}x batch-window speedup at k={entry['k']}, "
                f"got {entry['speedup']}x"
            )
