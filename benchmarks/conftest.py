"""Shared configuration for the benchmark harness.

Every benchmark regenerates one artefact of the paper's evaluation (see the
per-experiment index in DESIGN.md).  Scale is controlled by environment
variables so the default run finishes in a few minutes on one CPU while the
full paper range remains reachable:

* ``REPRO_BENCH_MAX_K``  — largest network size swept (default 10_000;
  the paper goes to 10_000_000).
* ``REPRO_BENCH_RUNS``   — repetitions per (protocol, k) point (default 3;
  the paper uses 10).

Each benchmark writes the table/figure it reproduces to
``benchmark_results/`` at the repository root, so the numbers quoted in
EXPERIMENTS.md can be regenerated with a single ``pytest benchmarks/
--benchmark-only`` invocation.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parents[1]
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Directory where benchmarks drop the artefacts they reproduce.
RESULTS_DIR = _REPO_ROOT / "benchmark_results"


def bench_max_k() -> int:
    """Largest k swept by the benchmarks (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_MAX_K", 10_000))


def bench_runs() -> int:
    """Repetitions per (protocol, k) point (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_RUNS", 3))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def figure1_sweep():
    """The Figure 1 / Table 1 sweep, run once and shared by both benchmarks."""
    from repro.experiments.config import ExperimentConfig, paper_k_values
    from repro.experiments.figure1 import reproduce_figure1

    config = ExperimentConfig(
        k_values=paper_k_values(max_k=bench_max_k()),
        runs=bench_runs(),
        seed=2011,
    )
    return reproduce_figure1(config=config)
