"""Benchmark: simulation-service submission throughput, cached vs fresh.

The service promise is that repeated scenarios are *cheap*: a submission
whose replications are all on record in the result store is answered
synchronously — full HTTP round-trip, zero new simulations.  This benchmark
boots a real :class:`~repro.service.server.ReproServer` on an ephemeral port
and measures end-to-end submissions/sec through
:class:`~repro.service.client.ServiceClient` for

* **cached** submissions — one scenario submitted repeatedly after its first
  completion (store-served; the ≥100 req/s floor is asserted), and
* **fresh** submissions — distinct small scenarios, each submitted and
  awaited (queue + simulation + store write on every request),

and writes both trajectories to ``benchmark_results/BENCH_service.json``.
The smoke-marked subset (run by ``scripts/bench_smoke.sh``) checks the
round-trip semantics — fresh run, cached resubmission with zero new
simulations — without timing assertions.
"""

from __future__ import annotations

import json
import time

import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.service import create_server
from repro.service.client import ServiceClient

#: Artifact name fixed by the acceptance criteria of the service issue.
ARTIFACT_NAME = "BENCH_service.json"

CACHED_SPEC = "one-fail-adaptive k=64 reps=3 seed=2011"


@pytest.fixture
def service(tmp_path):
    """A serving (server, client) pair over a fresh store directory."""
    server = create_server(port=0, store_dir=tmp_path / "store", quiet=True)
    server.start_background()
    client = ServiceClient(server.url, timeout=60.0)
    yield server, client
    server.close()


def _measure_cached(client: ServiceClient, requests: int) -> float:
    """Seconds for ``requests`` cached submissions of one stored scenario."""
    status = client.submit(CACHED_SPEC)
    client.wait(status.id, timeout=60.0)
    started = time.perf_counter()
    for _ in range(requests):
        status = client.submit(CACHED_SPEC)
        assert status.cached, "benchmark invariant: submission must be store-served"
    return time.perf_counter() - started


def _measure_fresh(client: ServiceClient, requests: int) -> float:
    """Seconds for ``requests`` distinct submit+wait round-trips."""
    started = time.perf_counter()
    for seed in range(requests):
        status = client.submit(f"one-fail-adaptive k=16 reps=1 seed={7000 + seed}")
        status = client.wait(status.id, timeout=60.0)
        assert status.state == "done"
    return time.perf_counter() - started


@pytest.mark.smoke
def test_service_round_trip_smoke(service):
    """Fresh submission completes; resubmission is cached with 0 new sims."""
    _server, client = service
    first = client.submit(CACHED_SPEC)
    first = client.wait(first.id, timeout=60.0)
    assert first.state == "done"
    second = client.submit(CACHED_SPEC)
    assert second.cached
    payload = client.result(second.hash)
    assert payload["new_runs"] == 0
    assert payload["cached_runs"] == 3


def test_service_throughput(service, results_dir):
    """Measure cached vs fresh submissions/sec; assert the cached floor."""
    _server, client = service
    cached_requests = 300
    fresh_requests = 30
    cached_seconds = _measure_cached(client, cached_requests)
    fresh_seconds = _measure_fresh(client, fresh_requests)
    cached_rate = cached_requests / cached_seconds
    fresh_rate = fresh_requests / fresh_seconds
    artifact = {
        "benchmark": "service submission throughput",
        "scenario": CACHED_SPEC,
        "cached": {
            "requests": cached_requests,
            "seconds": cached_seconds,
            "requests_per_sec": cached_rate,
        },
        "fresh": {
            "requests": fresh_requests,
            "seconds": fresh_seconds,
            "requests_per_sec": fresh_rate,
        },
        "cached_over_fresh": cached_rate / fresh_rate,
    }
    path = results_dir / ARTIFACT_NAME
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"\ncached: {cached_rate:.0f} req/s   fresh: {fresh_rate:.0f} req/s   -> {path}")
    assert cached_rate >= 100.0, (
        f"cached submissions must sustain >= 100 req/s, measured {cached_rate:.0f}"
    )
