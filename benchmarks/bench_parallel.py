"""Benchmark E8: parallel sweep execution.

The (protocol × k × repetition) sweep behind Figure 1 / Table 1 is
embarrassingly parallel, and :func:`repro.experiments.runner.run_sweep` fans
its work units out over a :class:`~repro.experiments.parallel.ParallelExecutor`.
This benchmark quantifies the two promises of that layer:

* **fidelity** — a ``workers=N`` sweep is bit-identical to ``workers=1``
  (asserted by the smoke tests, which also run in the fast
  ``-m smoke`` subset);
* **throughput** — wall-clock speedup of the pool over the serial path on a
  multi-core host, written to ``benchmark_results/parallel_speedup.md``.

Scale comes from the shared ``REPRO_BENCH_*`` environment knobs (see
``benchmarks/conftest.py``).
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import bench_runs
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.experiments.config import ExperimentConfig, ProtocolSpec
from repro.experiments.parallel import resolve_workers
from repro.experiments.runner import run_sweep
from repro.util.tables import format_markdown_table


def _specs() -> list[ProtocolSpec]:
    return [
        ProtocolSpec(key="ofa", label="One-Fail Adaptive", factory=lambda k: OneFailAdaptive()),
        ProtocolSpec(key="ebb", label="Exp Back-on/Back-off", factory=lambda k: ExpBackonBackoff()),
    ]


@pytest.mark.smoke
def test_parallel_sweep_matches_serial_smoke():
    """workers=4 reproduces the serial sweep bit for bit (fast smoke check)."""
    config = ExperimentConfig(k_values=[10, 50], runs=2, seed=7)
    serial = run_sweep(_specs(), config, workers=1)
    parallel = run_sweep(_specs(), config, workers=4)
    for key in serial.cells:
        assert serial.cells[key].results == parallel.cells[key].results


@pytest.mark.smoke
def test_parallel_dynamic_sweep_smoke():
    """The dynamic-arrivals path works through the pool as well."""
    from repro.channel.arrivals import PoissonArrival

    config = ExperimentConfig(k_values=[12], runs=2, seed=7)
    sweep = run_sweep(
        _specs()[:1],
        config,
        workers=2,
        arrivals_factory=lambda k: PoissonArrival(k=k, rate=0.2),
    )
    cell = sweep.cell("ofa", 12)
    assert cell.all_solved
    assert all(result.engine == "slot" for result in cell.results)


def test_parallel_sweep_speedup(results_dir):
    """Wall-clock speedup of a pooled sweep over the serial path.

    On a multi-core host (≥ 4 CPUs) the pool must be at least 2× faster; on
    smaller hosts the numbers are still recorded, but the speedup assertion
    is skipped because there is no parallelism to harvest.
    """
    cpus = resolve_workers(None)
    workers = min(cpus, 4)
    config = ExperimentConfig(
        k_values=[2_000, 4_000],
        runs=max(bench_runs(), 4),
        seed=2011,
    )
    specs = _specs()

    started = time.perf_counter()
    serial = run_sweep(specs, config, workers=1)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_sweep(specs, config, workers=workers)
    parallel_seconds = time.perf_counter() - started

    for key in serial.cells:
        assert serial.cells[key].results == parallel.cells[key].results

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    (results_dir / "parallel_speedup.md").write_text(
        "# Parallel sweep speedup\n\n"
        + format_markdown_table(
            ["cpus", "workers", "total runs", "serial s", "parallel s", "speedup"],
            [[
                cpus,
                workers,
                serial.total_runs(),
                f"{serial_seconds:.2f}",
                f"{parallel_seconds:.2f}",
                f"{speedup:.2f}x",
            ]],
        )
        + "\n"
    )

    if cpus >= 4 and os.environ.get("REPRO_BENCH_SKIP_SPEEDUP_ASSERT") != "1":
        assert speedup >= 2.0, (
            f"expected >=2x speedup with {workers} workers on {cpus} CPUs, "
            f"got {speedup:.2f}x (serial {serial_seconds:.2f}s, parallel {parallel_seconds:.2f}s)"
        )
    elif cpus < 4:
        pytest.skip(f"speedup assertion needs >=4 CPUs, host has {cpus}")
