"""Chaos smoke: crash-recovery time and zero-duplicate guarantees, measured.

The reliability layer's two load-bearing promises (see
:mod:`repro.service.reliability`):

* **Recovery is fast and lossless** — a server killed after persisting a
  job's replications but before its journal mark replays the journal on the
  next boot and answers the job from the store: zero lost submissions, zero
  duplicate simulations.  Measured here as wall-clock from "dead process"
  to "replayed job done".
* **Transient faults cost retries, not results** — under seeded store-append
  chaos every job still completes, partial cells resume from their persisted
  prefix, and the store ends up with *exactly* ``replications`` run records
  per cell (duplicates would betray re-simulation of completed work).

Both are asserted, not just measured, and everything runs under fixed
:class:`~repro.service.reliability.FaultInjector` seeds — rerunning produces
the same fault schedule.  The artefact lands in
``benchmark_results/BENCH_faults.json``; the whole module is smoke-marked,
so ``scripts/bench_smoke.sh`` runs it in CI.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.scenarios import Scenario, Session
from repro.service import FaultInjector, JobManager, RetryPolicy, SimulatedCrash
from repro.service.jobs import JOB_DONE
from repro.service.reliability import journal_for_store

ARTIFACT_NAME = "BENCH_faults.json"

#: Instant retries: the benchmark measures recovery machinery, not sleeps.
FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.0, jitter=False)

CHAOS_SEED = 2011  # PODC'11 — same fault schedule on every run


def scenario_for(seed: int, replications: int = 4) -> Scenario:
    return Scenario.parse(f"one-fail-adaptive k=64 reps={replications} seed={seed}")


def run_lines(store_dir, scenario: Scenario) -> int:
    """Raw run-record count in a cell's JSONL file (duplicates visible)."""
    path = store_dir / f"{scenario.content_hash()}.jsonl"
    if not path.exists():
        return 0
    return sum(
        1
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip() and json.loads(line).get("kind") == "run"
    )


def make_manager(session: Session, **kwargs) -> JobManager:
    kwargs.setdefault("retry_policy", FAST_RETRY)
    kwargs.setdefault("retry_sleep", lambda _delay: None)
    kwargs.setdefault("journal", journal_for_store(session.store))
    return JobManager(session, start=False, **kwargs)


@pytest.mark.smoke
def test_crash_recovery_and_chaos_retries(tmp_path, results_dir):
    artifact: dict[str, object] = {
        "benchmark": "fault-tolerance: crash recovery + retry-under-chaos",
        "chaos_seed": CHAOS_SEED,
    }

    # --- crash before the journal mark, then recover -----------------------
    crash_dir = tmp_path / "crash_store"
    crash_scenario = scenario_for(seed=1)
    injector = FaultInjector(
        seed=CHAOS_SEED, rates={"worker-crash": 1.0}, caps={"worker-crash": 1}
    )
    manager = make_manager(Session(store_dir=crash_dir), fault_injector=injector)
    manager.submit(crash_scenario)
    with pytest.raises(SimulatedCrash):
        manager.process_next()  # dies after persisting, before the mark
    assert manager.journal.backlog() == 1

    started = time.perf_counter()
    session = Session(store_dir=crash_dir)
    reborn = make_manager(session)
    replayed = reborn.replay_journal()
    recovery_seconds = time.perf_counter() - started

    assert replayed == 1, "the unmarked submission must replay"
    job = reborn.jobs()[0]
    assert job.state == JOB_DONE and job.cached, "replay must dedup to the store"
    assert job.result_set.new_runs == 0, "recovery must not re-simulate"
    duplicates = run_lines(crash_dir, crash_scenario) - crash_scenario.replications
    assert duplicates == 0, f"{duplicates} duplicate run record(s) after recovery"
    artifact["crash_recovery"] = {
        "recovery_seconds": recovery_seconds,
        "replayed_jobs": replayed,
        "re_simulated_runs": job.result_set.new_runs,
        "duplicate_run_records": duplicates,
    }

    # --- seeded store chaos: every job completes, no duplicates ------------
    chaos_dir = tmp_path / "chaos_store"
    # Cap the fault budget below the retry budget: at most max_attempts-1
    # injected failures can ever land on one job, so completion is
    # guaranteed — the interesting measurement is how many retries it cost.
    spec = (
        f"chaos:jsonl:{chaos_dir}"
        f"?seed={CHAOS_SEED}&append_fail=0.3"
        f"&append_fail_max={FAST_RETRY.max_attempts - 1}"
    )
    session = Session(store_dir=spec, batch=False)
    manager = make_manager(session)
    scenarios = [scenario_for(seed=seed) for seed in range(10, 16)]
    started = time.perf_counter()
    jobs = [manager.submit(scen)[0] for scen in scenarios]
    while manager.process_next() is not None:
        pass
    chaos_seconds = time.perf_counter() - started

    assert all(job.state == JOB_DONE for job in jobs), [
        (job.id, job.state, job.error) for job in jobs
    ]
    total_duplicates = sum(
        run_lines(chaos_dir, scen) - scen.replications for scen in scenarios
    )
    assert total_duplicates == 0, (
        f"{total_duplicates} duplicate run record(s) under chaos"
    )
    totals = manager.lifetime_counts()
    injected = session.store.injector.fired["append"]
    assert injected > 0, "the fault schedule must actually fire for this seed"
    artifact["retry_under_chaos"] = {
        "jobs": len(jobs),
        "injected_append_failures": injected,
        "job_retries": totals["retried"],
        "max_attempts_seen": max(job.attempts for job in jobs),
        "duplicate_run_records": total_duplicates,
        "elapsed_seconds": chaos_seconds,
    }

    results_dir.mkdir(exist_ok=True)
    path = results_dir / ARTIFACT_NAME
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True), encoding="utf-8")
    print(f"\nwrote {path}")
    print(
        f"recovery: {recovery_seconds * 1e3:.1f} ms, "
        f"chaos: {injected} injected failure(s), {totals['retried']} retried, "
        f"0 duplicates"
    )
