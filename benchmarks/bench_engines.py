"""Benchmark E5: engine equivalence and throughput.

DESIGN.md justifies using specialised engines (fair, window) instead of the
node-level reference for the large sweeps.  This benchmark quantifies both
sides of that decision:

* **fidelity** — the cross-engine statistical comparison at small k, and
* **throughput** — simulated slots per second for each engine at a size where
  all three finish quickly.
"""

from __future__ import annotations

from benchmarks.conftest import bench_runs
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.fair_engine import FairEngine
from repro.engine.slot_engine import SlotEngine
from repro.engine.validation import compare_engines
from repro.engine.window_engine import WindowEngine
from repro.util.rng import derive_seeds
from repro.util.tables import format_markdown_table


def _throughput(engine, protocol, k: int, runs: int) -> tuple[float, float]:
    """Return (total slots simulated, mean makespan) over ``runs`` runs."""
    slots = 0
    makespans = []
    for seed in derive_seeds(3, runs):
        result = engine.simulate(protocol, k, seed=seed)
        slots += result.slots_simulated
        makespans.append(result.makespan)
    return float(slots), sum(makespans) / len(makespans)


def test_fair_engine_throughput(benchmark, results_dir):
    """Slots/second of the O(1)-per-slot fair engine on One-fail Adaptive."""
    k = 20_000
    runs = max(bench_runs(), 2)
    slots, mean_makespan = benchmark.pedantic(
        _throughput, args=(FairEngine(), OneFailAdaptive(), k, runs), rounds=1, iterations=1
    )
    rate = slots / benchmark.stats.stats.total
    (results_dir / "engine_fair_throughput.md").write_text(
        "# Fair engine throughput\n\n"
        + format_markdown_table(
            ["k", "runs", "slots simulated", "slots/second", "mean makespan"],
            [[k, runs, int(slots), f"{rate:,.0f}", f"{mean_makespan:.0f}"]],
        )
        + "\n"
    )
    assert mean_makespan >= k


def test_window_engine_throughput(benchmark, results_dir):
    """Slots/second of the balls-in-bins window engine on Exp Back-on/Back-off."""
    k = 200_000
    runs = max(bench_runs(), 2)
    slots, mean_makespan = benchmark.pedantic(
        _throughput, args=(WindowEngine(), ExpBackonBackoff(), k, runs), rounds=1, iterations=1
    )
    rate = slots / benchmark.stats.stats.total
    (results_dir / "engine_window_throughput.md").write_text(
        "# Window engine throughput\n\n"
        + format_markdown_table(
            ["k", "runs", "slots simulated", "slots/second", "mean makespan"],
            [[k, runs, int(slots), f"{rate:,.0f}", f"{mean_makespan:.0f}"]],
        )
        + "\n"
    )
    assert mean_makespan >= k


def test_slot_engine_throughput(benchmark, results_dir):
    """Slots/second of the exact node-level engine (the reference, much slower)."""
    k = 300
    runs = max(bench_runs(), 2)
    slots, mean_makespan = benchmark.pedantic(
        _throughput, args=(SlotEngine(), OneFailAdaptive(), k, runs), rounds=1, iterations=1
    )
    rate = slots / benchmark.stats.stats.total
    (results_dir / "engine_slot_throughput.md").write_text(
        "# Node-level engine throughput\n\n"
        + format_markdown_table(
            ["k", "runs", "slots simulated", "slots/second", "mean makespan"],
            [[k, runs, int(slots), f"{rate:,.0f}", f"{mean_makespan:.0f}"]],
        )
        + "\n"
    )
    assert mean_makespan >= k


def test_engine_equivalence(benchmark, results_dir):
    """Statistical agreement of the specialised engines with the node-level one."""

    def compare_all():
        return [
            compare_engines(FairEngine(), SlotEngine(), OneFailAdaptive(), k=25, runs=40,
                            root_seed=1),
            compare_engines(WindowEngine(), SlotEngine(), ExpBackonBackoff(), k=25, runs=40,
                            root_seed=2),
        ]

    comparisons = benchmark.pedantic(compare_all, rounds=1, iterations=1)
    rows = [
        [c.protocol, c.k, c.runs, f"{c.mean_a:.1f}", f"{c.mean_b:.1f}", f"{c.z_score:.2f}",
         "yes" if c.compatible else "NO"]
        for c in comparisons
    ]
    (results_dir / "engine_equivalence.md").write_text(
        "# Engine equivalence (specialised vs node-level)\n\n"
        + format_markdown_table(
            ["protocol", "k", "runs", "mean (specialised)", "mean (node-level)", "z", "compatible"],
            rows,
        )
        + "\n"
    )
    assert all(c.compatible for c in comparisons)
