"""Benchmark E6: the dynamic k-selection extension (paper's future work).

Measures makespan and per-message latency of the paper's protocols under
Poisson and bursty arrivals (node-level engine), writing the table to
``benchmark_results/dynamic.md``.
"""

from __future__ import annotations

from benchmarks.conftest import bench_runs
from repro.experiments.dynamic import run_dynamic_experiment
from repro.util.tables import format_markdown_table


def test_dynamic_arrivals(benchmark, results_dir):
    result = benchmark.pedantic(
        run_dynamic_experiment,
        kwargs={"k": 96, "runs": max(bench_runs(), 2), "seed": 23},
        rounds=1,
        iterations=1,
    )
    headers = ["protocol", "arrivals", "k", "mean makespan", "mean latency", "p90 latency",
               "unsolved runs"]
    rows = [
        [cell.protocol_label, cell.arrivals_description, cell.k, f"{cell.makespan.mean:.1f}",
         f"{cell.latency.mean:.1f}", f"{cell.latency.p90:.1f}", cell.unsolved_runs]
        for cell in result.cells
    ]
    (results_dir / "dynamic.md").write_text(
        "# Dynamic k-selection (extension E6)\n\n" + format_markdown_table(headers, rows) + "\n"
    )
    assert all(cell.unsolved_runs == 0 for cell in result.cells)
