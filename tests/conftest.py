"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.model import ChannelModel, FeedbackModel
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.fair_engine import FairEngine
from repro.engine.slot_engine import SlotEngine
from repro.engine.window_engine import WindowEngine
from repro.protocols.log_fails_adaptive import LogFailsAdaptive


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator for tests that need raw randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def ofa() -> OneFailAdaptive:
    """One-fail Adaptive with the paper's parameters."""
    return OneFailAdaptive()


@pytest.fixture
def ebb() -> ExpBackonBackoff:
    """Exp Back-on/Back-off with the paper's parameters."""
    return ExpBackonBackoff()


@pytest.fixture
def lfa() -> LogFailsAdaptive:
    """Log-fails Adaptive for a 100-node network (the paper's epsilon choice)."""
    return LogFailsAdaptive.for_k(100)


@pytest.fixture
def fair_engine() -> FairEngine:
    return FairEngine()


@pytest.fixture
def window_engine() -> WindowEngine:
    return WindowEngine()


@pytest.fixture
def slot_engine() -> SlotEngine:
    return SlotEngine()


@pytest.fixture
def cd_channel() -> ChannelModel:
    """A channel with full collision detection (for the splitting baseline)."""
    return ChannelModel(feedback=FeedbackModel.COLLISION_DETECTION)
