"""Tests for execution traces."""

from __future__ import annotations

from repro.channel.model import SlotOutcome
from repro.channel.trace import ExecutionTrace, SlotRecord


def record(slot: int, outcome: SlotOutcome, transmitters: int = 1) -> SlotRecord:
    return SlotRecord(slot=slot, transmitters=transmitters, outcome=outcome, active_before=5)


class TestExecutionTrace:
    def test_append_and_len(self):
        trace = ExecutionTrace()
        trace.append(record(0, SlotOutcome.SILENCE, 0))
        trace.append(record(1, SlotOutcome.SUCCESS))
        assert len(trace) == 2
        assert trace[1].outcome is SlotOutcome.SUCCESS

    def test_counts(self):
        trace = ExecutionTrace()
        trace.append(record(0, SlotOutcome.SILENCE, 0))
        trace.append(record(1, SlotOutcome.SUCCESS))
        trace.append(record(2, SlotOutcome.COLLISION, 3))
        trace.append(record(3, SlotOutcome.SUCCESS))
        assert trace.successes == 2
        assert trace.collisions == 1
        assert trace.silences == 1

    def test_success_slots(self):
        trace = ExecutionTrace()
        trace.append(record(4, SlotOutcome.SUCCESS))
        trace.append(record(9, SlotOutcome.SUCCESS))
        assert trace.success_slots() == [4, 9]

    def test_utilisation(self):
        trace = ExecutionTrace()
        assert trace.utilisation() == 0.0
        trace.append(record(0, SlotOutcome.SUCCESS))
        trace.append(record(1, SlotOutcome.COLLISION, 2))
        assert trace.utilisation() == 0.5

    def test_max_records_cap(self):
        trace = ExecutionTrace(max_records=2)
        for slot in range(5):
            trace.append(record(slot, SlotOutcome.SILENCE, 0))
        assert len(trace) == 2

    def test_summary(self):
        trace = ExecutionTrace()
        trace.append(record(0, SlotOutcome.SUCCESS))
        summary = trace.summary()
        assert summary["slots"] == 1
        assert summary["successes"] == 1
        assert summary["utilisation"] == 1.0

    def test_format_limits_output(self):
        trace = ExecutionTrace()
        for slot in range(10):
            trace.append(record(slot, SlotOutcome.SILENCE, 0))
        text = trace.format(limit=3)
        assert "7 more slots" in text

    def test_iteration(self):
        trace = ExecutionTrace()
        trace.append(record(0, SlotOutcome.SUCCESS))
        trace.append(record(1, SlotOutcome.SILENCE, 0))
        assert [r.slot for r in trace] == [0, 1]
