"""Tests for the exact node-level Radio Network simulator."""

from __future__ import annotations

import pytest

from repro.channel.arrivals import BatchArrival, BurstyArrival, PoissonArrival
from repro.channel.model import ChannelModel, FeedbackModel
from repro.channel.radio_network import RadioNetwork
from repro.channel.trace import ExecutionTrace
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.protocols.aloha import SlottedAloha
from repro.protocols.splitting import BinarySplitting


class TestStaticKSelection:
    @pytest.mark.parametrize("k", [1, 2, 5, 20])
    def test_solves_with_one_fail_adaptive(self, k):
        network = RadioNetwork.for_static_k_selection(OneFailAdaptive(), k=k, seed=1)
        result = network.run()
        assert result.solved
        assert result.k == k
        assert result.successes == k
        assert len(result.delivery_slots) == k

    def test_solves_with_windowed_protocol(self):
        network = RadioNetwork.for_static_k_selection(ExpBackonBackoff(), k=10, seed=2)
        result = network.run()
        assert result.solved
        assert result.successes == 10

    def test_makespan_is_last_delivery_plus_one(self):
        network = RadioNetwork.for_static_k_selection(OneFailAdaptive(), k=5, seed=3)
        result = network.run()
        assert result.makespan == result.delivery_slots[-1] + 1

    def test_makespan_at_least_k(self):
        network = RadioNetwork.for_static_k_selection(OneFailAdaptive(), k=8, seed=4)
        result = network.run()
        assert result.makespan >= 8

    def test_delivery_slots_strictly_increasing(self):
        network = RadioNetwork.for_static_k_selection(OneFailAdaptive(), k=12, seed=5)
        result = network.run()
        slots = result.delivery_slots
        assert all(a < b for a, b in zip(slots, slots[1:]))

    def test_single_node_with_known_k_delivers_immediately(self):
        network = RadioNetwork.for_static_k_selection(SlottedAloha(k=1), k=1, seed=0)
        result = network.run()
        assert result.makespan == 1

    def test_deterministic_given_seed(self):
        results = [
            RadioNetwork.for_static_k_selection(OneFailAdaptive(), k=10, seed=42).run().makespan
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_different_seeds_vary(self):
        makespans = {
            RadioNetwork.for_static_k_selection(OneFailAdaptive(), k=20, seed=seed).run().makespan
            for seed in range(6)
        }
        assert len(makespans) > 1

    def test_outcome_counts_partition_slots(self):
        network = RadioNetwork.for_static_k_selection(OneFailAdaptive(), k=10, seed=6)
        result = network.run()
        assert result.successes + result.collisions + result.silences == result.slots_simulated

    def test_steps_per_node(self):
        network = RadioNetwork.for_static_k_selection(OneFailAdaptive(), k=10, seed=6)
        result = network.run()
        assert result.steps_per_node == pytest.approx(result.makespan / 10)


class TestSlotCap:
    def test_unsolved_when_capped(self):
        network = RadioNetwork.for_static_k_selection(
            OneFailAdaptive(), k=20, seed=1, max_slots=5
        )
        result = network.run()
        assert not result.solved
        assert result.makespan is None
        assert result.slots_simulated == 5

    def test_steps_per_node_undefined_for_unsolved(self):
        network = RadioNetwork.for_static_k_selection(
            OneFailAdaptive(), k=20, seed=1, max_slots=5
        )
        result = network.run()
        with pytest.raises(ValueError):
            _ = result.steps_per_node


class TestTraceAndSummaries:
    def test_trace_records_every_slot(self):
        trace = ExecutionTrace()
        network = RadioNetwork.for_static_k_selection(OneFailAdaptive(), k=6, seed=7)
        result = network.run(trace=trace)
        assert len(trace) == result.slots_simulated
        assert trace.successes == 6

    def test_trace_success_slots_match_delivery_slots(self):
        trace = ExecutionTrace()
        network = RadioNetwork.for_static_k_selection(OneFailAdaptive(), k=6, seed=8)
        result = network.run(trace=trace)
        assert trace.success_slots() == result.delivery_slots

    def test_node_summaries_collected_on_request(self):
        network = RadioNetwork.for_static_k_selection(OneFailAdaptive(), k=4, seed=9)
        result = network.run(collect_node_summaries=True)
        assert len(result.node_summaries) == 4
        assert all(summary["state"] == "idle" for summary in result.node_summaries)

    def test_node_summaries_empty_by_default(self):
        network = RadioNetwork.for_static_k_selection(OneFailAdaptive(), k=4, seed=9)
        assert network.run().node_summaries == []


class TestDynamicArrivals:
    def test_poisson_arrivals_solved(self):
        network = RadioNetwork(
            protocol=OneFailAdaptive(),
            arrivals=PoissonArrival(k=15, rate=0.2),
            seed=10,
        )
        result = network.run()
        assert result.solved
        assert result.successes == 15

    def test_bursty_arrivals_solved(self):
        network = RadioNetwork(
            protocol=OneFailAdaptive(),
            arrivals=BurstyArrival(bursts=3, burst_size=5, gap=200),
            seed=11,
        )
        result = network.run()
        assert result.solved
        assert result.k == 15

    def test_no_delivery_before_arrival(self):
        arrivals = BurstyArrival(bursts=2, burst_size=3, gap=500)
        network = RadioNetwork(protocol=OneFailAdaptive(), arrivals=arrivals, seed=12)
        result = network.run(collect_node_summaries=True)
        for summary in result.node_summaries:
            assert summary["delivery_slot"] >= summary["activation_slot"]


class TestNoAcknowledgementChannel:
    def test_rejected_up_front(self):
        """Without ACKs no station ever retires, so instead of silently
        burning to the slot cap the simulator must refuse the configuration."""
        with pytest.raises(ValueError, match="acknowledg"):
            RadioNetwork.for_static_k_selection(
                OneFailAdaptive(), k=4, seed=0, channel=ChannelModel(acknowledgements=False)
            )

    def test_slot_engine_rejects_too(self):
        from repro.engine.slot_engine import SlotEngine

        with pytest.raises(ValueError, match="acknowledg"):
            SlotEngine(channel=ChannelModel(acknowledgements=False))

    def test_no_ack_with_collision_detection_also_rejected(self):
        channel = ChannelModel(
            feedback=FeedbackModel.COLLISION_DETECTION, acknowledgements=False
        )
        with pytest.raises(ValueError, match="acknowledg"):
            RadioNetwork.for_static_k_selection(OneFailAdaptive(), k=4, seed=0, channel=channel)


class TestArrivalEventScaling:
    def test_many_single_message_events(self):
        """One event per message (the Poisson worst case) must stay cheap:
        the deque cursor makes the arrival phase O(1) per event."""
        arrivals = PoissonArrival(k=400, rate=1.0)
        network = RadioNetwork(protocol=OneFailAdaptive(), arrivals=arrivals, seed=3)
        result = network.run()
        assert result.solved
        assert result.successes == 400


class TestCollisionDetectionChannel:
    def test_binary_splitting_requires_cd(self):
        network = RadioNetwork.for_static_k_selection(BinarySplitting(), k=4, seed=1)
        with pytest.raises(RuntimeError):
            network.run()

    def test_binary_splitting_solves_with_cd(self):
        channel = ChannelModel(feedback=FeedbackModel.COLLISION_DETECTION)
        network = RadioNetwork.for_static_k_selection(
            BinarySplitting(), k=16, seed=2, channel=channel
        )
        result = network.run()
        assert result.solved
        assert result.successes == 16

    def test_batch_arrival_consistency_check(self):
        class LyingArrival(BatchArrival):
            def events(self, rng):
                return super().events(rng)[:0]

        network = RadioNetwork(protocol=OneFailAdaptive(), arrivals=LyingArrival(3), seed=0)
        with pytest.raises(RuntimeError):
            network.run()
