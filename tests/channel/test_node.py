"""Tests for the station (node) state machine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.model import Observation
from repro.channel.node import Message, Node, NodeState
from repro.core.one_fail_adaptive import OneFailAdaptive


def make_node(node_id: int = 0, seed: int = 1) -> Node:
    return Node(node_id=node_id, protocol=OneFailAdaptive(), rng=np.random.default_rng(seed))


class TestMessage:
    def test_ids_are_unique(self):
        assert Message().message_id != Message().message_id

    def test_defaults(self):
        message = Message(origin=3, arrival_slot=5)
        assert message.origin == 3
        assert message.arrival_slot == 5
        assert message.payload is None


class TestNodeLifecycle:
    def test_starts_dormant(self):
        node = make_node()
        assert node.state is NodeState.DORMANT
        assert not node.is_active

    def test_activation(self):
        node = make_node()
        node.activate(Message(origin=0), slot=0)
        assert node.state is NodeState.ACTIVE
        assert node.is_active
        assert node.activation_slot == 0

    def test_double_activation_rejected(self):
        node = make_node()
        node.activate(Message(origin=0), slot=0)
        with pytest.raises(RuntimeError):
            node.activate(Message(origin=0), slot=1)

    def test_dormant_node_never_transmits(self):
        node = make_node()
        assert node.decide_transmission(0) is False
        assert node.transmissions == 0

    def test_delivery_makes_node_idle(self):
        node = make_node()
        node.activate(Message(origin=0), slot=0)
        node.receive_feedback(
            Observation(slot=4, transmitted=True, received=False, delivered=True)
        )
        assert node.state is NodeState.IDLE
        assert node.delivery_slot == 4
        assert not node.is_active

    def test_idle_node_ignores_feedback(self):
        node = make_node()
        node.activate(Message(origin=0), slot=0)
        node.receive_feedback(
            Observation(slot=2, transmitted=True, received=False, delivered=True)
        )
        node.receive_feedback(
            Observation(slot=3, transmitted=False, received=True, delivered=False)
        )
        assert node.delivery_slot == 2  # unchanged

    def test_reactivation_after_delivery_allowed(self):
        node = make_node()
        node.activate(Message(origin=0), slot=0)
        node.receive_feedback(
            Observation(slot=1, transmitted=True, received=False, delivered=True)
        )
        node.activate(Message(origin=0), slot=10)
        assert node.is_active
        assert node.activation_slot == 10


class TestNodeCounters:
    def test_transmission_counter(self):
        node = make_node(seed=3)
        node.activate(Message(origin=0), slot=0)
        total = sum(1 for slot in range(50) if node.decide_transmission(slot))
        assert node.transmissions == total
        assert total > 0

    def test_collision_counter_increment(self):
        node = make_node()
        node.activate(Message(origin=0), slot=0)
        node.receive_feedback(
            Observation(slot=0, transmitted=True, received=False, delivered=False)
        )
        assert node.collisions == 1

    def test_no_collision_counted_when_not_transmitting(self):
        node = make_node()
        node.activate(Message(origin=0), slot=0)
        node.receive_feedback(
            Observation(slot=0, transmitted=False, received=False, delivered=False)
        )
        assert node.collisions == 0

    def test_summary_fields(self):
        node = make_node(node_id=7)
        node.activate(Message(origin=7), slot=2)
        summary = node.summary()
        assert summary["node_id"] == 7
        assert summary["state"] == "active"
        assert summary["activation_slot"] == 2
        assert summary["delivery_slot"] is None
