"""Tests for the channel semantics (slot outcomes, feedback, observations)."""

from __future__ import annotations

import pytest

from repro.channel.model import (
    ChannelModel,
    FeedbackModel,
    Observation,
    SlotOutcome,
    resolve_slot,
)


class TestResolveSlot:
    def test_zero_transmitters_is_silence(self):
        assert resolve_slot(0) is SlotOutcome.SILENCE

    def test_one_transmitter_is_success(self):
        assert resolve_slot(1) is SlotOutcome.SUCCESS

    @pytest.mark.parametrize("count", [2, 3, 10, 1000])
    def test_many_transmitters_collide(self, count):
        assert resolve_slot(count) is SlotOutcome.COLLISION

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_slot(-1)


class TestObservation:
    def test_cannot_receive_and_deliver(self):
        with pytest.raises(ValueError):
            Observation(slot=0, transmitted=True, received=True, delivered=True)

    def test_cannot_deliver_without_transmitting(self):
        with pytest.raises(ValueError):
            Observation(slot=0, transmitted=False, received=False, delivered=True)

    def test_heard_something_on_reception(self):
        obs = Observation(slot=0, transmitted=False, received=True, delivered=False)
        assert obs.heard_something

    def test_noise_is_not_heard(self):
        obs = Observation(slot=0, transmitted=True, received=False, delivered=False)
        assert not obs.heard_something

    def test_detection_counts_as_heard(self):
        obs = Observation(
            slot=0, transmitted=False, received=False, delivered=False,
            detected=SlotOutcome.COLLISION,
        )
        assert obs.heard_something


class TestChannelModelNoCollisionDetection:
    def setup_method(self):
        self.channel = ChannelModel()

    def test_default_is_papers_model(self):
        assert self.channel.feedback is FeedbackModel.NO_COLLISION_DETECTION
        assert self.channel.acknowledgements

    def test_successful_transmitter_gets_ack(self):
        obs = self.channel.observe(
            slot=3, transmitted=True, outcome=SlotOutcome.SUCCESS, is_successful_transmitter=True
        )
        assert obs.delivered and not obs.received and obs.detected is None

    def test_listener_receives_on_success(self):
        obs = self.channel.observe(
            slot=3, transmitted=False, outcome=SlotOutcome.SUCCESS, is_successful_transmitter=False
        )
        assert obs.received and not obs.delivered

    def test_collision_and_silence_are_indistinguishable(self):
        collision = self.channel.observe(
            slot=1, transmitted=False, outcome=SlotOutcome.COLLISION, is_successful_transmitter=False
        )
        silence = self.channel.observe(
            slot=1, transmitted=False, outcome=SlotOutcome.SILENCE, is_successful_transmitter=False
        )
        assert collision.detected is None and silence.detected is None
        assert not collision.heard_something and not silence.heard_something

    def test_successful_transmitter_requires_success_outcome(self):
        with pytest.raises(ValueError):
            self.channel.observe(
                slot=0, transmitted=True, outcome=SlotOutcome.COLLISION,
                is_successful_transmitter=True,
            )

    def test_successful_transmitter_must_transmit(self):
        with pytest.raises(ValueError):
            self.channel.observe(
                slot=0, transmitted=False, outcome=SlotOutcome.SUCCESS,
                is_successful_transmitter=True,
            )


class TestChannelModelCollisionDetection:
    def setup_method(self):
        self.channel = ChannelModel(feedback=FeedbackModel.COLLISION_DETECTION)

    @pytest.mark.parametrize(
        "outcome", [SlotOutcome.SILENCE, SlotOutcome.SUCCESS, SlotOutcome.COLLISION]
    )
    def test_outcome_is_visible(self, outcome):
        obs = self.channel.observe(
            slot=0, transmitted=False, outcome=outcome, is_successful_transmitter=False
        )
        assert obs.detected is outcome


class TestChannelModelWithoutAcks:
    def test_no_delivery_without_acknowledgements(self):
        channel = ChannelModel(acknowledgements=False)
        obs = channel.observe(
            slot=0, transmitted=True, outcome=SlotOutcome.SUCCESS, is_successful_transmitter=True
        )
        assert not obs.delivered
