"""Tests for the arrival processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.arrivals import ArrivalEvent, BatchArrival, BurstyArrival, PoissonArrival


class TestArrivalEvent:
    def test_valid(self):
        event = ArrivalEvent(slot=3, count=2)
        assert event.slot == 3 and event.count == 2

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            ArrivalEvent(slot=-1, count=1)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            ArrivalEvent(slot=0, count=0)


class TestBatchArrival:
    def test_single_event_at_slot_zero(self):
        events = BatchArrival(10).events(np.random.default_rng(0))
        assert events == [ArrivalEvent(slot=0, count=10)]

    def test_total_messages(self):
        assert BatchArrival(42).total_messages == 42

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            BatchArrival(0)

    def test_describe(self):
        description = BatchArrival(5).describe()
        assert description["type"] == "BatchArrival"
        assert description["parameters"]["k"] == 5


class TestPoissonArrival:
    def test_total_and_count(self):
        process = PoissonArrival(k=20, rate=0.1)
        events = process.events(np.random.default_rng(1))
        assert process.total_messages == 20
        assert sum(event.count for event in events) == 20

    def test_first_arrival_at_zero(self):
        events = PoissonArrival(k=5, rate=0.5).events(np.random.default_rng(2))
        assert events[0].slot == 0

    def test_slots_strictly_increasing(self):
        events = PoissonArrival(k=50, rate=0.3).events(np.random.default_rng(3))
        slots = [event.slot for event in events]
        assert slots == sorted(slots)
        assert len(set(slots)) == len(slots)

    def test_rate_above_one_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrival(k=5, rate=1.5)

    def test_rate_zero_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrival(k=5, rate=0.0)

    def test_mean_gap_roughly_inverse_rate(self):
        rate = 0.2
        events = PoissonArrival(k=2_000, rate=rate).events(np.random.default_rng(4))
        gaps = [b.slot - a.slot for a, b in zip(events, events[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert 0.7 / rate < mean_gap < 1.3 / rate

    def test_deterministic_given_rng(self):
        a = PoissonArrival(k=10, rate=0.1).events(np.random.default_rng(9))
        b = PoissonArrival(k=10, rate=0.1).events(np.random.default_rng(9))
        assert a == b


class TestBurstyArrival:
    def test_event_layout(self):
        process = BurstyArrival(bursts=3, burst_size=4, gap=100)
        events = process.events(np.random.default_rng(0))
        assert [event.slot for event in events] == [0, 100, 200]
        assert all(event.count == 4 for event in events)

    def test_total_messages(self):
        assert BurstyArrival(bursts=3, burst_size=4, gap=10).total_messages == 12

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BurstyArrival(bursts=0, burst_size=1, gap=1)
        with pytest.raises(ValueError):
            BurstyArrival(bursts=1, burst_size=0, gap=1)
        with pytest.raises(ValueError):
            BurstyArrival(bursts=1, burst_size=1, gap=0)
