"""Integration tests of the top-level public API (what README advertises)."""

from __future__ import annotations

import pytest

import repro
from repro import (
    ExpBackonBackoff,
    OneFailAdaptive,
    SimulationResult,
    available_protocols,
    get_protocol_class,
    simulate,
)


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_registry_lists_all_shipped_protocols(self):
        names = available_protocols()
        expected = {
            "one-fail-adaptive",
            "exp-backon-backoff",
            "log-fails-adaptive",
            "loglog-iterated-backoff",
            "exponential-backoff",
            "polynomial-backoff",
            "log-backoff",
            "slotted-aloha",
            "binary-splitting",
        }
        assert expected <= set(names)

    def test_registry_roundtrip(self):
        for name in ("one-fail-adaptive", "exp-backon-backoff"):
            assert get_protocol_class(name).name == name


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        result = simulate(OneFailAdaptive(), k=1_000, seed=1)
        assert isinstance(result, SimulationResult)
        assert result.solved
        assert 5.0 < result.steps_per_node < 10.0

    def test_both_protocols_beat_the_llib_baseline_asymptotics(self):
        """Both new protocols are linear; at k = 2000 their ratios stay below ~9."""
        for protocol in (OneFailAdaptive(), ExpBackonBackoff()):
            result = simulate(protocol, k=2_000, seed=3)
            assert result.steps_per_node < 9.0
