"""Smoke tests: every example script runs end to end on a tiny instance."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "500")
        assert result.returncode == 0, result.stderr
        assert "One-fail Adaptive" in result.stdout
        assert "Exp Back-on/Back-off" in result.stdout

    def test_compare_protocols(self):
        result = run_example("compare_protocols.py", "100", "2")
        assert result.returncode == 0, result.stderr
        assert "steps/node" in result.stdout
        assert "legend:" in result.stdout

    def test_dynamic_arrivals(self):
        result = run_example("dynamic_arrivals.py", "24", "2")
        assert result.returncode == 0, result.stderr
        assert "mean latency" in result.stdout

    def test_parameter_sweep(self):
        result = run_example("parameter_sweep.py", "200", "2")
        assert result.returncode == 0, result.stderr
        assert "best delta" in result.stdout

    def test_inspect_protocol_trace(self):
        result = run_example("inspect_protocol_trace.py", "6")
        assert result.returncode == 0, result.stderr
        assert "Density estimator" in result.stdout
        assert "Binary splitting" in result.stdout
