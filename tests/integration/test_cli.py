"""Tests for the unified command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.protocols.aloha import SlottedAloha
from repro.protocols.base import build_protocol
from repro.protocols.log_fails_adaptive import LogFailsAdaptive


class TestBuildProtocol:
    """Protocol construction through the spec-string registry.

    (The deprecated ``repro.cli.build_protocol`` wrapper is gone; the
    registry's :func:`repro.protocols.base.build_protocol` is the one place
    protocol construction lives, and the CLI assembles spec strings for it.)
    """

    def test_paper_protocols_default_parameters(self):
        assert isinstance(build_protocol("one-fail-adaptive", k=100), OneFailAdaptive)
        assert isinstance(build_protocol("exp-backon-backoff", k=100), ExpBackonBackoff)

    def test_delta_override(self):
        assert build_protocol("one-fail-adaptive(delta=2.9)", k=10).delta == 2.9
        assert build_protocol("exp-backon-backoff(delta=0.2)", k=10).delta == 0.2

    def test_knowledge_protocols_receive_k(self):
        lfa = build_protocol("log-fails-adaptive(xi_t=0.1)", k=499)
        assert isinstance(lfa, LogFailsAdaptive)
        assert lfa.epsilon == pytest.approx(1 / 500)
        assert lfa.xi_t == 0.1
        aloha = build_protocol("slotted-aloha", k=77)
        assert isinstance(aloha, SlottedAloha)
        assert aloha.k == 77

    def test_backoff_family(self):
        assert build_protocol("loglog-iterated-backoff", k=10).name == "loglog-iterated-backoff"
        assert build_protocol("exponential-backoff", k=10).name == "exponential-backoff"

    def test_cli_wrappers_removed(self):
        import repro.cli

        assert not hasattr(repro.cli, "build_protocol")
        assert not hasattr(repro.cli, "build_arrivals")


class TestSimulateCommand:
    def test_runs_and_prints_result(self, capsys):
        exit_code = main(["simulate", "--protocol", "one-fail-adaptive", "--k", "200", "--seed", "4"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "steps per node" in output
        assert "One-Fail Adaptive" in output

    def test_windowed_protocol(self, capsys):
        assert main(["simulate", "--protocol", "exp-backon-backoff", "--k", "100"]) == 0
        assert "window" in capsys.readouterr().out

    def test_engine_override(self, capsys):
        assert main(["simulate", "--protocol", "one-fail-adaptive", "--k", "30",
                     "--engine", "slot"]) == 0
        assert "slot" in capsys.readouterr().out

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--protocol", "not-a-protocol"])

    def test_poisson_arrivals(self, capsys):
        assert main(["simulate", "--protocol", "one-fail-adaptive", "--k", "16",
                     "--arrivals", "poisson", "--rate", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "PoissonArrival" in output
        assert "mean latency" in output

    def test_bursty_arrivals(self, capsys):
        assert main(["simulate", "--protocol", "one-fail-adaptive", "--k", "16",
                     "--arrivals", "bursty", "--bursts", "2", "--gap", "50"]) == 0
        assert "BurstyArrival" in capsys.readouterr().out

    def test_arrivals_reject_specialised_engine(self):
        with pytest.raises(ValueError):
            main(["simulate", "--protocol", "one-fail-adaptive", "--k", "16",
                  "--arrivals", "poisson", "--engine", "fair"])


class TestOtherCommands:
    def test_protocols_listing(self, capsys):
        assert main(["protocols"]) == 0
        output = capsys.readouterr().out
        assert "one-fail-adaptive" in output
        assert "required knowledge" in output

    def test_figure1_forwarding(self, capsys):
        assert main(["figure1", "--max-k", "100", "--runs", "1", "--quiet"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_table1_forwarding(self, capsys):
        assert main(["table1", "--max-k", "100", "--runs", "1", "--quiet"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_figure1_workers_flag(self, capsys):
        assert main(["figure1", "--max-k", "100", "--runs", "1", "--quiet",
                     "--workers", "2"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_dynamic_forwarding(self, capsys):
        assert main(["dynamic", "--k", "16", "--runs", "1"]) == 0
        output = capsys.readouterr().out
        assert "mean latency" in output
        assert "poisson" in output

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRunCommand:
    def test_spec_string_scenario(self, capsys):
        assert main(["run", "one-fail-adaptive(delta=2.72) k=100 reps=2 seed=5"]) == 0
        output = capsys.readouterr().out
        assert "hash" in output
        assert "new runs" in output
        assert "mean makespan" in output

    def test_json_output(self, capsys):
        import json

        assert main(["run", "one-fail-adaptive k=100 reps=2 seed=5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["new_runs"] == 2
        assert payload["cached_runs"] == 0
        assert payload["engine"] == "mega"
        assert len(payload["results"]) == 2
        assert payload["hash"]

    def test_store_reports_cache_hits_on_rerun(self, capsys, tmp_path):
        import json

        spec = "one-fail-adaptive k=80 reps=3 seed=9"
        assert main(["run", spec, "--store", str(tmp_path), "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["run", spec, "--store", str(tmp_path), "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["new_runs"] == 3
        assert second["new_runs"] == 0
        assert second["cached_runs"] == 3
        assert second["results"] == first["results"]

    def test_toml_file_scenario(self, capsys, tmp_path):
        from repro.scenarios import Scenario

        scenario = Scenario.parse("exp-backon-backoff k=50 reps=2 seed=3")
        path = tmp_path / "cell.toml"
        path.write_text(scenario.to_toml(), encoding="utf-8")
        assert main(["run", str(path)]) == 0
        assert "exp-backon-backoff" in capsys.readouterr().out

    def test_replication_and_seed_overrides(self, capsys):
        import json

        assert main(["run", "one-fail-adaptive k=60", "--reps", "4", "--seed", "11",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["replications"] == 4
        assert payload["scenario"]["seed"] == 11

    def test_unknown_protocol_is_clean_error(self, capsys):
        assert main(["run", "not-a-protocol k=10"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_malformed_scenario_is_clean_error(self, capsys):
        assert main(["run", "one-fail-adaptive k=10 nonsense=1"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_unknown_arrivals_is_clean_error(self, capsys):
        assert main(["simulate", "--k", "8", "--arrivals", "nope"]) == 2
        assert "repro: error:" in capsys.readouterr().err


class TestMachineReadableSimulate:
    def test_simulate_json_payload(self, capsys):
        import json

        assert main(["simulate", "--protocol", "one-fail-adaptive", "--k", "120",
                     "--seed", "6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "fair"
        assert payload["seed"] == 6
        assert payload["makespan"] >= 120
        assert payload["scenario_hash"]
        assert payload["scenario"].startswith("one-fail-adaptive")

    def test_simulate_accepts_arrival_spec_string(self, capsys):
        assert main(["simulate", "--protocol", "one-fail-adaptive", "--k", "16",
                     "--arrivals", "poisson(rate=0.2)"]) == 0
        assert "PoissonArrival" in capsys.readouterr().out

    def test_engine_choices_track_registry(self):
        from repro.engine.dispatch import available_engines

        parser = build_parser()
        sim_parser = next(
            action for action in parser._subparsers._group_actions
        ).choices["simulate"]
        engine_action = next(
            action for action in sim_parser._actions if action.dest == "engine"
        )
        assert list(engine_action.choices) == available_engines()
