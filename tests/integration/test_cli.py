"""Tests for the unified command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, build_protocol, main
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.protocols.aloha import SlottedAloha
from repro.protocols.log_fails_adaptive import LogFailsAdaptive


class TestBuildProtocol:
    def test_paper_protocols_default_parameters(self):
        assert isinstance(build_protocol("one-fail-adaptive", k=100), OneFailAdaptive)
        assert isinstance(build_protocol("exp-backon-backoff", k=100), ExpBackonBackoff)

    def test_delta_override(self):
        assert build_protocol("one-fail-adaptive", k=10, delta=2.9).delta == 2.9
        assert build_protocol("exp-backon-backoff", k=10, delta=0.2).delta == 0.2

    def test_knowledge_protocols_receive_k(self):
        lfa = build_protocol("log-fails-adaptive", k=499, xi_t=0.1)
        assert isinstance(lfa, LogFailsAdaptive)
        assert lfa.epsilon == pytest.approx(1 / 500)
        assert lfa.xi_t == 0.1
        aloha = build_protocol("slotted-aloha", k=77)
        assert isinstance(aloha, SlottedAloha)
        assert aloha.k == 77

    def test_backoff_family(self):
        assert build_protocol("loglog-iterated-backoff", k=10).name == "loglog-iterated-backoff"
        assert build_protocol("exponential-backoff", k=10).name == "exponential-backoff"


class TestSimulateCommand:
    def test_runs_and_prints_result(self, capsys):
        exit_code = main(["simulate", "--protocol", "one-fail-adaptive", "--k", "200", "--seed", "4"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "steps per node" in output
        assert "One-Fail Adaptive" in output

    def test_windowed_protocol(self, capsys):
        assert main(["simulate", "--protocol", "exp-backon-backoff", "--k", "100"]) == 0
        assert "window" in capsys.readouterr().out

    def test_engine_override(self, capsys):
        assert main(["simulate", "--protocol", "one-fail-adaptive", "--k", "30",
                     "--engine", "slot"]) == 0
        assert "slot" in capsys.readouterr().out

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--protocol", "not-a-protocol"])

    def test_poisson_arrivals(self, capsys):
        assert main(["simulate", "--protocol", "one-fail-adaptive", "--k", "16",
                     "--arrivals", "poisson", "--rate", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "PoissonArrival" in output
        assert "mean latency" in output

    def test_bursty_arrivals(self, capsys):
        assert main(["simulate", "--protocol", "one-fail-adaptive", "--k", "16",
                     "--arrivals", "bursty", "--bursts", "2", "--gap", "50"]) == 0
        assert "BurstyArrival" in capsys.readouterr().out

    def test_arrivals_reject_specialised_engine(self):
        with pytest.raises(ValueError):
            main(["simulate", "--protocol", "one-fail-adaptive", "--k", "16",
                  "--arrivals", "poisson", "--engine", "fair"])


class TestOtherCommands:
    def test_protocols_listing(self, capsys):
        assert main(["protocols"]) == 0
        output = capsys.readouterr().out
        assert "one-fail-adaptive" in output
        assert "required knowledge" in output

    def test_figure1_forwarding(self, capsys):
        assert main(["figure1", "--max-k", "100", "--runs", "1", "--quiet"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_table1_forwarding(self, capsys):
        assert main(["table1", "--max-k", "100", "--runs", "1", "--quiet"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_figure1_workers_flag(self, capsys):
        assert main(["figure1", "--max-k", "100", "--runs", "1", "--quiet",
                     "--workers", "2"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_dynamic_forwarding(self, capsys):
        assert main(["dynamic", "--k", "16", "--runs", "1"]) == 0
        output = capsys.readouterr().out
        assert "mean latency" in output
        assert "poisson" in output

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
