"""Statistical integration tests of the paper's headline claims.

These tests run the actual protocols at moderate sizes and check the claims of
Section 5 that are robust enough to assert on a handful of runs:

* One-fail Adaptive's measured steps/k ratio is very close to the constant
  2(δ+1) of its analysis (the paper calls the analysis "very tight");
* Exp Back-on/Back-off stays well below its (loose) analysis constant and
  within a factor ~3 of the trivial lower bound k;
* both new protocols respect their theorems' high-probability upper bounds;
* the qualitative ordering of the curves at moderate k: the two new protocols
  are faster on average than Loglog-iterated Back-off;
* the genie-aided ALOHA yardstick sits near e, below all of them.

Each assertion uses generous margins so the tests are deterministic in
practice (fixed seeds) and robust to the statistical noise of small samples.
"""

from __future__ import annotations

import pytest

from repro.core import analysis
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.dispatch import simulate
from repro.protocols.aloha import SlottedAloha
from repro.protocols.backoff import LogLogIteratedBackoff
from repro.protocols.log_fails_adaptive import LogFailsAdaptive
from repro.util.rng import derive_seeds

K = 3_000
RUNS = 6


def mean_ratio(protocol_factory, k: int = K, runs: int = RUNS, root_seed: int = 1) -> float:
    ratios = []
    for seed in derive_seeds(root_seed, runs):
        result = simulate(protocol_factory(), k=k, seed=seed)
        assert result.solved
        ratios.append(result.steps_per_node)
    return sum(ratios) / len(ratios)


@pytest.fixture(scope="module")
def measured_ratios():
    return {
        "ofa": mean_ratio(OneFailAdaptive, root_seed=11),
        "ebb": mean_ratio(ExpBackonBackoff, root_seed=12),
        "llib": mean_ratio(LogLogIteratedBackoff, root_seed=13),
        "aloha": mean_ratio(lambda: SlottedAloha(k=K), root_seed=14),
        "lfa2": mean_ratio(lambda: LogFailsAdaptive.for_k(K, xi_t=0.5), root_seed=15),
    }


class TestTheorem1:
    def test_ofa_ratio_matches_analysis_constant(self, measured_ratios):
        """Table 1: the measured ratio equals 2(delta+1) ~= 7.4 almost exactly."""
        constant = analysis.ofa_leading_constant(2.72)
        assert measured_ratios["ofa"] == pytest.approx(constant, rel=0.12)

    def test_ofa_within_high_probability_bound(self):
        for seed in derive_seeds(21, 4):
            result = simulate(OneFailAdaptive(), k=K, seed=seed)
            assert result.makespan <= analysis.ofa_makespan_bound(K, log_square_constant=50.0)


class TestTheorem2:
    def test_ebb_within_high_probability_bound(self):
        for seed in derive_seeds(22, 4):
            result = simulate(ExpBackonBackoff(), k=K, seed=seed)
            assert result.makespan <= analysis.ebb_makespan_bound(K)

    def test_ebb_measured_ratio_well_below_analysis(self, measured_ratios):
        """Section 5: measured 4-8 versus the 14.9 of the analysis."""
        assert measured_ratios["ebb"] < 0.7 * analysis.ebb_leading_constant(0.366)

    def test_ebb_linear_in_k(self):
        ratios = [mean_ratio(ExpBackonBackoff, k=k, runs=3, root_seed=31) for k in (500, 4_000)]
        assert max(ratios) / min(ratios) < 1.8


class TestEvaluationOrdering:
    def test_new_protocols_beat_llib(self, measured_ratios):
        assert measured_ratios["ofa"] < measured_ratios["llib"] * 1.1
        assert measured_ratios["ebb"] < measured_ratios["llib"]

    def test_aloha_is_the_floor(self, measured_ratios):
        assert measured_ratios["aloha"] == pytest.approx(2.718, rel=0.15)
        for key in ("ofa", "ebb", "llib", "lfa2"):
            assert measured_ratios[key] > measured_ratios["aloha"]

    def test_all_ratios_in_plausible_band(self, measured_ratios):
        for key, ratio in measured_ratios.items():
            assert 2.0 < ratio < 20.0, (key, ratio)


class TestPredictability:
    def test_new_protocols_more_predictable_than_lfa(self):
        """Section 5: the proposed protocols have "very stable" ratios, LFA does not.

        Measured as the coefficient of variation of the makespan over
        independent runs at k = 1000: One-fail Adaptive's dispersion is an
        order of magnitude smaller than the Log-fails Adaptive reconstruction's.
        """
        k = 1_000

        def coefficient_of_variation(factory, root_seed):
            makespans = []
            for seed in derive_seeds(root_seed, 8):
                result = simulate(factory(), k=k, seed=seed)
                assert result.solved
                makespans.append(result.makespan)
            mean = sum(makespans) / len(makespans)
            variance = sum((value - mean) ** 2 for value in makespans) / (len(makespans) - 1)
            return (variance ** 0.5) / mean

        ofa_cv = coefficient_of_variation(OneFailAdaptive, root_seed=41)
        lfa_cv = coefficient_of_variation(lambda: LogFailsAdaptive.for_k(k), root_seed=42)
        assert ofa_cv < 0.02
        assert lfa_cv > ofa_cv


class TestUnboundedness:
    def test_new_protocols_take_no_knowledge(self):
        assert OneFailAdaptive.requires_knowledge == frozenset()
        assert ExpBackonBackoff.requires_knowledge == frozenset()

    def test_same_protocol_object_valid_for_any_k(self):
        """The same (knowledge-free) protocol prototype solves any network size."""
        protocol = OneFailAdaptive()
        for k in (1, 17, 400):
            result = simulate(protocol, k=k, seed=5)
            assert result.solved

    def test_baselines_declare_their_knowledge(self):
        assert "epsilon" in LogFailsAdaptive.requires_knowledge
        assert "k" in SlottedAloha.requires_knowledge
