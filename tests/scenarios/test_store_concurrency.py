"""Concurrent-writer safety of the ResultStore and a shared Session.

Covers the advisory-locking guarantees: appends from many threads and from
separate processes interleave without torn lines or duplicate headers, and
one Session instance can be shared by concurrent (server-style) workers.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.engine.result import SimulationResult
from repro.scenarios import ResultStore, Scenario, Session, StoredRun

SPEC = "one-fail-adaptive k=32 reps=4 seed=3"


def scenario(text: str = SPEC) -> Scenario:
    return Scenario.parse(text)


def make_run(replication: int, seed: int = 0) -> StoredRun:
    result = SimulationResult(
        solved=True,
        makespan=100 + replication,
        k=32,
        slots_simulated=100 + replication,
        successes=32,
        collisions=1,
        silences=2,
        protocol="one-fail-adaptive",
        engine="fair",
        seed=seed,
        metadata={},
    )
    return StoredRun(replication=replication, seed=seed, elapsed_seconds=0.01, result=result)


def _parse_store_file(path) -> tuple[int, int]:
    """(header lines, run lines) — raises if any line is torn/invalid JSON."""
    headers = runs = 0
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)  # a torn line fails loudly here
            if record["kind"] == "scenario":
                headers += 1
            elif record["kind"] == "run":
                runs += 1
    return headers, runs


def _append_batch(root: str, start: int, count: int) -> None:
    """Module-level so ProcessPoolExecutor can pickle it."""
    store = ResultStore(root)
    for replication in range(start, start + count):
        store.append(scenario(), [make_run(replication)])


class TestConcurrentAppends:
    def test_threaded_appends_do_not_tear(self, tmp_path):
        store = ResultStore(tmp_path)
        threads = [
            threading.Thread(target=_append_batch, args=(str(tmp_path), base * 50, 50))
            for base in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        headers, runs = _parse_store_file(store.path_for(scenario()))
        assert headers == 1
        assert runs == 400

    def test_multiprocess_appends_single_header_no_torn_lines(self, tmp_path):
        with ProcessPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(_append_batch, str(tmp_path), base * 30, 30) for base in range(4)
            ]
            for future in futures:
                future.result()
        headers, runs = _parse_store_file(ResultStore(tmp_path).path_for(scenario()))
        assert headers == 1
        assert runs == 120

    def test_lock_files_do_not_pollute_the_listing(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(scenario(), [make_run(0)])
        assert (store.path_for(scenario()).with_name(
            store.path_for(scenario()).name + ".lock"
        )).exists()
        assert len(store.scenarios_on_record()) == 1

    def test_append_survives_missing_fcntl(self, tmp_path, monkeypatch):
        from repro.scenarios import store as store_module

        monkeypatch.setattr(store_module, "fcntl", None)
        store = ResultStore(tmp_path)
        store.append(scenario(), [make_run(0)])
        store.append(scenario(), [make_run(1)])
        headers, runs = _parse_store_file(store.path_for(scenario()))
        assert headers == 1
        assert runs == 2

    def test_header_written_once_even_onto_empty_file(self, tmp_path):
        store = ResultStore(tmp_path)
        store.path_for(scenario()).touch()  # empty file, e.g. a crashed first write
        store.append(scenario(), [make_run(0)])
        headers, runs = _parse_store_file(store.path_for(scenario()))
        assert headers == 1
        assert runs == 1


class TestStoreSummaries:
    def test_summaries_report_runs_and_solved_fraction(self, tmp_path):
        store_dir = tmp_path / "store"
        Session(store_dir=store_dir).run(scenario())
        records = ResultStore(store_dir).summaries()
        assert len(records) == 1
        record = records[0]
        assert record.hash == scenario().content_hash()
        assert record.replications_on_record == 4
        assert record.solved_runs == 4
        assert record.solved_fraction == 1.0
        assert record.to_dict()["scenario"] == scenario().format()

    def test_scenario_for_hash_round_trip(self, tmp_path):
        store_dir = tmp_path / "store"
        Session(store_dir=store_dir).run(scenario())
        store = ResultStore(store_dir)
        recovered = store.scenario_for_hash(scenario().content_hash())
        assert recovered == scenario()
        assert store.scenario_for_hash("0000000000000000") is None

    def test_scenario_for_hash_rejects_non_digest_input(self, tmp_path):
        # The hash arrives from a URL path segment; anything that is not a
        # 16-hex digest must be rejected before touching the filesystem.
        outside = tmp_path / "outside.jsonl"
        outside.write_text(
            json.dumps({"kind": "scenario", "scenario": scenario().to_dict()}) + "\n",
            encoding="utf-8",
        )
        store = ResultStore(tmp_path / "store")
        for payload in ("../outside", "..", "ABCDEF0123456789", "0" * 15, "0" * 17, ""):
            assert store.scenario_for_hash(payload) is None


class TestSharedSession:
    def test_two_threads_share_one_session(self, tmp_path):
        session = Session(store_dir=tmp_path / "store")
        specs = [
            "one-fail-adaptive k=32 reps=3 seed=1",
            "one-fail-adaptive k=32 reps=3 seed=2",
        ]
        errors: list[Exception] = []

        def run(text: str) -> None:
            try:
                session.run(scenario(text))
            except Exception as error:  # surfaced below; threads must not hide it
                errors.append(error)

        threads = [threading.Thread(target=run, args=(text,)) for text in specs for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        for text in specs:
            headers, _runs = _parse_store_file(session.store.path_for(scenario(text)))
            assert headers == 1
            # A later run is a pure cache hit regardless of the interleaving.
            assert session.run(scenario(text)).new_runs == 0

    def test_progress_fires_in_worker_callback_context(self, tmp_path):
        """SessionProgress is invoked on the thread that called Session.run —
        under the service that is a job-queue worker, not the main thread."""
        session = Session(store_dir=tmp_path / "store")
        callback_threads: set[int] = set()
        worker_ident: list[int] = []

        def worker() -> None:
            worker_ident.append(threading.get_ident())
            session.run(
                scenario(),
                progress=lambda i, s, done, total: callback_threads.add(threading.get_ident()),
            )

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert callback_threads == {worker_ident[0]}
        assert threading.get_ident() not in callback_threads

    def test_cached_count_and_is_cached(self, tmp_path):
        session = Session(store_dir=tmp_path / "store")
        assert session.cached_count(scenario()) == 0
        assert not session.is_cached(scenario())
        session.run(scenario())
        assert session.cached_count(scenario()) == 4
        assert session.is_cached(scenario())
        assert Session().cached_count(scenario()) == 0

    def test_run_cached_serves_from_store_in_one_pass(self, tmp_path):
        session = Session(store_dir=tmp_path / "store")
        assert session.run_cached(scenario()) is None
        fresh = session.run(scenario())
        served = session.run_cached(scenario())
        assert served is not None
        assert served.new_runs == 0
        assert served.cached_runs == 4
        assert served.makespans == fresh.makespans
        assert served.seeds == fresh.seeds
        # Partial coverage is a miss, never a partial result set.
        bigger = scenario().replace(replications=6)
        assert session.run_cached(bigger) is None
        assert Session().run_cached(scenario()) is None
